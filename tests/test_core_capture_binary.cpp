// core::Capture binary serialization: the versioned, length-prefixed
// format fleet runs use to persist and replay captures.  Round-trip
// identity, tamper rejection (magic/version), and truncation detection
// at every structurally interesting cut point.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/capture.hpp"
#include "sim/error.hpp"

namespace {

using offramps::core::Capture;
using offramps::core::Transaction;

Capture sample_capture() {
  Capture cap;
  cap.label = "cube-8x8x3 seed 1000";
  cap.print_completed = true;
  cap.final_counts = {123456, -7890, 4200, 998877};
  for (std::uint32_t i = 0; i < 5; ++i) {
    Transaction txn;
    txn.index = i;
    txn.counts = {static_cast<std::int32_t>(100 * i),
                  static_cast<std::int32_t>(-50 * i),
                  static_cast<std::int32_t>(7 * i),
                  static_cast<std::int32_t>(1000 + i)};
    txn.time_ns = 100'000'000ull * (i + 1);
    cap.transactions.push_back(txn);
  }
  return cap;
}

void expect_equal(const Capture& a, const Capture& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.print_completed, b.print_completed);
  EXPECT_EQ(a.final_counts, b.final_counts);
  ASSERT_EQ(a.transactions.size(), b.transactions.size());
  for (std::size_t i = 0; i < a.transactions.size(); ++i) {
    EXPECT_EQ(a.transactions[i].index, b.transactions[i].index);
    EXPECT_EQ(a.transactions[i].counts, b.transactions[i].counts);
    EXPECT_EQ(a.transactions[i].time_ns, b.transactions[i].time_ns);
  }
}

TEST(CaptureBinary, RoundTripIdentity) {
  const Capture cap = sample_capture();
  const std::vector<std::uint8_t> bytes = cap.to_binary();
  expect_equal(cap, Capture::from_binary(bytes));
  // Serialization itself is deterministic.
  EXPECT_EQ(bytes, Capture::from_binary(bytes).to_binary());
}

TEST(CaptureBinary, RoundTripEmptyAndAborted) {
  Capture cap;
  cap.label = "";
  cap.print_completed = false;  // killed print: flag bit must survive
  const Capture back = Capture::from_binary(cap.to_binary());
  expect_equal(cap, back);
  EXPECT_FALSE(back.print_completed);
}

TEST(CaptureBinary, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = sample_capture().to_binary();
  bytes[0] = 'X';
  EXPECT_THROW(Capture::from_binary(bytes), offramps::Error);
}

TEST(CaptureBinary, RejectsUnknownVersion) {
  std::vector<std::uint8_t> bytes = sample_capture().to_binary();
  bytes[4] = 0xFF;  // version u16 LE lives right after the 4-byte magic
  EXPECT_THROW(Capture::from_binary(bytes), offramps::Error);
}

TEST(CaptureBinary, RejectsTruncationEverywhere) {
  const std::vector<std::uint8_t> bytes = sample_capture().to_binary();
  // Cut inside every region: header, label, count, a transaction body,
  // and the trailing finals.  All must throw, none may mis-decode.
  const std::size_t cuts[] = {0,  2,  7,  10, bytes.size() / 3,
                              bytes.size() / 2, bytes.size() - 33,
                              bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    EXPECT_THROW(Capture::from_binary(bytes.data(), cut), offramps::Error)
        << "cut at " << cut << " of " << bytes.size();
  }
}

// Offset of the u32 label length in the wire format: magic(4) +
// version(2) + flags(2).
constexpr std::size_t kLabelLenOffset = 8;

TEST(CaptureBinary, RejectsLyingCountPrefixWithoutAllocating) {
  const Capture cap = sample_capture();
  std::vector<std::uint8_t> bytes = cap.to_binary();
  const std::size_t count_offset = kLabelLenOffset + 4 + cap.label.size();
  // Claim ~2^64 transactions in a tiny buffer.  The reader must bound
  // the count against the remaining input and throw before reserving a
  // single byte - this is the OOM-bomb path a corrupted or hostile
  // capture file would hit.
  for (std::size_t i = 0; i < 8; ++i) bytes[count_offset + i] = 0xFF;
  EXPECT_THROW(Capture::from_binary(bytes), offramps::Error);

  // An off-by-one lie (one more record than the buffer holds) is just as
  // dead: the bound is exact, not order-of-magnitude.
  bytes = cap.to_binary();
  bytes[count_offset] = static_cast<std::uint8_t>(cap.size() + 1);
  EXPECT_THROW(Capture::from_binary(bytes), offramps::Error);
}

TEST(CaptureBinary, RejectsLyingLabelLength) {
  std::vector<std::uint8_t> bytes = sample_capture().to_binary();
  // A label length pointing past the end of the buffer must be caught by
  // the bounds check, not read out of bounds.
  for (std::size_t i = 0; i < 4; ++i) bytes[kLabelLenOffset + i] = 0xFF;
  EXPECT_THROW(Capture::from_binary(bytes), offramps::Error);
}

TEST(CaptureBinary, FileRoundTrip) {
  const Capture cap = sample_capture();
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "capture_rt.bin";
  cap.save_binary(path.string());
  expect_equal(cap, Capture::load_binary(path.string()));
  std::filesystem::remove(path);
}

TEST(CaptureBinary, MissingFileThrows) {
  EXPECT_THROW(Capture::load_binary("/nonexistent/dir/capture.bin"),
               offramps::Error);
}

}  // namespace
