// Tests for the Pulse Generation Module.
#include <gtest/gtest.h>

#include "core/pulse_generator.hpp"
#include "sim/error.hpp"
#include "sim/trace.hpp"

namespace offramps::core {
namespace {

struct PulseGenFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire in{sched, "in"};
  sim::Wire out{sched, "out"};
  SignalPath path{sched, in, out, sim::ns(10)};
  PulseGenerator gen{sched, path, /*steps_per_mm=*/100.0};

  void SetUp() override { path.set_active(true); }
};

TEST_F(PulseGenFixture, EmitsExactCount) {
  sim::TraceRecorder trace(out, false);
  gen.burst({.count = 37, .period = sim::us(50), .width = sim::us(1)});
  sched.run_all();
  EXPECT_EQ(trace.rising_edges(), 37u);
  EXPECT_EQ(gen.pulses_emitted(), 37u);
}

TEST_F(PulseGenFixture, RespectsFrequencyAndWidth) {
  sim::TraceRecorder trace(out, true);
  gen.burst({.count = 10, .period = sim::us(100), .width = sim::us(2)});
  sched.run_all();
  EXPECT_EQ(trace.min_period(), sim::us(100));
  EXPECT_EQ(trace.min_high_pulse(), sim::us(2));
}

TEST_F(PulseGenFixture, PulsesAlignToFabricClock) {
  std::vector<sim::Tick> rises;
  out.on_rising([&](sim::Tick t) { rises.push_back(t); });
  sched.run_until(sim::ns(7));  // deliberately off-grid start time
  gen.burst({.count = 3, .period = sim::us(50), .width = sim::us(1)});
  sched.run_all();
  ASSERT_EQ(rises.size(), 3u);
  for (const auto t : rises) {
    // Injection time is clock-aligned; the wire rises within the same
    // event (the output OR updates immediately).
    EXPECT_EQ(t % sim::kFpgaClockTicks, 0u) << t;
  }
}

TEST_F(PulseGenFixture, BurstMmUsesMicrostepScale) {
  sim::TraceRecorder trace(out, false);
  const auto count = gen.burst_mm(0.4, 20'000.0);  // 0.4 mm at 100 st/mm
  EXPECT_EQ(count, 40u);
  sched.run_all();
  EXPECT_EQ(trace.rising_edges(), 40u);
}

TEST_F(PulseGenFixture, CancelStopsPendingPulses) {
  sim::TraceRecorder trace(out, false);
  gen.burst({.count = 100, .period = sim::ms(1), .width = sim::us(1)});
  sched.run_until(sched.now() + sim::ms(10));
  gen.cancel();
  sched.run_all();
  EXPECT_LT(trace.rising_edges(), 15u);
  EXPECT_GT(trace.rising_edges(), 5u);
}

TEST_F(PulseGenFixture, MergesWithPassthroughTraffic) {
  sim::TraceRecorder trace(out, false);
  // Original pulses every 200 us; injection every 190 us offset.
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(sim::us(static_cast<std::uint64_t>(200 * i + 100)),
                      [this] { in.pulse(sim::us(1)); });
  }
  gen.burst({.count = 10, .period = sim::us(190), .width = sim::us(1)});
  sched.run_all();
  EXPECT_EQ(trace.rising_edges(), 20u);
}

TEST_F(PulseGenFixture, InvalidTrainsThrow) {
  EXPECT_THROW(gen.burst({.count = 1, .period = sim::us(1),
                          .width = sim::us(1)}),
               offramps::Error);
  EXPECT_THROW(gen.burst_mm(1.0, 0.0), offramps::Error);
}

}  // namespace
}  // namespace offramps::core
