// Cross-module property sweeps (parameterized gtest): quantitative
// invariants that must hold across whole parameter ranges, not just at
// hand-picked points.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/compare.hpp"
#include "gcode/flaw3d.hpp"
#include "gcode/parser.hpp"
#include "gcode/stats.hpp"
#include "gcode/writer.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "core/serial.hpp"
#include "helpers.hpp"
#include "sim/rng.hpp"

namespace offramps {
namespace {

gcode::Program object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

// --- Property: T2's mask ratio IS the physical flow ratio ----------------------

class MaskRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(MaskRatioSweep, FlowTracksKeepRatio) {
  const double keep = GetParam();
  host::RigOptions options;
  options.trojans.t2 = core::T2Config{.keep_ratio = keep};
  host::Rig rig(options);
  const host::RunResult r = rig.run(object());
  ASSERT_TRUE(r.finished);
  EXPECT_NEAR(r.flow_ratio(), keep, 0.03) << "keep ratio " << keep;
}

INSTANTIATE_TEST_SUITE_P(KeepRatios, MaskRatioSweep,
                         ::testing::Values(0.25, 0.4, 0.5, 0.6, 0.75, 0.9));

// --- Property: stepper segment duration matches trapezoid kinematics -----------

class TrapezoidSweep
    : public ::testing::TestWithParam<std::tuple<double, std::int64_t>> {};

TEST_P(TrapezoidSweep, DurationMatchesAnalyticModel) {
  const auto [feed, steps] = GetParam();
  sim::Scheduler sched;
  fw::Config config;
  config.segment_jitter_max = 0;  // deterministic timing for this test
  sim::PinBank bank(sched, "p.");
  fw::StepperEngine engine(sched, bank, config);
  fw::Planner planner(config);

  const fw::Segment seg = planner.plan({steps, 0, 0, 0}, feed);
  const sim::Tick start = sched.now();
  bool done = false;
  engine.start(seg, [&](bool, auto) { done = true; });
  sched.run_all();
  ASSERT_TRUE(done);
  const double elapsed = sim::to_seconds(sched.now() - start);

  // Analytic trapezoid: ramp entry->cruise, cruise, ramp cruise->exit.
  const double v0 = seg.entry_sps, vc = seg.cruise_sps, a = seg.accel_sps2;
  const double n = static_cast<double>(steps);
  const double ramp_steps = (vc * vc - v0 * v0) / (2.0 * a);
  double expected;
  if (2.0 * ramp_steps <= n) {
    const double ramp_time = (vc - v0) / a;
    expected = 2.0 * ramp_time + (n - 2.0 * ramp_steps) / vc;
  } else {
    const double peak = std::sqrt(v0 * v0 + a * n);  // triangular profile
    expected = 2.0 * (peak - v0) / a;
  }
  EXPECT_NEAR(elapsed, expected, expected * 0.08 + 0.002)
      << "feed " << feed << " steps " << steps;
}

INSTANTIATE_TEST_SUITE_P(
    FeedByDistance, TrapezoidSweep,
    ::testing::Combine(::testing::Values(10.0, 40.0, 120.0),
                       ::testing::Values<std::int64_t>(50, 1000, 20000)));

// --- Property: detection margin is monotone ------------------------------------

TEST(DetectionMonotonicity, WiderMarginNeverFindsMore) {
  const gcode::Program mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.9});
  host::Rig golden_rig, trojan_rig;
  const auto golden = golden_rig.run(object()).capture;
  const auto trojaned = trojan_rig.run(mutated).capture;
  std::size_t prev = SIZE_MAX;
  for (const double margin : {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0}) {
    detect::CompareOptions opt;
    opt.margin_pct = margin;
    const auto rep = detect::compare(golden, trojaned, opt);
    EXPECT_LE(rep.mismatch_count(), prev) << "margin " << margin;
    prev = rep.mismatch_count();
  }
}

// --- Property: parser round trip on randomized commands ------------------------

class RandomRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRoundTrip, WriteParseIdentity) {
  sim::Rng rng(GetParam());
  gcode::Program program;
  const char letters[] = {'X', 'Y', 'Z', 'E', 'F', 'S', 'P', 'I', 'J'};
  for (int i = 0; i < 60; ++i) {
    gcode::Command c;
    c.letter = rng.chance(0.7) ? 'G' : 'M';
    c.code = static_cast<int>(rng.uniform_int(0, 299));
    const int nparams = static_cast<int>(rng.uniform_int(0, 5));
    for (int p = 0; p < nparams; ++p) {
      const char letter =
          letters[static_cast<std::size_t>(rng.uniform_int(0, 8))];
      if (c.has(letter)) continue;
      // Values within the 5-decimal round-trip precision of the writer.
      const double value =
          std::round(rng.uniform(-500.0, 500.0) * 1e4) / 1e4;
      c.params.push_back({letter, value});
    }
    program.push_back(std::move(c));
  }
  const gcode::Program reparsed =
      gcode::parse_program(gcode::write_program(program));
  ASSERT_EQ(reparsed.size(), program.size());
  for (std::size_t i = 0; i < program.size(); ++i) {
    EXPECT_EQ(reparsed[i].letter, program[i].letter);
    EXPECT_EQ(reparsed[i].code, program[i].code);
    ASSERT_EQ(reparsed[i].params.size(), program[i].params.size());
    for (std::size_t p = 0; p < program[i].params.size(); ++p) {
      EXPECT_EQ(reparsed[i].params[p].letter, program[i].params[p].letter);
      EXPECT_NEAR(*reparsed[i].params[p].value,
                  *program[i].params[p].value, 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip,
                         ::testing::Values(1u, 7u, 42u, 1337u));

// --- Property: reduction factor maps onto capture E ratio ----------------------

class ReductionCaptureSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReductionCaptureSweep, FinalECountTracksFactor) {
  const double factor = GetParam();
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = factor});
  host::Rig golden_rig, trojan_rig;
  const auto golden = golden_rig.run(object()).capture;
  const auto trojaned = trojan_rig.run(mutated).capture;
  const double ratio = static_cast<double>(trojaned.final_counts[3]) /
                       static_cast<double>(golden.final_counts[3]);
  // Retraction exemption keeps the realized ratio slightly below
  // `factor` (retractions stay full-size while extrusion shrinks).
  EXPECT_NEAR(ratio, factor, 0.1) << "factor " << factor;
  EXPECT_LE(ratio, factor + 0.02) << "factor " << factor;
  // Motion axes are untouched by reduction.
  EXPECT_EQ(trojaned.final_counts[0], golden.final_counts[0]);
  EXPECT_EQ(trojaned.final_counts[1], golden.final_counts[1]);
}

INSTANTIATE_TEST_SUITE_P(TableIIFactors, ReductionCaptureSweep,
                         ::testing::Values(0.5, 0.85, 0.9, 0.98));

// --- Property: slicer extrusion scales with object volume ----------------------

class VolumeSweep : public ::testing::TestWithParam<double> {};

TEST_P(VolumeSweep, FilamentScalesWithFootprintArea) {
  const double size = GetParam();
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = size, .size_y_mm = size, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  const gcode::Statistics s =
      gcode::analyze(host::slice_cube(cube, profile));
  // Two perimeter loops plus zigzag infill at the configured spacing.
  const double expected_path_per_layer =
      2.0 * 4.0 * size + size * size / profile.infill_spacing_mm;
  const double measured = s.extrusion_path_mm / 8.0;  // 8 layers
  EXPECT_NEAR(measured, expected_path_per_layer,
              expected_path_per_layer * 0.35)
      << "cube size " << size;
}

INSTANTIATE_TEST_SUITE_P(Sizes, VolumeSweep,
                         ::testing::Values(6.0, 10.0, 14.0, 20.0));

// --- Property: UART link is transparent at any standard baud -------------------

class BaudSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BaudSweep, SerialRoundTripAtBaud) {
  const std::uint32_t baud = GetParam();
  sim::Scheduler sched;
  sim::Wire line(sched, "UART", true);
  core::UartTx tx(sched, line, baud);
  core::UartRx rx(sched, line, baud);
  std::vector<std::uint8_t> received;
  rx.on_byte([&](std::uint8_t b, sim::Tick) { received.push_back(b); });
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 64; ++i) {
    payload.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  }
  tx.send(payload);
  sched.run_all();
  ASSERT_EQ(received.size(), payload.size()) << "baud " << baud;
  EXPECT_EQ(received, payload);
  EXPECT_EQ(rx.framing_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(StandardBauds, BaudSweep,
                         ::testing::Values(9'600u, 57'600u, 115'200u,
                                           250'000u, 1'000'000u));

// --- Property: T4's per-layer probability scales its activations ---------------

class WobbleProbabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(WobbleProbabilitySweep, ActivationsScaleWithProbability) {
  const double p = GetParam();
  host::RigOptions options;
  options.trojans.t4 =
      core::T4Config{.layer_probability = p, .shift_steps = 10};
  host::Rig rig(options);
  const host::RunResult r = rig.run(object());  // 8 layers
  ASSERT_TRUE(r.finished);
  const auto* t4 = rig.board().trojans().find(core::TrojanId::kT4);
  ASSERT_NE(t4, nullptr);
  // 8 print layers plus the end-sequence Z lift = up to 9 layer events;
  // binomial expectation p * events with exact checks at the extremes.
  EXPECT_LE(t4->activations(), 9u);
  if (p == 0.0) {
    EXPECT_EQ(t4->activations(), 0u);
  }
  if (p == 1.0) {
    EXPECT_GE(t4->activations(), 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, WobbleProbabilitySweep,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0));

// --- Property: homing converges from any power-on position ---------------------

class HomingPositionSweep : public ::testing::TestWithParam<double> {};

TEST_P(HomingPositionSweep, HomesFromAnywhere) {
  plant::PrinterParams params;
  params.initial_position_mm = {GetParam(), GetParam() * 0.8,
                                GetParam() * 0.1};
  test::DirectStack s({}, params);
  s.enqueue("G28\n");
  ASSERT_TRUE(s.run());
  EXPECT_TRUE(s.firmware.all_homed());
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 0.0, 0.15);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 0.0, 0.15);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kZ).position_mm(), 0.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(StartPositions, HomingPositionSweep,
                         ::testing::Values(0.0, 1.0, 60.0, 144.0, 249.0));

// --- Property: T8's deactivation period scales the damage ----------------------

class DriverDisableSweep : public ::testing::TestWithParam<double> {};

TEST_P(DriverDisableSweep, ShorterPeriodsDropMoreSteps) {
  const double period_s = GetParam();
  host::RigOptions options;
  options.trojans.t8 = core::T8Config{.axes = {true, true, false, true},
                                      .period_s = period_s,
                                      .off_duration_s = 0.3,
                                      .delay_after_homing_s = 1.0};
  host::Rig rig(options);
  const host::RunResult r = rig.run(object());
  ASSERT_TRUE(r.finished);
  const auto dropped = r.motor_dropped_steps[0] + r.motor_dropped_steps[1] +
                       r.motor_dropped_steps[3];
  // Duty of the outage is off/(period+off): damage must be in the same
  // ballpark as that fraction of the total motion.
  const auto total = static_cast<double>(
      r.capture.final_counts[0] + r.capture.final_counts[1] +
      std::abs(r.capture.final_counts[3]));
  const double duty = 0.3 / (period_s + 0.3);
  EXPECT_GT(static_cast<double>(dropped), total * duty * 0.1)
      << "period " << period_s;
  EXPECT_LT(static_cast<double>(dropped), total * duty * 4.0)
      << "period " << period_s;
}

INSTANTIATE_TEST_SUITE_P(Periods, DriverDisableSweep,
                         ::testing::Values(3.0, 8.0, 20.0));

// --- Property: relocation's take fraction shows up as nozzle blobs -------------

class RelocationFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(RelocationFractionSweep, BlobMassTracksTakeFraction) {
  const double fraction = GetParam();
  // Baseline: legitimate stationary extrusion (un-retracts) on a clean
  // print of the same object.
  host::Rig clean_rig;
  const host::RunResult clean = clean_rig.run(object());
  ASSERT_TRUE(clean.finished);
  const double baseline_blob =
      clean_rig.printer().deposition().blob_filament_mm();

  const auto mutated = gcode::flaw3d::apply_relocation(
      object(), {.every_n_moves = 10, .take_fraction = fraction});
  host::Rig rig;
  const host::RunResult r = rig.run(mutated);
  ASSERT_TRUE(r.finished);
  const double extra_blob =
      rig.printer().deposition().blob_filament_mm() - baseline_blob;
  // Roughly take_fraction of the part's filament ends up dumped in place
  // (minus the final unflushed batch and moving-window spillover).
  const double printed = r.part.total_filament_mm + extra_blob;
  EXPECT_NEAR(extra_blob / printed, fraction, fraction * 0.6 + 0.02)
      << "fraction " << fraction;
  // And the damage grows with the fraction.
  EXPECT_GT(extra_blob, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, RelocationFractionSweep,
                         ::testing::Values(0.05, 0.15, 0.3));

// --- Robustness: arbitrary input never crashes the parser ----------------------

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, GarbageEitherParsesOrThrowsError) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    std::string line;
    const int len = static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    }
    try {
      const auto cmd = gcode::parse_line(line);
      (void)cmd;  // parsed fine - acceptable
    } catch (const offramps::Error&) {
      // rejected cleanly - acceptable
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 99u, 2024u));

}  // namespace
}  // namespace offramps
