// Tests for the host-side print time estimator - including the
// cross-validation property: the offline estimate must match the
// measured simulation time of the same g-code.
#include <gtest/gtest.h>

#include "gcode/parser.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "host/time_estimator.hpp"

namespace offramps::host {
namespace {

TEST(TimeEstimator, EmptyProgramIsZero) {
  const TimeEstimate est = estimate_print_time({});
  EXPECT_DOUBLE_EQ(est.total_s(), 0.0);
  EXPECT_EQ(est.moves, 0u);
}

TEST(TimeEstimator, SingleCruiseMove) {
  // 100 mm at 50 mm/s with ramps: slightly over 2 s.
  const auto p = gcode::parse_program("G1 X100 F3000\n");
  const TimeEstimate est = estimate_print_time(p);
  EXPECT_GT(est.motion_s, 100.0 / 50.0);
  EXPECT_LT(est.motion_s, 100.0 / 50.0 * 1.2);
}

TEST(TimeEstimator, DwellsAreCounted) {
  const auto p = gcode::parse_program("G4 P500\nG4 S2\n");
  const TimeEstimate est = estimate_print_time(p);
  EXPECT_DOUBLE_EQ(est.dwell_s, 2.5);
}

TEST(TimeEstimator, FeedrateCapsApply) {
  // Z at F6000 is capped to 12 mm/s: 24 mm takes at least 2 s.
  const auto p = gcode::parse_program("G1 Z24 F6000\n");
  const TimeEstimate est = estimate_print_time(p);
  EXPECT_GT(est.motion_s, 2.0);
}

TEST(TimeEstimator, CollinearChainsBeatZigzags) {
  std::string collinear, zigzag;
  for (int i = 1; i <= 10; ++i) {
    collinear += "G1 X" + std::to_string(i * 10) + " F6000\n";
    zigzag += (i % 2 == 1) ? "G1 X10 F6000\n" : "G1 X0 F6000\n";
  }
  EXPECT_LT(estimate_print_time(gcode::parse_program(collinear)).motion_s,
            estimate_print_time(gcode::parse_program(zigzag)).motion_s);
}

/// The headline property: the offline estimate agrees with the measured
/// end-to-end simulation across objects.
class EstimatorCrossValidation
    : public ::testing::TestWithParam<double> {};  // param: cube size

TEST_P(EstimatorCrossValidation, EstimateMatchesSimulation) {
  SliceProfile profile;
  CubeSpec cube{.size_x_mm = GetParam(), .size_y_mm = GetParam(),
                .height_mm = 2.5, .center_x_mm = 110, .center_y_mm = 100};
  const gcode::Program program = slice_cube(cube, profile);

  RigOptions options;
  options.firmware.segment_jitter_max = 0;  // isolate pure motion time
  Rig rig(options);
  const RunResult r = rig.run(program);
  ASSERT_TRUE(r.finished);
  ASSERT_FALSE(r.capture.empty());

  // Measured motion time: from the first post-homing step (the capture
  // stream's start) to the end of the print.
  const double measured =
      r.sim_seconds -
      static_cast<double>(r.capture.transactions.front().time_ns) / 1e9;
  const TimeEstimate est = estimate_print_time(program);
  EXPECT_NEAR(est.motion_s, measured, measured * 0.1)
      << "cube " << GetParam() << " mm";
}

INSTANTIATE_TEST_SUITE_P(CubeSizes, EstimatorCrossValidation,
                         ::testing::Values(6.0, 10.0, 15.0));

TEST(TimeEstimator, ArcProgramsEstimateViaChords) {
  SliceProfile profile;
  CylinderSpec spec{.diameter_mm = 14, .height_mm = 2, .facets = 0,
                    .center_x_mm = 110, .center_y_mm = 100};
  const gcode::Program program = slice_cylinder_arcs(spec, profile);
  const TimeEstimate est = estimate_print_time(program);
  // Modal resolution reduces each G2/G3 to its chord: a lower bound on
  // motion, still positive and plausible.
  EXPECT_GT(est.motion_s, 1.0);
}

}  // namespace
}  // namespace offramps::host
