// Static-oracle accuracy tests: the analyzer's predicted step counts must
// match what the full event-loop simulation's OFFRAMPS capture actually
// counts on clean prints - across objects, seeds, and arc programs.
#include <gtest/gtest.h>

#include <cstdlib>

#include "analyze/analyzer.hpp"
#include "gcode/parser.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::analyze {
namespace {

using host::CubeSpec;
using host::CylinderSpec;
using host::SliceProfile;
using host::SquareSpec;

core::Capture print_capture(const gcode::Program& program,
                            std::uint64_t seed) {
  host::RigOptions options;
  options.firmware.jitter_seed = seed;
  host::Rig rig(options);
  host::RunResult r = rig.run(program);
  EXPECT_TRUE(r.finished);
  return std::move(r.capture);
}

/// Static prediction vs runtime counters, within the homing-debounce
/// slack (the only stepping the oracle cannot see exactly).
void expect_oracle_matches_capture(const gcode::Program& program,
                                   std::uint64_t seed,
                                   std::int64_t slack = 4) {
  const AnalysisResult res = analyze_program(program);
  ASSERT_TRUE(res.oracle.counters_armed);
  const core::Capture cap = print_capture(program, seed);
  ASSERT_TRUE(cap.print_completed);
  for (std::size_t axis = 0; axis < 4; ++axis) {
    EXPECT_LE(std::llabs(res.oracle.expected_counts[axis] -
                         cap.final_counts[axis]),
              slack)
        << "axis " << "XYZE"[axis] << ": predicted "
        << res.oracle.expected_counts[axis] << ", captured "
        << cap.final_counts[axis];
  }
}

TEST(AnalyzeOracle, PredictsCubeCapture) {
  const gcode::Program program = host::slice_cube(
      CubeSpec{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2},
      SliceProfile{});
  expect_oracle_matches_capture(program, /*seed=*/1);
}

TEST(AnalyzeOracle, PredictionIsSeedInvariant) {
  // Time noise moves pulses in time, never in count: the same program
  // under a different jitter seed lands on the same counters.
  const gcode::Program program = host::slice_cube(
      CubeSpec{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2},
      SliceProfile{});
  expect_oracle_matches_capture(program, /*seed=*/424242);
}

TEST(AnalyzeOracle, PredictsSquareCapture) {
  const gcode::Program program = host::slice_square(
      SquareSpec{.size_mm = 12, .height_mm = 2}, SliceProfile{});
  expect_oracle_matches_capture(program, /*seed=*/7);
}

TEST(AnalyzeOracle, PredictsArcProgramCapture) {
  // G2/G3 arcs go through the analyzer's own chord expansion; it must
  // agree with the firmware's.
  const gcode::Program program = host::slice_cylinder_arcs(
      CylinderSpec{.diameter_mm = 14, .height_mm = 1.5}, SliceProfile{});
  expect_oracle_matches_capture(program, /*seed=*/3);
}

TEST(AnalyzeOracle, CleanPrintHasNoFindings) {
  const gcode::Program program = host::slice_cube(
      CubeSpec{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2},
      SliceProfile{});
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.clean()) << res.to_string();
}

TEST(AnalyzeOracle, OracleBookkeepingIsConsistent) {
  const gcode::Program program = host::slice_cube(
      CubeSpec{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2},
      SliceProfile{});
  const AnalysisResult res = analyze_program(program);
  const Oracle& o = res.oracle;
  EXPECT_EQ(o.move_count, o.segments.size());
  // Segment sums reproduce the totals.
  double extruded = 0.0;
  std::array<std::int64_t, 4> counted{};
  std::uint64_t extruding = 0;
  for (const auto& seg : o.segments) {
    if (seg.e_mm > 0.0) extruded += seg.e_mm;
    if (seg.kind == SegmentKind::kExtrusion) {
      ++extruding;
      // A sane extrusion ratio: sliced walls extrude a fraction of a mm
      // of filament per mm of path.
      EXPECT_GT(seg.e_per_mm(), 0.01);
      EXPECT_LT(seg.e_per_mm(), 0.2);
    }
    if (seg.counted) {
      for (std::size_t i = 0; i < 4; ++i) counted[i] += seg.delta_steps[i];
    }
  }
  EXPECT_NEAR(extruded, o.extruded_mm, 1e-9);
  EXPECT_EQ(extruding, o.extrusion_move_count);
  // Counted segments alone reproduce expected_counts (homing re-zeroes
  // are not segments).
  EXPECT_EQ(counted, o.expected_counts);
}

TEST(AnalyzeOracle, UnhomedProgramNeverArms) {
  const gcode::Program program =
      gcode::parse_program("G21\nG90\nG1 X10 Y10 F3000\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_FALSE(res.oracle.counters_armed);
  EXPECT_TRUE(res.has(FindingCode::kCountersNotArmed));
  EXPECT_EQ(res.oracle.expected_counts[0], 0);
  // Notes alone keep the program lint-clean.
  EXPECT_TRUE(res.clean()) << res.to_string();
}

}  // namespace
}  // namespace offramps::analyze
