// svc::json: the fleet daemon's spec reader.  Full value model, ordered
// object members, typed fallback accessors, and hard rejection of
// malformed input with offramps::Error.
#include <gtest/gtest.h>

#include <string>

#include "sim/error.hpp"
#include "svc/json.hpp"

namespace {

namespace json = offramps::svc::json;

TEST(SvcJson, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").boolean);
  EXPECT_FALSE(json::parse("false").boolean);
  EXPECT_DOUBLE_EQ(json::parse("-12.5e1").number, -125.0);
  EXPECT_EQ(json::parse("\"hi\\n\\\"there\\\"\"").string, "hi\n\"there\"");
}

TEST(SvcJson, ParsesNestedDocument) {
  const json::Value v = json::parse(
      "  { \"workers\": 4, \"safe_stop\": false,\n"
      "    \"rigs\": [ {\"name\": \"a\", \"seed\": 7},\n"
      "               {\"name\": \"b\"} ] }  ");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.number_or("workers", 0.0), 4.0);
  EXPECT_FALSE(v.bool_or("safe_stop", true));
  const json::Value* rigs = v.find("rigs");
  ASSERT_NE(rigs, nullptr);
  ASSERT_TRUE(rigs->is_array());
  ASSERT_EQ(rigs->items.size(), 2u);
  EXPECT_EQ(rigs->items[0].string_or("name", ""), "a");
  EXPECT_DOUBLE_EQ(rigs->items[0].number_or("seed", 0.0), 7.0);
  // Absent member: the fallback is the answer, not an error.
  EXPECT_DOUBLE_EQ(rigs->items[1].number_or("seed", 42.0), 42.0);
}

TEST(SvcJson, ObjectMemberOrderPreserved) {
  const json::Value v = json::parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_EQ(v.fields.size(), 3u);
  EXPECT_EQ(v.fields[0].first, "z");
  EXPECT_EQ(v.fields[1].first, "a");
  EXPECT_EQ(v.fields[2].first, "m");
}

TEST(SvcJson, TypedFallbacksIgnoreWrongTypes) {
  const json::Value v = json::parse("{\"n\": \"not-a-number\", \"b\": 1}");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), -1.0);
  EXPECT_TRUE(v.bool_or("b", true));  // number is not a bool
  EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
  // find() on a non-object yields nullptr.
  EXPECT_EQ(json::parse("[1]").find("x"), nullptr);
}

TEST(SvcJson, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), offramps::Error);
  EXPECT_THROW(json::parse("{"), offramps::Error);
  EXPECT_THROW(json::parse("[1, ]"), offramps::Error);
  EXPECT_THROW(json::parse("{\"a\" 1}"), offramps::Error);
  EXPECT_THROW(json::parse("\"unterminated"), offramps::Error);
  EXPECT_THROW(json::parse("tru"), offramps::Error);
  EXPECT_THROW(json::parse("1 2"), offramps::Error);      // trailing data
  EXPECT_THROW(json::parse("\"\\u0041\""), offramps::Error);  // rejected
}

TEST(SvcJson, DepthCapAcceptsLimitRejectsBeyond) {
  const auto nested = [](int levels) {
    return std::string(levels, '[') + "1" + std::string(levels, ']');
  };
  // A scalar wrapped in exactly kMaxParseDepth containers is the deepest
  // legal document; one more level must fail with a parse error, not a
  // stack overflow.
  EXPECT_NO_THROW(json::parse(nested(json::kMaxParseDepth)));
  try {
    json::parse(nested(json::kMaxParseDepth + 1));
    FAIL() << "expected offramps::Error";
  } catch (const offramps::Error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
  // Objects count against the same budget.
  std::string objects;
  for (int i = 0; i < json::kMaxParseDepth + 1; ++i) objects += "{\"k\":";
  objects += "0";
  for (int i = 0; i < json::kMaxParseDepth + 1; ++i) objects += "}";
  EXPECT_THROW(json::parse(objects), offramps::Error);
}

TEST(SvcJson, ErrorCarriesByteOffset) {
  try {
    json::parse("{\"a\": 1, !}");
    FAIL() << "expected offramps::Error";
  } catch (const offramps::Error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos)
        << "offset missing from: " << e.what();
  }
}

}  // namespace
