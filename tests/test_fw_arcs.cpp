// Tests for G2/G3 arc execution: geometry, direction, helical Z,
// extrusion distribution, and the arc-sliced cylinder end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::fw {
namespace {

using offramps::test::DirectStack;

TEST(Arcs, QuarterCircleCcwEndsAtTarget) {
  DirectStack s;
  // From (60,50), CCW quarter around center (50,50) -> (50,60).
  s.enqueue("G28\nG0 X60 Y50 F6000\nG3 X50 Y60 I-10 J0 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 50.0, 0.15);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 60.0, 0.15);
}

TEST(Arcs, QuarterCircleCwEndsAtTarget) {
  DirectStack s;
  // From (60,50), CW quarter around (50,50) -> (50,40).
  s.enqueue("G28\nG0 X60 Y50 F6000\nG2 X50 Y40 I-10 J0 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 50.0, 0.15);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 40.0, 0.15);
}

TEST(Arcs, DirectionsTakeDifferentPaths) {
  // CCW quarter passes the top (y > 50); CW quarter the bottom.  Watch
  // the carriage extremes to tell them apart.
  for (const bool cw : {false, true}) {
    DirectStack s;
    const char* code = cw ? "G2 X40 Y50 I-10 J0 F3000"
                          : "G3 X40 Y50 I-10 J0 F3000";
    s.enqueue(std::string("G28\nG0 X60 Y50 F6000\n") + code + "\n");
    double max_y = 0.0, min_y = 1e9;
    auto& y_axis = s.printer.axis(sim::Axis::kY);
    s.bank.step(sim::Axis::kY).on_rising([&](sim::Tick) {
      // Ignore homing and the positioning travel; sample the arc chords
      // only (the travel is the first completed move).
      if (s.firmware.moves_executed() < 1) return;
      max_y = std::max(max_y, y_axis.position_mm());
      min_y = std::min(min_y, y_axis.position_mm());
    });
    EXPECT_TRUE(s.run());
    if (cw) {
      EXPECT_LT(min_y, 41.0);   // dipped to the bottom of the circle
      EXPECT_LT(max_y, 51.0);   // never crossed the top
    } else {
      EXPECT_GT(max_y, 59.0);   // crossed the top
      EXPECT_GT(min_y, 49.0);
    }
  }
}

TEST(Arcs, FullCircleReturnsToStart) {
  DirectStack s;
  s.enqueue("G28\nG0 X60 Y50 F6000\nG3 X60 Y50 I-10 J0 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 60.0, 0.2);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 50.0, 0.2);
  // A full 10 mm-radius circle is ~62.8 mm of path: the X motor must
  // have moved substantially even though it ends where it began.
  EXPECT_GT(s.printer.motor(sim::Axis::kX).accepted_steps(), 3000u);
}

TEST(Arcs, HelicalArcRaisesZLinearly) {
  DirectStack s;
  s.enqueue("G28\nG0 X60 Y50 F6000\nG3 X60 Y50 Z2 I-10 J0 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.axis(sim::Axis::kZ).position_mm(), 2.1, 0.2);
}

TEST(Arcs, ExtrusionDistributedAlongArc) {
  DirectStack s;
  s.enqueue(offramps::test::preamble() +
            "G0 X60 Y50 F6000\nG3 X50 Y60 I-10 J0 E2 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.extruder().filament_mm(), 2.0, 0.05);
}

TEST(Arcs, RelativeEMode) {
  DirectStack s;
  s.enqueue(offramps::test::preamble() +
            "M83\nG0 X60 Y50 F6000\nG3 X50 Y60 I-10 J0 E1.5 F3000\n"
            "G3 X40 Y50 I0 J-10 E1.5 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.extruder().filament_mm(), 3.0, 0.05);
}

TEST(Arcs, RFormIsRejectedAsUnknown) {
  DirectStack s;
  s.enqueue("G28\nG2 X50 Y40 R10 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_EQ(s.firmware.unknown_commands(), 1u);
}

TEST(Arcs, DegenerateZeroRadiusRejected) {
  DirectStack s;
  s.enqueue("G28\nG2 X50 Y40 I0 J0 F3000\n");
  EXPECT_TRUE(s.run());
  EXPECT_EQ(s.firmware.unknown_commands(), 1u);
}

TEST(Arcs, ArcSlicedCylinderPrintsRound) {
  host::SliceProfile profile;
  host::CylinderSpec spec{.diameter_mm = 14, .height_mm = 2, .facets = 0,
                          .center_x_mm = 110, .center_y_mm = 100};
  host::Rig rig;
  const host::RunResult r =
      rig.run(host::slice_cylinder_arcs(spec, profile));
  EXPECT_TRUE(r.finished);
  EXPECT_NEAR(r.part.bbox_width_mm, 14.0, 0.3);
  EXPECT_NEAR(r.part.bbox_depth_mm, 14.0, 0.3);
  EXPECT_EQ(r.part.layer_count, 8u);
  EXPECT_NEAR(r.flow_ratio(), 1.0, 1e-9);
}

TEST(Arcs, ArcAndChordCylindersAgree) {
  host::SliceProfile profile;
  host::CylinderSpec spec{.diameter_mm = 14, .height_mm = 2, .facets = 64,
                          .center_x_mm = 110, .center_y_mm = 100};
  host::Rig chord_rig, arc_rig;
  const host::RunResult chords =
      chord_rig.run(host::slice_cylinder(spec, profile));
  const host::RunResult arcs =
      arc_rig.run(host::slice_cylinder_arcs(spec, profile));
  ASSERT_TRUE(chords.finished);
  ASSERT_TRUE(arcs.finished);
  EXPECT_NEAR(arcs.part.bbox_width_mm, chords.part.bbox_width_mm, 0.3);
  EXPECT_NEAR(arcs.part.total_filament_mm, chords.part.total_filament_mm,
              chords.part.total_filament_mm * 0.05);
}

}  // namespace
}  // namespace offramps::fw
