// Unit tests for the thermal plant (heater ODE + thermistor publishing)
// and the fan plant.
#include <gtest/gtest.h>

#include "plant/thermal.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"
#include "sim/thermistor.hpp"

namespace offramps::plant {
namespace {

struct HeaterFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire gate{sched, "D10"};
  sim::AnalogChannel adc{sched, "THERM"};
};

TEST_F(HeaterFixture, StartsAtAmbientAndPublishesAdc) {
  HeaterPlant heater(sched, gate, adc, hotend_params());
  sim::Thermistor t;
  EXPECT_NEAR(heater.temperature_c(), 25.0, 1e-9);
  EXPECT_NEAR(adc.value(), t.adc_counts(25.0), 1.0);
}

TEST_F(HeaterFixture, StaysAtAmbientWithGateLow) {
  HeaterPlant heater(sched, gate, adc, hotend_params());
  sched.run_until(sim::seconds(100));
  EXPECT_NEAR(heater.temperature_c(), 25.0, 0.1);
  EXPECT_NEAR(heater.energy_j(), 0.0, 1e-9);
}

TEST_F(HeaterFixture, FullPowerHeatsTowardEquilibrium) {
  HeaterPlant heater(sched, gate, adc, hotend_params());
  gate.set(true);
  sched.run_until(sim::seconds(60));
  // 40 W into ~9 J/K must be well past 150 C after a minute...
  EXPECT_GT(heater.temperature_c(), 150.0);
  // ...and monotonically below the k*dT equilibrium (~495 C).
  const auto params = hotend_params();
  const double equilibrium =
      params.ambient_c + params.power_w / params.loss_w_per_k;
  sched.run_until(sim::seconds(2000));
  EXPECT_NEAR(heater.temperature_c(), equilibrium, 5.0);
}

TEST_F(HeaterFixture, HalfDutyHeatsSlower) {
  HeaterPlant full(sched, gate, adc, hotend_params());
  sim::Wire gate2(sched, "D10b");
  sim::AnalogChannel adc2(sched, "T2");
  HeaterPlant half(sched, gate2, adc2, hotend_params());
  gate.set(true);
  // 50% duty square wave at 100 ms.
  std::function<void()> toggler = [&] {
    gate2.set(!gate2.level());
    sched.schedule_in(sim::ms(50), toggler);
  };
  sched.schedule_at(0, toggler);
  sched.run_until(sim::seconds(30));
  EXPECT_GT(full.temperature_c(), half.temperature_c() + 20.0);
  EXPECT_GT(half.temperature_c(), 40.0);
}

TEST_F(HeaterFixture, PeakTracksMaximum) {
  HeaterPlant heater(sched, gate, adc, hotend_params());
  gate.set(true);
  sched.run_until(sim::seconds(60));
  gate.set(false);
  const double at_off = heater.temperature_c();
  sched.run_until(sim::seconds(600));
  EXPECT_LT(heater.temperature_c(), at_off);  // cooled down
  EXPECT_NEAR(heater.peak_c(), at_off, 2.0);  // peak remembered
}

TEST_F(HeaterFixture, EnergyIntegratesPower) {
  HeaterPlant heater(sched, gate, adc, hotend_params());
  gate.set(true);
  sched.run_until(sim::seconds(10));
  EXPECT_NEAR(heater.energy_j(), 40.0 * 10.0, 40.0 * 0.1);
}

TEST_F(HeaterFixture, BedHeatsMuchSlowerThanHotend) {
  HeaterPlant hotend(sched, gate, adc, hotend_params());
  sim::Wire bed_gate(sched, "D8");
  sim::AnalogChannel bed_adc(sched, "TB");
  HeaterPlant bed(sched, bed_gate, bed_adc, bed_params());
  gate.set(true);
  bed_gate.set(true);
  sched.run_until(sim::seconds(30));
  EXPECT_GT(hotend.temperature_c() - 25.0,
            2.0 * (bed.temperature_c() - 25.0));
}

TEST(FanPlant, SpinsUpTowardDutyTimesMax) {
  sim::Scheduler sched;
  sim::Wire gate(sched, "D9");
  FanPlant fan(sched, gate, /*max_rpm=*/5000.0, /*time_constant_s=*/0.5);
  gate.set(true);
  sched.run_until(sim::seconds(5));
  EXPECT_NEAR(fan.rpm(), 5000.0, 100.0);
  EXPECT_NEAR(fan.last_duty(), 1.0, 0.01);
}

TEST(FanPlant, StopsWhenGateFalls) {
  sim::Scheduler sched;
  sim::Wire gate(sched, "D9");
  FanPlant fan(sched, gate);
  gate.set(true);
  sched.run_until(sim::seconds(5));
  gate.set(false);
  sched.run_until(sim::seconds(10));
  EXPECT_LT(fan.rpm(), 100.0);
  EXPECT_GT(fan.mean_rpm(), 1000.0);  // average remembers the active phase
}

TEST(FanPlant, LagSmoothsStepChanges) {
  sim::Scheduler sched;
  sim::Wire gate(sched, "D9");
  FanPlant fan(sched, gate, 5000.0, /*time_constant_s=*/2.0);
  gate.set(true);
  sched.run_until(sim::ms(500));
  // After 0.25 time constants the fan is far from full speed.
  EXPECT_LT(fan.rpm(), 2500.0);
  EXPECT_GT(fan.rpm(), 200.0);
}

}  // namespace
}  // namespace offramps::plant
