// Unit tests for the pin catalog and pin banks.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/error.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"

namespace offramps::sim {
namespace {

TEST(Pins, EveryPinHasAUniqueName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kPinCount; ++i) {
    names.insert(pin_name(static_cast<Pin>(i)));
  }
  EXPECT_EQ(names.size(), kPinCount);
}

TEST(Pins, DirectionsMatchTheStack) {
  EXPECT_EQ(pin_direction(Pin::kXStep), PinDirection::kFirmwareToPrinter);
  EXPECT_EQ(pin_direction(Pin::kHotendHeat),
            PinDirection::kFirmwareToPrinter);
  EXPECT_EQ(pin_direction(Pin::kFan), PinDirection::kFirmwareToPrinter);
  EXPECT_EQ(pin_direction(Pin::kXMin), PinDirection::kPrinterToFirmware);
  EXPECT_EQ(pin_direction(Pin::kYMin), PinDirection::kPrinterToFirmware);
  EXPECT_EQ(pin_direction(Pin::kZMin), PinDirection::kPrinterToFirmware);
}

TEST(Pins, AxisPinLookup) {
  EXPECT_EQ(step_pin(Axis::kX), Pin::kXStep);
  EXPECT_EQ(dir_pin(Axis::kY), Pin::kYDir);
  EXPECT_EQ(enable_pin(Axis::kE), Pin::kEEnable);
  EXPECT_EQ(min_endstop_pin(Axis::kZ), Pin::kZMin);
  EXPECT_THROW(min_endstop_pin(Axis::kE), Error);
}

TEST(Pins, AxisNames) {
  EXPECT_STREQ(axis_name(Axis::kX), "X");
  EXPECT_STREQ(axis_name(Axis::kE), "E");
}

TEST(PinBank, WiresAreNamedWithPrefix) {
  Scheduler s;
  PinBank bank(s, "ard.");
  EXPECT_EQ(bank.wire(Pin::kXStep).name(), "ard.X_STEP");
  EXPECT_EQ(bank.analog(APin::kThermBed).name(), "ard.THERM_BED");
}

TEST(PinBank, EnablePinsIdleHighEverythingElseLow) {
  Scheduler s;
  PinBank bank(s, "b.");
  for (const auto axis : kAllAxes) {
    EXPECT_TRUE(bank.enable(axis).level()) << axis_name(axis);
    EXPECT_FALSE(bank.step(axis).level()) << axis_name(axis);
    EXPECT_FALSE(bank.dir(axis).level()) << axis_name(axis);
  }
  EXPECT_FALSE(bank.wire(Pin::kHotendHeat).level());
  EXPECT_FALSE(bank.wire(Pin::kFan).level());
}

TEST(PinBank, AxisAccessorsAliasWireAccessors) {
  Scheduler s;
  PinBank bank(s, "b.");
  bank.step(Axis::kY).set(true);
  EXPECT_TRUE(bank.wire(Pin::kYStep).level());
  bank.min_endstop(Axis::kX).set(true);
  EXPECT_TRUE(bank.wire(Pin::kXMin).level());
}

}  // namespace
}  // namespace offramps::sim
