// Unit + property tests for the Flaw3D Trojan g-code transforms.
#include <gtest/gtest.h>

#include <cmath>

#include "gcode/flaw3d.hpp"
#include "gcode/parser.hpp"
#include "gcode/stats.hpp"
#include "host/slicer.hpp"
#include "sim/error.hpp"

namespace offramps::gcode::flaw3d {
namespace {

Program sliced_square() {
  host::SliceProfile profile;
  host::SquareSpec spec{.size_mm = 15.0, .height_mm = 2.0,
                        .center_x_mm = 110.0, .center_y_mm = 100.0};
  return host::slice_square(spec, profile);
}

TEST(Reduction, ScalesExtrusionByFactor) {
  const Program original = sliced_square();
  const Statistics before = analyze(original);
  MutationReport report;
  const Program mutated =
      apply_reduction(original, {.factor = 0.5}, &report);
  const Statistics after = analyze(mutated);
  // Retractions (and their matching unretract E-only advances) are
  // preserved; the printed extrusion shrinks, so total positive advance
  // lands between 50% and 100% of the original.
  EXPECT_LT(after.extruded_mm, before.extruded_mm);
  EXPECT_NEAR(report.e_out_mm / report.e_in_mm, 0.5, 0.25);
  EXPECT_GT(report.moves_modified, 0u);
  EXPECT_EQ(report.commands_inserted, 0u);
  // Geometry untouched: same commands, same motion.
  ASSERT_EQ(mutated.size(), original.size());
  EXPECT_DOUBLE_EQ(analyze(mutated).extrusion_path_mm,
                   before.extrusion_path_mm);
}

TEST(Reduction, StealthiestCaseBarelyChangesTotals) {
  const Program original = sliced_square();
  MutationReport report;
  apply_reduction(original, {.factor = 0.98}, &report);
  EXPECT_NEAR(report.e_out_mm / report.e_in_mm, 0.98, 0.02);
}

TEST(Reduction, FactorOneIsIdentity) {
  const Program original = sliced_square();
  MutationReport report;
  const Program mutated =
      apply_reduction(original, {.factor = 1.0}, &report);
  EXPECT_EQ(report.moves_modified, 0u);
  EXPECT_EQ(mutated, original);
}

TEST(Reduction, RejectsBadFactor) {
  EXPECT_THROW(apply_reduction({}, {.factor = -0.1}), offramps::Error);
  EXPECT_THROW(apply_reduction({}, {.factor = 1.5}), offramps::Error);
}

TEST(Reduction, HandlesRelativeEMode) {
  const Program p = parse_program(
      "M83\n"
      "G1 X10 E2 F1200\n"
      "G1 X20 E2 F1200\n");
  MutationReport report;
  const Program mutated = apply_reduction(p, {.factor = 0.5}, &report);
  EXPECT_DOUBLE_EQ(*mutated[1].get('E'), 1.0);
  EXPECT_DOUBLE_EQ(*mutated[2].get('E'), 1.0);
}

TEST(Reduction, AbsoluteEAccumulatesConsistently) {
  const Program p = parse_program(
      "G1 X10 E2 F1200\n"
      "G1 X20 E4 F1200\n"
      "G92 E0\n"
      "G1 X30 E2 F1200\n");
  const Program mutated = apply_reduction(p, {.factor = 0.5});
  EXPECT_DOUBLE_EQ(*mutated[0].get('E'), 1.0);
  EXPECT_DOUBLE_EQ(*mutated[1].get('E'), 2.0);
  EXPECT_DOUBLE_EQ(*mutated[3].get('E'), 1.0);  // rebased by G92
}

TEST(Reduction, RetractionsPassThrough) {
  const Program p = parse_program(
      "G1 X10 E2 F1200\n"
      "G1 E1 F2100\n");  // retract 1 mm
  const Program mutated = apply_reduction(p, {.factor = 0.5});
  // Extrusion halves to 1; retraction still pulls back a full 1 mm.
  EXPECT_DOUBLE_EQ(*mutated[0].get('E'), 1.0);
  EXPECT_DOUBLE_EQ(*mutated[1].get('E'), 0.0);
}

TEST(Relocation, ConservesTotalFilamentModuloTail) {
  const Program original = sliced_square();
  const Statistics before = analyze(original);
  MutationReport report;
  const Program mutated = apply_relocation(
      original, {.every_n_moves = 5, .take_fraction = 0.15}, &report);
  const Statistics after = analyze(mutated);
  // Relocation withholds then re-extrudes; at most one batch can remain
  // unflushed at program end.
  EXPECT_NEAR(after.extruded_mm, before.extruded_mm,
              before.extruded_mm * 0.05);
  EXPECT_GT(report.commands_inserted, 0u);
}

TEST(Relocation, InsertsBlobsEveryN) {
  const Program original = sliced_square();
  const Statistics s = analyze(original);
  MutationReport report;
  apply_relocation(original, {.every_n_moves = 10, .take_fraction = 0.2},
                   &report);
  // One blob (plus an optional feedrate restore) about every 10
  // extrusion moves.
  const auto expected =
      static_cast<std::uint64_t>(s.extrusion_move_count / 10);
  EXPECT_GE(report.commands_inserted, expected);
  EXPECT_LE(report.commands_inserted, 2 * expected + 2);
}

TEST(Relocation, LargerNMeansFewerInsertions) {
  const Program original = sliced_square();
  MutationReport r5, r100;
  apply_relocation(original, {.every_n_moves = 5, .take_fraction = 0.15},
                   &r5);
  apply_relocation(original, {.every_n_moves = 100, .take_fraction = 0.15},
                   &r100);
  EXPECT_GT(r5.commands_inserted, r100.commands_inserted);
}

TEST(Relocation, RejectsBadParameters) {
  EXPECT_THROW(apply_relocation({}, {.every_n_moves = 0}), offramps::Error);
  EXPECT_THROW(
      apply_relocation({}, {.every_n_moves = 5, .take_fraction = 0.0}),
      offramps::Error);
  EXPECT_THROW(
      apply_relocation({}, {.every_n_moves = 5, .take_fraction = 1.0}),
      offramps::Error);
}

// Property sweep over Table II's reduction factors: output/input extrusion
// ratio tracks the factor (within the tolerance induced by preserved
// retract/unretract pairs).
class ReductionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReductionSweep, RatioTracksFactor) {
  const double factor = GetParam();
  MutationReport report;
  apply_reduction(sliced_square(), {.factor = factor}, &report);
  ASSERT_GT(report.e_in_mm, 0.0);
  const double ratio = report.e_out_mm / report.e_in_mm;
  // Unretract E-only moves are scaled too; only pure retractions are
  // exempt, so the overall ratio stays close to the factor.
  EXPECT_NEAR(ratio, factor, 0.15);
}

INSTANTIATE_TEST_SUITE_P(TableII, ReductionSweep,
                         ::testing::Values(0.5, 0.85, 0.9, 0.98));

}  // namespace
}  // namespace offramps::gcode::flaw3d
