// Unit tests for the wire-level UART (TX, RX, transaction decoder) and
// the end-to-end host link.
#include <gtest/gtest.h>

#include <vector>

#include "core/serial.hpp"
#include "host/rig.hpp"
#include "host/serial_tap.hpp"
#include "host/slicer.hpp"
#include "sim/error.hpp"
#include "sim/trace.hpp"

namespace offramps::core {
namespace {

struct SerialFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire line{sched, "UART", true};
  UartTx tx{sched, line, 115'200};
  UartRx rx{sched, line, 115'200};
  std::vector<std::uint8_t> received;

  void SetUp() override {
    rx.on_byte([this](std::uint8_t b, sim::Tick) { received.push_back(b); });
  }

  void send_and_run(std::initializer_list<std::uint8_t> bytes) {
    std::vector<std::uint8_t> v(bytes);
    tx.send(v);
    sched.run_all();
  }
};

TEST_F(SerialFixture, LineIdlesHigh) { EXPECT_TRUE(line.level()); }

TEST_F(SerialFixture, SingleByteRoundTrip) {
  send_and_run({0xA5});
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 0xA5);
  EXPECT_EQ(tx.bytes_sent(), 1u);
  EXPECT_EQ(rx.framing_errors(), 0u);
  EXPECT_TRUE(line.level());  // back to idle
}

TEST_F(SerialFixture, AllByteValuesRoundTrip) {
  std::vector<std::uint8_t> all;
  for (int b = 0; b < 256; ++b) all.push_back(static_cast<std::uint8_t>(b));
  tx.send(all);
  sched.run_all();
  ASSERT_EQ(received.size(), 256u);
  for (int b = 0; b < 256; ++b) {
    EXPECT_EQ(received[static_cast<std::size_t>(b)], b);
  }
}

TEST_F(SerialFixture, FrameTimingMatchesBaud) {
  // 1 byte = 10 bits at 115200 baud ~= 86.8 us.
  const sim::Tick start = sched.now();
  send_and_run({0x00});
  const double elapsed_us =
      static_cast<double>(sched.now() - start) / 1000.0;
  EXPECT_NEAR(elapsed_us, 10.0 * 1e6 / 115'200.0, 2.0);
  EXPECT_EQ(tx.frame_time(16), tx.bit_time() * 160);
}

TEST_F(SerialFixture, BackToBackBytesQueue) {
  std::vector<std::uint8_t> burst(100, 0x5A);
  tx.send(burst);
  EXPECT_TRUE(tx.busy());
  EXPECT_GE(tx.max_queue_depth(), 99u);
  sched.run_all();
  EXPECT_EQ(received.size(), 100u);
  EXPECT_FALSE(tx.busy());
}

TEST_F(SerialFixture, UtilizationTracksTraffic) {
  std::vector<std::uint8_t> burst(10, 0xFF);
  tx.send(burst);
  sched.run_all();
  // All time so far was spent transmitting.
  EXPECT_GT(tx.utilization(), 0.9);
  sched.run_until(sched.now() + sim::ms(10));
  EXPECT_LT(tx.utilization(), 0.2);  // idle time dilutes it
}

TEST_F(SerialFixture, BreakConditionIsFramingError) {
  // Hold the line low across an entire would-be frame: the receiver sees
  // a start bit whose stop bit never arrives.
  line.set(false);
  sched.run_until(sched.now() + tx.bit_time() * 12);
  line.set(true);
  sched.run_all();
  EXPECT_EQ(rx.framing_errors(), 1u);
  EXPECT_TRUE(received.empty());
}

TEST_F(SerialFixture, RecoversAfterFramingError) {
  line.set(false);
  sched.run_until(sched.now() + tx.bit_time() * 12);
  line.set(true);
  sched.run_until(sched.now() + tx.bit_time() * 2);
  send_and_run({0x42});
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 0x42);
}

TEST(UartTxValidation, ZeroBaudThrows) {
  sim::Scheduler sched;
  sim::Wire line(sched, "U", true);
  EXPECT_THROW(UartTx(sched, line, 0), offramps::Error);
  EXPECT_THROW(UartRx(sched, line, 0), offramps::Error);
}

TEST(Decoder, ReassemblesTransactions) {
  TransactionDecoder dec;
  Transaction a;
  a.counts = {100, -200, 300, 40000};
  std::vector<Transaction> seen;
  dec.on_transaction([&](const Transaction& t) { seen.push_back(t); });
  const auto frame = a.to_frame();
  sim::Tick t = 1000;
  for (const auto b : frame) dec.feed(b, t += 100);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].counts, a.counts);
  EXPECT_EQ(dec.crc_errors(), 0u);
}

TEST(Decoder, ResynchronizesAfterGap) {
  TransactionDecoder dec(sim::ms(20));
  Transaction a;
  a.counts = {1, 2, 3, 4};
  const auto frame = a.to_frame();
  sim::Tick t = 1000;
  // Deliver half a frame, then go silent (lost bytes), then a full one.
  for (std::size_t i = 0; i < 8; ++i) dec.feed(frame[i], t += 100);
  t += sim::ms(100);
  for (const auto b : frame) dec.feed(b, t += 100);
  ASSERT_EQ(dec.capture().size(), 1u);
  EXPECT_EQ(dec.capture().transactions[0].counts, a.counts);
  EXPECT_EQ(dec.resyncs(), 1u);
}

TEST(Decoder, RejectsCorruptedFrameAndRecovers) {
  TransactionDecoder dec;
  Transaction a;
  a.index = 7;
  a.counts = {10, 20, 30, 40};
  auto frame = a.to_frame();
  frame[8] ^= 0x40;  // flip one payload bit: CRC must catch it
  sim::Tick t = 1000;
  for (const auto b : frame) dec.feed(b, t += 100);
  EXPECT_EQ(dec.capture().size(), 0u);
  EXPECT_EQ(dec.crc_errors(), 1u);
  // The next intact frame decodes normally.
  Transaction b2;
  b2.index = 8;
  b2.counts = {11, 21, 31, 41};
  for (const auto b : b2.to_frame()) dec.feed(b, t += 100);
  ASSERT_EQ(dec.capture().size(), 1u);
  EXPECT_EQ(dec.capture().transactions[0].counts, b2.counts);
}

TEST(Decoder, DropsDuplicateIndices) {
  TransactionDecoder dec;
  Transaction a;
  a.index = 3;
  a.counts = {5, 6, 7, 8};
  const auto frame = a.to_frame();
  sim::Tick t = 1000;
  for (const auto b : frame) dec.feed(b, t += 100);
  for (const auto b : frame) dec.feed(b, t += 100);  // duplicated frame
  EXPECT_EQ(dec.capture().size(), 1u);
  EXPECT_EQ(dec.duplicates_dropped(), 1u);
}

TEST(SerialLink, EndToEndPrintCaptureMatchesReporter) {
  // The host's serially-decoded capture must agree, count for count, with
  // what the FPGA-side reporter logged.
  host::RigOptions options;
  host::Rig rig(options);
  host::SerialTap tap(rig.scheduler(), rig.board().fpga().uart_tx_line(),
                      115'200);
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  const host::RunResult r = rig.run(host::slice_cube(cube, profile));
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(tap.framing_errors(), 0u);
  EXPECT_EQ(tap.resyncs(), 0u);
  ASSERT_GE(tap.capture().size(), r.capture.size() - 1);
  for (std::size_t i = 0; i < tap.capture().size(); ++i) {
    EXPECT_EQ(tap.capture().transactions[i].counts,
              r.capture.transactions[i].counts)
        << "transaction " << i;
  }
  // Link budget: a 24-byte frame (magic + index + counts + CRC) at
  // 115200 baud needs ~2.1 ms, far below the 100 ms transaction period
  // (paper's design headroom).
  EXPECT_EQ(rig.board().fpga().uart_phy().max_queue_depth(), 24u);
}

}  // namespace
}  // namespace offramps::core
