// svc::RefCache: digest stability/sensitivity, the bounded on-disk
// record codec, the paranoid rejection paths (truncated, corrupt,
// version-skewed, mis-keyed, trailing-garbage entries are deleted and
// treated as misses - never crashes), the LRU byte budget, and the
// cachetear chaos drill.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/capture.hpp"
#include "host/chaos.hpp"
#include "host/slicer.hpp"
#include "sim/error.hpp"
#include "svc/ref_cache.hpp"

namespace {

using offramps::Error;
using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::host::ChaosInjector;
using offramps::host::SliceProfile;
using offramps::svc::ChannelSet;
using offramps::svc::RefCache;
using offramps::svc::RefCacheOptions;
using offramps::svc::RefEntry;
using offramps::svc::reference_digest;

RefEntry sample_entry(std::size_t txns, std::size_t power_samples,
                      std::size_t side_samples = 0) {
  RefEntry entry;
  entry.golden.label = "cache-test";
  entry.golden.print_completed = true;
  for (std::size_t i = 0; i < txns; ++i) {
    Transaction t;
    t.index = static_cast<std::uint32_t>(i);
    t.counts = {static_cast<std::int32_t>(i), static_cast<std::int32_t>(2 * i),
                0, static_cast<std::int32_t>(3 * i)};
    t.time_ns = 500'000ull * (i + 1);
    entry.golden.transactions.push_back(t);
  }
  entry.golden.final_counts = {100, 200, 0, 300};
  for (std::size_t i = 0; i < power_samples; ++i) {
    entry.golden_power.push_back(
        {.t_s = 0.25 * static_cast<double>(i), .watts = 10.0 + i});
  }
  for (std::size_t i = 0; i < side_samples; ++i) {
    entry.golden_acoustic.push_back(
        {.t_s = 0.05 * static_cast<double>(i), .value = 35.0 + i});
  }
  // Deliberately a different length than acoustic so a codec that swaps
  // the two sections fails the round-trip.
  for (std::size_t i = 0; i + 1 < side_samples; ++i) {
    entry.golden_vibration.push_back(
        {.t_s = 0.05 * static_cast<double>(i), .value = 3.0 + 0.5 * i});
  }
  return entry;
}

/// Digest-key channel subsets, named for the tests below.
ChannelSet all_channels() { return ChannelSet{}; }
ChannelSet power_only() { return ChannelSet{true, true, false, false}; }

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(RefDigest, StableAndSensitiveToEveryInput) {
  const SliceProfile profile;
  const std::uint64_t base =
      reference_digest(8.0, 3.0, profile, 42, all_channels());
  EXPECT_EQ(reference_digest(8.0, 3.0, profile, 42, all_channels()), base)
      << "same inputs must hash identically across calls";

  std::set<std::uint64_t> digests{base};
  digests.insert(reference_digest(8.5, 3.0, profile, 42, all_channels()));
  digests.insert(reference_digest(8.0, 2.0, profile, 42, all_channels()));
  digests.insert(reference_digest(8.0, 3.0, profile, 43, all_channels()));
  // A golden computed without a probe must never serve a campaign that
  // expects that probe's trace: each side-channel flag perturbs the key.
  digests.insert(reference_digest(8.0, 3.0, profile, 42, power_only()));
  digests.insert(reference_digest(8.0, 3.0, profile, 42,
                                  ChannelSet{true, false, false, false}));
  digests.insert(reference_digest(8.0, 3.0, profile, 42,
                                  ChannelSet{true, true, true, false}));
  digests.insert(reference_digest(8.0, 3.0, profile, 42,
                                  ChannelSet{true, true, false, true}));
  SliceProfile fat = profile;
  fat.layer_height_mm *= 2.0;
  digests.insert(reference_digest(8.0, 3.0, fat, 42, all_channels()));
  EXPECT_EQ(digests.size(), 9u) << "every input must perturb the digest";

  // `steps` gates no probe and no golden section, so it deliberately
  // stays out of the key: the same entry serves either way.
  ChannelSet no_steps = all_channels();
  no_steps.steps = false;
  EXPECT_EQ(reference_digest(8.0, 3.0, profile, 42, no_steps), base);
}

TEST(RefCacheCodec, RoundTripPreservesEverything) {
  const RefEntry entry = sample_entry(12, 5, 9);
  const std::uint64_t key =
      reference_digest(8.0, 3.0, SliceProfile{}, 42, all_channels());
  const std::vector<std::uint8_t> blob = RefCache::encode_entry(key, entry);

  const RefEntry back = RefCache::decode_entry(blob.data(), blob.size(), key);
  EXPECT_EQ(back.golden.to_binary(), entry.golden.to_binary());
  ASSERT_EQ(back.golden_power.size(), entry.golden_power.size());
  for (std::size_t i = 0; i < back.golden_power.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.golden_power[i].t_s, entry.golden_power[i].t_s);
    EXPECT_DOUBLE_EQ(back.golden_power[i].watts, entry.golden_power[i].watts);
  }
  ASSERT_EQ(back.golden_acoustic.size(), entry.golden_acoustic.size());
  for (std::size_t i = 0; i < back.golden_acoustic.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.golden_acoustic[i].t_s, entry.golden_acoustic[i].t_s);
    EXPECT_DOUBLE_EQ(back.golden_acoustic[i].value,
                     entry.golden_acoustic[i].value);
  }
  ASSERT_EQ(back.golden_vibration.size(), entry.golden_vibration.size());
  for (std::size_t i = 0; i < back.golden_vibration.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.golden_vibration[i].t_s,
                     entry.golden_vibration[i].t_s);
    EXPECT_DOUBLE_EQ(back.golden_vibration[i].value,
                     entry.golden_vibration[i].value);
  }
}

TEST(RefCacheCodec, EmptyTracesRoundTrip) {
  const RefEntry entry = sample_entry(3, 0, 0);
  const std::vector<std::uint8_t> blob = RefCache::encode_entry(7, entry);
  const RefEntry back = RefCache::decode_entry(blob.data(), blob.size(), 7);
  EXPECT_TRUE(back.golden_power.empty());
  EXPECT_TRUE(back.golden_acoustic.empty());
  EXPECT_TRUE(back.golden_vibration.empty());
  EXPECT_EQ(back.golden.size(), 3u);
}

TEST(RefCacheCodec, RejectsEveryMalformation) {
  const RefEntry entry = sample_entry(8, 3, 5);
  const std::uint64_t key = 0xDEADBEEFCAFEF00Dull;
  const std::vector<std::uint8_t> blob = RefCache::encode_entry(key, entry);

  // Mis-keyed: the record is intact but belongs to another digest.
  EXPECT_THROW(RefCache::decode_entry(blob.data(), blob.size(), key + 1),
               Error);

  // Truncation at every prefix length must throw, never read past the
  // end or accept a partial record.
  for (std::size_t n = 0; n < blob.size(); n += 7) {
    EXPECT_THROW(RefCache::decode_entry(blob.data(), n, key), Error)
        << "accepted a " << n << "-byte prefix of a " << blob.size()
        << "-byte record";
  }

  // Trailing garbage.
  std::vector<std::uint8_t> padded = blob;
  padded.push_back(0x00);
  EXPECT_THROW(RefCache::decode_entry(padded.data(), padded.size(), key),
               Error);

  // Bad magic and version skew.
  std::vector<std::uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(RefCache::decode_entry(bad_magic.data(), bad_magic.size(), key),
               Error);
  std::vector<std::uint8_t> skewed = blob;
  skewed[4] ^= 0x01;  // u16 version
  EXPECT_THROW(RefCache::decode_entry(skewed.data(), skewed.size(), key),
               Error);

  // A corrupted capture-blob length prefix claiming gigabytes must be
  // rejected by the bounded reader, not allocated.
  std::vector<std::uint8_t> lying = blob;
  lying[16] = 0xFF;
  lying[17] = 0xFF;
  lying[18] = 0xFF;
  lying[19] = 0x7F;
  EXPECT_THROW(RefCache::decode_entry(lying.data(), lying.size(), key), Error);
}

TEST(RefCache, MissThenPutThenHit) {
  const auto dir = fresh_dir("refcache_basic");
  RefCache cache({.dir = dir.string(), .max_bytes = 0});
  const std::uint64_t key =
      reference_digest(6.0, 1.5, SliceProfile{}, 42, all_channels());

  EXPECT_FALSE(cache.get(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  const RefEntry entry = sample_entry(10, 4, 6);
  cache.put(key, entry);
  EXPECT_TRUE(std::filesystem::exists(cache.path_for(key)));

  const auto hit = cache.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->golden.to_binary(), entry.golden.to_binary());
  EXPECT_EQ(hit->golden_power.size(), 4u);
  EXPECT_EQ(hit->golden_acoustic.size(), 6u);
  EXPECT_EQ(hit->golden_vibration.size(), 5u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().rejected, 0u);

  // A second cache over the same directory sees the entry (the store is
  // the disk, not the process).
  RefCache other({.dir = dir.string(), .max_bytes = 0});
  EXPECT_TRUE(other.get(key).has_value());
  std::filesystem::remove_all(dir);
}

TEST(RefCache, RejectedEntryIsDeletedAndRecomputable) {
  const auto dir = fresh_dir("refcache_reject");
  RefCache cache({.dir = dir.string(), .max_bytes = 0});
  const std::uint64_t key = 99;
  cache.put(key, sample_entry(6, 2));

  // Corrupt the record in place, outside the temp+rename discipline.
  {
    std::fstream f(cache.path_for(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(12);
    f.put('\xEE');
  }
  EXPECT_FALSE(cache.get(key).has_value())
      << "a corrupt entry must read as a miss";
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_FALSE(std::filesystem::exists(cache.path_for(key)))
      << "the poisoned entry must be deleted";

  // The caller recomputes and the cache heals.
  cache.put(key, sample_entry(6, 2));
  EXPECT_TRUE(cache.get(key).has_value());
  std::filesystem::remove_all(dir);
}

TEST(RefCache, PreMultiModalEntryMissesAndIsRecomputed) {
  // An entry written by a build that predates the side-channel traces
  // carries the old format version.  It must read as a miss (deleted,
  // recomputed) - never be served to a campaign expecting acoustic and
  // vibration goldens it cannot hold.
  const auto dir = fresh_dir("refcache_version");
  RefCache cache({.dir = dir.string(), .max_bytes = 0});
  const std::uint64_t key =
      reference_digest(6.0, 1.5, SliceProfile{}, 42, all_channels());
  cache.put(key, sample_entry(6, 2, 3));

  // Rewind the on-disk format version word (u16 at offset 4) to v1.
  {
    std::fstream f(cache.path_for(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(4);
    f.put('\x01');
    f.put('\x00');
  }
  EXPECT_FALSE(cache.get(key).has_value())
      << "a version-skewed entry must read as a miss";
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_FALSE(std::filesystem::exists(cache.path_for(key)))
      << "the stale entry must be deleted so the campaign recomputes";

  cache.put(key, sample_entry(6, 2, 3));
  const auto healed = cache.get(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->golden_acoustic.size(), 3u);
  EXPECT_EQ(healed->golden_vibration.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(RefCache, CacheTearDrillRejectsHalfWrittenEntry) {
  const auto dir = fresh_dir("refcache_tear");
  RefCache cache({.dir = dir.string(), .max_bytes = 0});
  const std::uint64_t key = 1234;
  cache.put(key, sample_entry(20, 8));
  const std::string path = cache.path_for(key);
  const auto full = std::filesystem::file_size(path);

  ChaosInjector::tear_cache_entry(path);
  EXPECT_EQ(std::filesystem::file_size(path), full / 2);
  EXPECT_FALSE(cache.get(key).has_value());
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));

  EXPECT_THROW(ChaosInjector::tear_cache_entry(dir.string() + "/missing.ref"),
               Error);
  std::filesystem::remove_all(dir);
}

TEST(RefCache, LruEvictsOldestButNeverTheEntryJustWritten) {
  const auto dir = fresh_dir("refcache_lru");
  // Budget sized from a real record: room for two entries, not three.
  const std::vector<std::uint8_t> one =
      RefCache::encode_entry(1, sample_entry(16, 4));
  RefCache cache({.dir = dir.string(),
                  .max_bytes = static_cast<std::uint64_t>(one.size()) * 2});

  const auto put_spaced = [&](std::uint64_t key) {
    // mtime is the LRU clock; space the writes so ordering is unambiguous
    // even on coarse-grained filesystems.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.put(key, sample_entry(16, 4));
  };
  put_spaced(1);
  put_spaced(2);
  EXPECT_TRUE(std::filesystem::exists(cache.path_for(1)));
  EXPECT_TRUE(std::filesystem::exists(cache.path_for(2)));
  EXPECT_EQ(cache.stats().evictions, 0u);

  put_spaced(3);
  EXPECT_FALSE(std::filesystem::exists(cache.path_for(1)))
      << "oldest entry must be evicted";
  EXPECT_TRUE(std::filesystem::exists(cache.path_for(3)))
      << "the entry just written must never be evicted";
  EXPECT_EQ(cache.stats().evictions, 1u);

  // get() refreshes recency: touch 2, insert 4, and 2 survives.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(cache.get(2).has_value());
  put_spaced(4);
  EXPECT_TRUE(std::filesystem::exists(cache.path_for(2)))
      << "a freshly-read entry is recent, not stale";
  EXPECT_FALSE(std::filesystem::exists(cache.path_for(3)));
  EXPECT_TRUE(std::filesystem::exists(cache.path_for(4)));
  std::filesystem::remove_all(dir);
}

TEST(RefCache, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      RefCache({.dir = "/proc/definitely/not/writable", .max_bytes = 0}),
      Error);
}

}  // namespace
