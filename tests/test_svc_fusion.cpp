// The fusion layer of the pluggable detector: channel naming, registry
// order (= fusion tie-break order), pick_first_trip's verdict rule, and
// end-to-end attribution through OnlineDetector - which modality raised
// the first alarm, which were armed but quiet, and what the degraded
// counts_only subset still covers.  These drive the detector directly
// with synthetic streams so every fusion corner is deterministic.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "host/rig.hpp"
#include "svc/channel.hpp"
#include "svc/fleet.hpp"
#include "svc/online_detector.hpp"

namespace {

using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::plant::SideTrace;
using offramps::svc::Channel;
using offramps::svc::channel_from_name;
using offramps::svc::channel_name;
using offramps::svc::ChannelRegistry;
using offramps::svc::ChannelSet;
using offramps::svc::ChannelTrip;
using offramps::svc::ChannelVerdict;
using offramps::svc::kChannelCount;
using offramps::svc::OnlineDetector;
using offramps::svc::OnlineDetectorOptions;
using offramps::svc::OnlineReport;
using offramps::svc::pick_first_trip;
using offramps::svc::SampleKind;

// ---- Channel naming (wire / JSON surface) -------------------------------

TEST(ChannelNames, RoundTripOverEveryChannel) {
  for (std::uint8_t v = 0; v < kChannelCount; ++v) {
    const auto c = static_cast<Channel>(v);
    const char* name = channel_name(c);
    EXPECT_STRNE(name, "?") << "channel " << int(v) << " has no name";
    EXPECT_EQ(channel_from_name(name), c)
        << "name '" << name << "' does not round-trip";
  }
  EXPECT_EQ(channel_from_name("definitely-not-a-channel"), Channel::kNone);
  EXPECT_EQ(channel_from_name(""), Channel::kNone);
}

TEST(ChannelNames, RegistryNamesMatchTheEnumNames) {
  for (const auto& info : ChannelRegistry::global().list()) {
    EXPECT_STREQ(info.name, channel_name(info.id));
    EXPECT_EQ(channel_from_name(info.name), info.id);
  }
}

// ---- Registry order = legacy fused priority -----------------------------

TEST(ChannelRegistry, BuiltinsRegisterInLegacyPriorityOrder) {
  const auto infos = ChannelRegistry::global().list();
  ASSERT_GE(infos.size(), 8u);
  const std::array<Channel, 8> expected{
      Channel::kGoldenCompare, Channel::kStreamLength, Channel::kGoldenFree,
      Channel::kPower,         Channel::kAcoustic,     Channel::kVibration,
      Channel::kFinalCounts,   Channel::kStaticOracle};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(infos[i].id, expected[i]) << "registry slot " << i;
    EXPECT_TRUE(ChannelRegistry::global().has(expected[i]));
  }
}

// ---- pick_first_trip (the fusion rule itself) ---------------------------

ChannelTrip trip(Channel c, std::uint32_t window) {
  ChannelTrip t;
  t.channel = c;
  t.window = window;
  return t;
}

TEST(PickFirstTrip, EmptyMeansNoAlarm) {
  const std::vector<ChannelTrip> none;
  EXPECT_EQ(pick_first_trip(none), nullptr);
}

TEST(PickFirstTrip, EarliestWindowWins) {
  const std::vector<ChannelTrip> trips{trip(Channel::kPower, 9),
                                       trip(Channel::kVibration, 3),
                                       trip(Channel::kAcoustic, 7)};
  const ChannelTrip* first = pick_first_trip(trips);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->channel, Channel::kVibration);
  EXPECT_EQ(first->window, 3u);
}

TEST(PickFirstTrip, SameWindowTieGoesToDeliveryOrder) {
  // Channels are delivered to in registration order, so the first trip
  // in the vector is the earlier-registered channel: it must win the
  // tie, reproducing the legacy fused priority byte for byte.
  const std::vector<ChannelTrip> trips{trip(Channel::kGoldenCompare, 4),
                                       trip(Channel::kPower, 4)};
  const ChannelTrip* first = pick_first_trip(trips);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->channel, Channel::kGoldenCompare);

  const std::vector<ChannelTrip> reversed{trip(Channel::kPower, 4),
                                          trip(Channel::kGoldenCompare, 4)};
  EXPECT_EQ(pick_first_trip(reversed)->channel, Channel::kPower);
}

// ---- End-to-end attribution through OnlineDetector ----------------------

/// A flat synthetic side-channel recording: `seconds` of samples at the
/// probes' 50 ms cadence.
SideTrace flat_trace(double seconds, double level) {
  SideTrace trace;
  for (double t = 0.0; t < seconds; t += 0.05) {
    trace.push_back({t, level});
  }
  return trace;
}

OnlineDetectorOptions quiet_options() {
  OnlineDetectorOptions options;
  // Synthetic streams are not physical prints; keep the golden-free
  // machine model out of the way.
  options.golden_free = false;
  return options;
}

const ChannelVerdict* row(const OnlineReport& report, Channel c) {
  for (const auto& v : report.channels) {
    if (v.channel == c) return &v;
  }
  return nullptr;
}

TEST(Fusion, AcousticAloneTripsAndIsAttributed) {
  const SideTrace golden = flat_trace(20.0, 40.0);
  OnlineDetector det(quiet_options());
  det.set_golden_acoustic(&golden);

  // The observed recording tracks the signature for 8 s, then diverges
  // far past the 5-level tolerance for good.
  for (const auto& s : golden) {
    det.submit_sample(SampleKind::kAcoustic, s.t_s,
                      s.t_s < 8.0 ? s.value : s.value + 20.0);
  }

  const OnlineReport report = det.report();
  EXPECT_TRUE(report.alarmed);
  EXPECT_TRUE(report.alarmed_mid_print);
  EXPECT_EQ(report.first_channel, Channel::kAcoustic);
  EXPECT_TRUE(report.acoustic.sabotage_likely);

  const ChannelVerdict* acoustic = row(report, Channel::kAcoustic);
  ASSERT_NE(acoustic, nullptr);
  EXPECT_TRUE(acoustic->armed);
  EXPECT_TRUE(acoustic->tripped);
  EXPECT_GT(acoustic->mismatches, 0u);
  for (const auto& v : report.channels) {
    if (v.channel != Channel::kAcoustic) {
      EXPECT_FALSE(v.tripped) << channel_name(v.channel)
                              << " must stay quiet on an acoustic-only fault";
    }
  }
}

TEST(Fusion, VibrationAloneTripsAndIsAttributed) {
  const SideTrace golden = flat_trace(20.0, 5.0);
  OnlineDetector det(quiet_options());
  det.set_golden_vibration(&golden);

  for (const auto& s : golden) {
    det.submit_sample(SampleKind::kVibration, s.t_s,
                      s.t_s < 8.0 ? s.value : s.value + 30.0);
  }

  const OnlineReport report = det.report();
  EXPECT_TRUE(report.alarmed);
  EXPECT_EQ(report.first_channel, Channel::kVibration);
  const ChannelVerdict* vibration = row(report, Channel::kVibration);
  ASSERT_NE(vibration, nullptr);
  EXPECT_TRUE(vibration->tripped);
  EXPECT_EQ(row(report, Channel::kAcoustic)->tripped, false);
}

TEST(Fusion, UnarmedSideChannelsReportButNeverJudge) {
  // All channels enabled, but no golden traces provided: the side
  // channels appear in the attribution with armed=false and a stream of
  // their samples never produces a verdict.
  OnlineDetector det(quiet_options());
  for (double t = 0.0; t < 10.0; t += 0.05) {
    det.submit_sample(SampleKind::kAcoustic, t, 99.0);
    det.submit_sample(SampleKind::kVibration, t, 99.0);
    det.submit_sample(SampleKind::kPower, t, 99.0);
  }
  const OnlineReport report = det.report();
  EXPECT_FALSE(report.alarmed);
  for (const Channel c :
       {Channel::kPower, Channel::kAcoustic, Channel::kVibration}) {
    const ChannelVerdict* v = row(report, c);
    ASSERT_NE(v, nullptr) << channel_name(c);
    EXPECT_FALSE(v->armed) << channel_name(c);
    EXPECT_FALSE(v->tripped) << channel_name(c);
    EXPECT_EQ(v->windows_compared, 0u) << channel_name(c);
  }
}

TEST(Fusion, DisableFlagsDropChannelsEntirely) {
  OnlineDetectorOptions options = quiet_options();
  options.channels = ChannelSet{true, true, false, false};
  const SideTrace golden = flat_trace(20.0, 40.0);
  OnlineDetector det(options);
  det.set_golden_acoustic(&golden);  // reference offered, channel off

  // Samples for a disabled channel are dropped on the floor.
  for (const auto& s : golden) {
    det.submit_sample(SampleKind::kAcoustic, s.t_s, s.value + 20.0);
  }
  const OnlineReport report = det.report();
  EXPECT_FALSE(report.alarmed);
  EXPECT_EQ(row(report, Channel::kAcoustic), nullptr)
      << "a disabled channel must not even appear in the attribution";
  EXPECT_EQ(row(report, Channel::kVibration), nullptr);
  EXPECT_NE(row(report, Channel::kPower), nullptr);
  EXPECT_NE(row(report, Channel::kGoldenCompare), nullptr);
}

TEST(Fusion, CountsOnlySubsetStillCatchesStepSabotage) {
  // The Supervisor's degraded ladder: side-channel probes gone, step
  // counting alone.  The subset must drop every probe-backed channel yet
  // keep the paper's core detection working.
  OnlineDetectorOptions options = quiet_options();
  options.channels = ChannelSet{}.counts_only();
  options.consecutive_to_alarm = 1;

  Capture golden;
  golden.label = "golden";
  golden.print_completed = true;
  for (std::uint32_t i = 0; i < 10; ++i) {
    Transaction txn;
    txn.index = i;
    const auto base = static_cast<std::int32_t>(1000 + 100 * i);
    txn.counts = {base, base + 1, base + 2, base + 3};
    txn.time_ns = 100'000'000ull * (i + 1);
    golden.transactions.push_back(txn);
  }

  OnlineDetector det(options);
  det.set_golden(&golden);
  for (const ChannelVerdict& v : det.report().channels) {
    EXPECT_NE(v.channel, Channel::kPower);
    EXPECT_NE(v.channel, Channel::kAcoustic);
    EXPECT_NE(v.channel, Channel::kVibration);
  }

  Transaction bad = golden.transactions[0];
  bad.counts[0] *= 2;
  det.submit(bad);
  det.drain();
  EXPECT_TRUE(det.alarmed());
  EXPECT_EQ(det.report().first_channel, Channel::kGoldenCompare);
}

TEST(Fusion, EarliestWindowWinsAcrossModalities) {
  // Both side channels diverge, but vibration diverges first: the fused
  // verdict must attribute the alarm to the earlier stream position even
  // though acoustic is the earlier-registered channel (and would win a
  // same-window tie).  A clean transaction stream rides along so trips
  // land on real capture windows (side-channel trips are attributed to
  // the latest drained transaction window).
  const SideTrace acoustic_golden = flat_trace(30.0, 40.0);
  const SideTrace vibration_golden = flat_trace(30.0, 5.0);
  Capture golden;
  golden.label = "golden";
  for (std::uint32_t i = 0; i < 300; ++i) {
    Transaction txn;
    txn.index = i;
    const auto base = static_cast<std::int32_t>(1000 + 10 * i);
    txn.counts = {base, base, base, base};
    txn.time_ns = 100'000'000ull * (i + 1);
    golden.transactions.push_back(txn);
  }

  OnlineDetector det(quiet_options());
  det.set_golden(&golden);
  det.set_golden_acoustic(&acoustic_golden);
  det.set_golden_vibration(&vibration_golden);

  std::size_t next_txn = 0;
  for (std::size_t i = 0; i < acoustic_golden.size(); ++i) {
    const double t = acoustic_golden[i].t_s;
    while (next_txn < golden.transactions.size() &&
           static_cast<double>(golden.transactions[next_txn].time_ns) <=
               t * 1e9) {
      det.submit(golden.transactions[next_txn]);
      det.drain();
      ++next_txn;
    }
    // Vibration goes bad at 8 s, acoustic at 16 s; deliver acoustic
    // first each tick so delivery order cannot be what decides.
    det.submit_sample(SampleKind::kAcoustic, t, t < 16.0 ? 40.0 : 60.0);
    det.submit_sample(SampleKind::kVibration, t, t < 8.0 ? 5.0 : 35.0);
  }

  const OnlineReport report = det.report();
  EXPECT_TRUE(report.alarmed);
  EXPECT_EQ(report.first_channel, Channel::kVibration);
  const ChannelVerdict* vibration = row(report, Channel::kVibration);
  const ChannelVerdict* acoustic = row(report, Channel::kAcoustic);
  ASSERT_NE(vibration, nullptr);
  ASSERT_NE(acoustic, nullptr);
  EXPECT_TRUE(vibration->tripped);
  ASSERT_TRUE(acoustic->tripped);
  EXPECT_LT(vibration->trip_window, acoustic->trip_window);
  EXPECT_EQ(report.alarm_window, vibration->trip_window);
}

// ---- attach_probes (the one probe-wiring point of the fleet) ------------

TEST(AttachProbes, NoiseSeedsAreDerivedPerRig) {
  // Regression pin for the shared-noise bug: every probe attachment
  // (reference phase, live rigs, daemon) goes through attach_probes,
  // which must derive the noise seed from the rig seed - the option
  // defaults are channel tags, never seeds to run with.
  offramps::host::RigOptions a, b;
  offramps::svc::attach_probes(a, ChannelSet{}, 1000);
  offramps::svc::attach_probes(b, ChannelSet{}, 1001);
  ASSERT_TRUE(a.power_probe && a.acoustic_probe && a.vibration_probe);
  EXPECT_EQ(a.power_probe->noise_seed,
            offramps::plant::probe_noise_seed(
                1000, offramps::plant::PowerProbeOptions{}.noise_seed));
  EXPECT_EQ(a.acoustic_probe->noise_seed,
            offramps::plant::probe_noise_seed(
                1000, offramps::plant::AcousticProbeOptions{}.noise_seed));
  EXPECT_EQ(a.vibration_probe->noise_seed,
            offramps::plant::probe_noise_seed(
                1000, offramps::plant::VibrationProbeOptions{}.noise_seed));
  // Adjacent rig seeds must not share any probe's noise stream.
  EXPECT_NE(a.power_probe->noise_seed, b.power_probe->noise_seed);
  EXPECT_NE(a.acoustic_probe->noise_seed, b.acoustic_probe->noise_seed);
  EXPECT_NE(a.vibration_probe->noise_seed, b.vibration_probe->noise_seed);
}

TEST(AttachProbes, HonorsTheChannelSet) {
  offramps::host::RigOptions ro;
  offramps::svc::attach_probes(ro, ChannelSet{}.counts_only(), 7);
  EXPECT_FALSE(ro.power_probe.has_value());
  EXPECT_FALSE(ro.acoustic_probe.has_value());
  EXPECT_FALSE(ro.vibration_probe.has_value());

  offramps::svc::attach_probes(ro, ChannelSet{true, false, true, false}, 7);
  EXPECT_FALSE(ro.power_probe.has_value());
  EXPECT_TRUE(ro.acoustic_probe.has_value());
  EXPECT_FALSE(ro.vibration_probe.has_value());
}

}  // namespace
