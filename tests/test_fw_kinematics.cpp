// Unit tests for the pure fw::kinematics translation layer.
#include <gtest/gtest.h>

#include <cmath>

#include "fw/kinematics.hpp"
#include "gcode/parser.hpp"

namespace offramps::fw {
namespace {

gcode::Command cmd_of(const char* line) {
  auto c = gcode::parse_line(line);
  EXPECT_TRUE(c.has_value()) << line;
  return *c;
}

TEST(Kinematics, AbsoluteMoveResolvesToSteps) {
  const Config config;
  MotionState st;
  const auto mv = resolve_move(config, st, cmd_of("G1 X10 Y-2 F3000"), true);
  EXPECT_EQ(mv.delta_steps[0], 1000);   // 10 mm * 100 steps/mm
  EXPECT_EQ(mv.delta_steps[1], -200);   // unhomed: no clamping
  EXPECT_EQ(mv.delta_steps[2], 0);
  EXPECT_EQ(mv.delta_steps[3], 0);
  EXPECT_DOUBLE_EQ(mv.feed_mm_s, 50.0);
  EXPECT_FALSE(mv.clamped[0]);
  EXPECT_FALSE(mv.clamped[1]);
}

TEST(Kinematics, ResolveDoesNotMutateCommitDoes) {
  const Config config;
  MotionState st;
  const auto mv = resolve_move(config, st, cmd_of("G1 X10 F3000"), true);
  EXPECT_EQ(st.position_steps[0], 0);
  EXPECT_DOUBLE_EQ(st.feed_mm_min, 1500.0);
  commit_move(config, st, cmd_of("G1 X10 F3000"), mv, /*executed=*/true);
  EXPECT_EQ(st.position_steps[0], 1000);
  EXPECT_DOUBLE_EQ(st.feed_mm_min, 3000.0);
}

TEST(Kinematics, CommitWithoutExecutionKeepsPosition) {
  // The firmware commits F immediately but the position only after the
  // stepper ran the segment.
  const Config config;
  MotionState st;
  const auto mv = resolve_move(config, st, cmd_of("G1 X10 F3000"), true);
  commit_move(config, st, cmd_of("G1 X10 F3000"), mv, /*executed=*/false);
  EXPECT_EQ(st.position_steps[0], 0);
  EXPECT_DOUBLE_EQ(st.feed_mm_min, 3000.0);
}

TEST(Kinematics, RelativeModeAccumulates) {
  const Config config;
  MotionState st;
  ASSERT_TRUE(apply_modal(st, cmd_of("G91")));
  auto mv = resolve_move(config, st, cmd_of("G1 X5"), true);
  commit_move(config, st, cmd_of("G1 X5"), mv, true);
  mv = resolve_move(config, st, cmd_of("G1 X5"), true);
  commit_move(config, st, cmd_of("G1 X5"), mv, true);
  EXPECT_EQ(st.position_steps[0], 1000);
  EXPECT_DOUBLE_EQ(st.logical_mm(config, sim::Axis::kX), 10.0);
}

TEST(Kinematics, SoftwareEndstopsClampOnlyWhenHomed) {
  const Config config;
  MotionState st;
  auto mv = resolve_move(config, st, cmd_of("G1 X-5"), true);
  EXPECT_FALSE(mv.clamped[0]);  // unhomed: firmware trusts the program
  st.homed = {true, true, true};
  mv = resolve_move(config, st, cmd_of("G1 X-5"), true);
  EXPECT_TRUE(mv.clamped[0]);
  EXPECT_EQ(mv.delta_steps[0], 0);  // clamped to 0
  mv = resolve_move(config, st, cmd_of("G1 X9999"), true);
  EXPECT_TRUE(mv.clamped[0]);
  EXPECT_DOUBLE_EQ(mv.target_mm[0], config.axis_length_mm[0]);
}

TEST(Kinematics, ColdExtrusionStripsEOnly) {
  const Config config;
  MotionState st;
  const auto mv = resolve_move(config, st, cmd_of("G1 X10 E2"), false);
  EXPECT_TRUE(mv.cold_extrusion_blocked);
  EXPECT_EQ(mv.delta_steps[0], 1000);  // XYZ survives
  EXPECT_EQ(mv.delta_steps[3], 0);     // E stripped
  EXPECT_DOUBLE_EQ(mv.e_advance_mm, 0.0);
}

TEST(Kinematics, FlowPercentScalesExtrusion) {
  const Config config;
  MotionState st;
  ASSERT_TRUE(apply_modal(st, cmd_of("M221 S50")));
  const auto mv = resolve_move(config, st, cmd_of("G1 X10 E2"), true);
  EXPECT_DOUBLE_EQ(mv.e_advance_mm, 1.0);
  EXPECT_EQ(mv.delta_steps[3], 280);  // 1 mm * 280 steps/mm
}

TEST(Kinematics, FeedratePercentScalesSpeed) {
  const Config config;
  MotionState st;
  ASSERT_TRUE(apply_modal(st, cmd_of("M220 S200")));
  const auto mv = resolve_move(config, st, cmd_of("G1 X10 F3000"), true);
  EXPECT_DOUBLE_EQ(mv.feed_mm_s, 100.0);
}

TEST(Kinematics, SetPositionShiftsOriginNotPosition) {
  const Config config;
  MotionState st;
  auto mv = resolve_move(config, st, cmd_of("G1 E5"), true);
  commit_move(config, st, cmd_of("G1 E5"), mv, true);
  const auto physical = st.position_steps[3];
  apply_set_position(config, st, cmd_of("G92 E0"));
  EXPECT_EQ(st.position_steps[3], physical);  // motor didn't move
  EXPECT_DOUBLE_EQ(st.logical_mm(config, sim::Axis::kE), 0.0);
  mv = resolve_move(config, st, cmd_of("G1 E1"), true);
  EXPECT_EQ(mv.delta_steps[3], 280);  // 1 mm from the new datum
}

TEST(Kinematics, QuantizationNeverDriftsAgainstDatum) {
  // Repeated tiny absolute moves must quantize against the origin, not
  // accumulate rounding error.
  const Config config;
  MotionState st;
  for (int i = 1; i <= 1000; ++i) {
    const auto line = "G1 X" + std::to_string(i * 0.0101);
    const auto cmd = gcode::parse_program(line)[0];
    const auto mv = resolve_move(config, st, cmd, true);
    commit_move(config, st, cmd, mv, true);
  }
  EXPECT_EQ(st.position_steps[0], std::llround(1000 * 0.0101 * 100.0));
}

TEST(Kinematics, ArcExpandsToChordsEndingOnTarget) {
  const Config config;
  MotionState st;
  // Full circle of radius 10 around (10, 0) starting at the origin.
  const auto arc =
      expand_arc(config, st, cmd_of("G2 X0 Y0 I10 J0 F1200"), true);
  ASSERT_FALSE(arc.degenerate);
  EXPECT_NEAR(arc.radius_mm, 10.0, 1e-12);
  EXPECT_NEAR(arc.arc_len_mm, 2.0 * 3.14159265358979 * 10.0, 1e-6);
  ASSERT_GE(arc.chords.size(), 60u);  // ~63 chords at 1 mm/segment
  // Execute every chord: the final position must be the arc's endpoint.
  MotionState run = st;
  for (const auto& chord : arc.chords) {
    const auto mv = resolve_move(config, run, chord, true);
    commit_move(config, run, chord, mv, true);
  }
  EXPECT_EQ(run.position_steps[0], 0);
  EXPECT_EQ(run.position_steps[1], 0);
}

TEST(Kinematics, DegenerateArcIsFlagged) {
  const Config config;
  MotionState st;
  EXPECT_TRUE(expand_arc(config, st, cmd_of("G2 X5 Y5"), true).degenerate);
  EXPECT_TRUE(
      expand_arc(config, st, cmd_of("G2 X5 Y5 I0 J0"), true).degenerate);
}

TEST(Kinematics, ApplyModalRejectsNonModal) {
  MotionState st;
  EXPECT_FALSE(apply_modal(st, cmd_of("G1 X5")));
  EXPECT_FALSE(apply_modal(st, cmd_of("M104 S210")));
  EXPECT_TRUE(apply_modal(st, cmd_of("M83")));
  EXPECT_FALSE(st.absolute_e);
}

}  // namespace
}  // namespace offramps::fw
