// Unit + property tests for the g-code serializer (round-trip with parser).
#include <gtest/gtest.h>

#include "gcode/parser.hpp"
#include "gcode/writer.hpp"
#include "host/slicer.hpp"

namespace offramps::gcode {
namespace {

TEST(Writer, FormatsNumbersLikeASlicer) {
  EXPECT_EQ(format_number(10.0), "10");
  EXPECT_EQ(format_number(10.5), "10.5");
  EXPECT_EQ(format_number(0.42), "0.42");
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(1.23456789), "1.23457");  // 5 decimals max
}

TEST(Writer, WritesCommandWithParams) {
  Command c;
  c.letter = 'G';
  c.code = 1;
  c.params = {{'X', 10.5}, {'E', 0.42}};
  EXPECT_EQ(write_line(c), "G1 X10.5 E0.42");
}

TEST(Writer, WritesFlagsWithoutValues) {
  Command c;
  c.letter = 'G';
  c.code = 28;
  c.params = {{'X', std::nullopt}, {'Y', std::nullopt}};
  EXPECT_EQ(write_line(c), "G28 X Y");
}

TEST(Writer, WritesComment) {
  Command c;
  c.letter = 'M';
  c.code = 104;
  c.params = {{'S', 210.0}};
  c.comment = "heat";
  EXPECT_EQ(write_line(c), "M104 S210 ; heat");
}

TEST(Writer, ProgramRoundTripsThroughParser) {
  Program original;
  {
    Command c;
    c.letter = 'G';
    c.code = 28;
    original.push_back(c);
  }
  {
    Command c;
    c.letter = 'G';
    c.code = 1;
    c.params = {{'X', 10.0}, {'Y', 20.25}, {'E', 1.5}, {'F', 1800.0}};
    original.push_back(c);
  }
  {
    Command c;
    c.letter = 'M';
    c.code = 106;
    c.params = {{'S', 178.5}};
    original.push_back(c);
  }
  const Program reparsed = parse_program(write_program(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].letter, original[i].letter);
    EXPECT_EQ(reparsed[i].code, original[i].code);
    EXPECT_EQ(reparsed[i].params, original[i].params);
  }
}

// Property: every program the slicer-lite emits survives a full
// write -> parse round trip with identical commands and parameters.
class SlicerRoundTrip
    : public ::testing::TestWithParam<double> {};  // param: cube size

TEST_P(SlicerRoundTrip, SlicedProgramsRoundTrip) {
  host::SliceProfile profile;
  host::CubeSpec cube;
  cube.size_x_mm = GetParam();
  cube.size_y_mm = GetParam();
  cube.height_mm = 2.0;
  const Program p = host::slice_cube(cube, profile);
  const Program q = parse_program(write_program(p));
  ASSERT_EQ(p.size(), q.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p[i].letter, q[i].letter) << "command " << i;
    EXPECT_EQ(p[i].code, q[i].code) << "command " << i;
    ASSERT_EQ(p[i].params.size(), q[i].params.size()) << "command " << i;
    for (std::size_t j = 0; j < p[i].params.size(); ++j) {
      EXPECT_EQ(p[i].params[j].letter, q[i].params[j].letter);
      if (p[i].params[j].value) {
        // Serialization rounds to 5 decimals.
        EXPECT_NEAR(*p[i].params[j].value, *q[i].params[j].value, 1e-5);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CubeSizes, SlicerRoundTrip,
                         ::testing::Values(6.0, 10.0, 15.0));

}  // namespace
}  // namespace offramps::gcode
