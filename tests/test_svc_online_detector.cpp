// svc::OnlineDetector edge cases: first-window alarm, the lossless
// backpressure stall under a stalled consumer, the stream-length overrun
// channel, the golden-free channel, and the post-print final-counts
// verdict.  These drive the detector directly (no rig) so every corner
// of the ring/stream contract is pinned down deterministically.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/capture.hpp"
#include "svc/online_detector.hpp"

namespace {

using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::svc::Channel;
using offramps::svc::OnlineDetector;
using offramps::svc::OnlineDetectorOptions;
using offramps::svc::OnlineReport;

// A golden capture whose per-index counts are unique and comfortably
// above the compare floor, so any lost, duplicated, or reordered window
// in the observed stream pairs against the wrong golden counts and shows
// up as a mismatch.
Capture make_golden(std::size_t n) {
  Capture cap;
  cap.label = "golden";
  cap.print_completed = true;
  for (std::size_t i = 0; i < n; ++i) {
    Transaction txn;
    txn.index = static_cast<std::uint32_t>(i);
    const auto base = static_cast<std::int32_t>(1000 + 100 * i);
    txn.counts = {base, base + 1, base + 2, base + 3};
    txn.time_ns = 100'000'000ull * (i + 1);
    cap.transactions.push_back(txn);
    cap.final_counts = {txn.counts[0], txn.counts[1], txn.counts[2],
                        txn.counts[3]};
  }
  return cap;
}

OnlineDetectorOptions quiet_options() {
  OnlineDetectorOptions options;
  // The synthetic streams here are not physical prints; keep the
  // golden-free channel out of the way unless a test arms it.
  options.golden_free = false;
  return options;
}

TEST(OnlineDetector, FirstWindowAlarm) {
  const Capture golden = make_golden(10);
  OnlineDetectorOptions options = quiet_options();
  options.consecutive_to_alarm = 1;  // no debounce: trust window 0
  OnlineDetector det(options);
  det.set_golden(&golden);

  std::size_t alarm_callbacks = 0;
  det.on_alarm([&](const OnlineReport&) { ++alarm_callbacks; });

  Transaction bad = golden.transactions[0];
  bad.counts[0] *= 2;  // 100% off on X in the very first window
  det.submit(bad);
  EXPECT_EQ(det.drain(), 1u);

  const OnlineReport report = det.report();
  EXPECT_TRUE(report.alarmed);
  EXPECT_TRUE(report.alarmed_mid_print);
  EXPECT_EQ(report.first_channel, Channel::kGoldenCompare);
  EXPECT_EQ(report.alarm_window, 0u);
  EXPECT_EQ(report.alarm_tick_ns, bad.time_ns);
  EXPECT_EQ(alarm_callbacks, 1u);
  EXPECT_GE(report.compare_mismatches, 1u);
}

TEST(OnlineDetector, DebounceHoldsOneOffSpike) {
  const Capture golden = make_golden(10);
  OnlineDetectorOptions options = quiet_options();
  options.consecutive_to_alarm = 2;
  OnlineDetector det(options);
  det.set_golden(&golden);

  // One bad window surrounded by clean ones never alarms at debounce 2.
  for (std::size_t i = 0; i < golden.transactions.size(); ++i) {
    Transaction txn = golden.transactions[i];
    if (i == 4) txn.counts[1] *= 3;
    det.submit(txn);
  }
  det.drain();
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.report().compare_mismatches, 1u);
}

TEST(OnlineDetector, BackpressureStallsLoseNothing) {
  constexpr std::size_t kStream = 100;
  const Capture golden = make_golden(kStream);
  OnlineDetectorOptions options = quiet_options();
  options.ring_capacity = 8;
  OnlineDetector det(options);
  det.set_golden(&golden);

  // Stalled consumer: submit the whole stream without a single poll.
  // The ring must saturate, the producer must stall-and-drain, and every
  // window must still be judged exactly once.
  for (const Transaction& txn : golden.transactions) det.submit(txn);
  EXPECT_LE(det.queued(), options.ring_capacity);
  det.drain();

  const OnlineReport report = det.report();
  // No loss and no duplication: 100 unique windows processed, zero
  // mismatches (a dropped/duplicated/reordered window would pair against
  // the wrong golden counts and mismatch).
  EXPECT_EQ(report.windows_processed, kStream);
  EXPECT_EQ(report.compare_mismatches, 0u);
  EXPECT_FALSE(report.alarmed);
  // Backpressure was actually exercised, and memory stayed bounded.
  EXPECT_GT(report.backpressure_stalls, 0u);
  EXPECT_EQ(report.ring_high_water, options.ring_capacity);
}

TEST(OnlineDetector, ProducerStallAtExactRingCapacityBoundary) {
  OnlineDetectorOptions options = quiet_options();
  options.ring_capacity = 8;

  // Stream length exactly == capacity: the ring fills to the brim but the
  // producer never has to stall.
  {
    const Capture golden = make_golden(options.ring_capacity);
    OnlineDetector det(options);
    det.set_golden(&golden);
    for (const Transaction& txn : golden.transactions) det.submit(txn);
    EXPECT_EQ(det.queued(), options.ring_capacity);
    EXPECT_EQ(det.report().backpressure_stalls, 0u);
    det.drain();
    const OnlineReport report = det.report();
    EXPECT_EQ(report.windows_processed, options.ring_capacity);
    EXPECT_EQ(report.ring_high_water, options.ring_capacity);
    EXPECT_EQ(report.compare_mismatches, 0u);
  }

  // One past capacity: the first submit that finds the ring full is the
  // first stall, and the overflow window is drained, not dropped.
  {
    const Capture golden = make_golden(options.ring_capacity + 1);
    OnlineDetector det(options);
    det.set_golden(&golden);
    for (const Transaction& txn : golden.transactions) det.submit(txn);
    det.drain();
    const OnlineReport report = det.report();
    EXPECT_EQ(report.backpressure_stalls, 1u);
    EXPECT_EQ(report.windows_processed, options.ring_capacity + 1);
    EXPECT_EQ(report.compare_mismatches, 0u);
    EXPECT_FALSE(report.alarmed);
  }
}

TEST(OnlineDetector, PollInBatchesMatchesDrain) {
  const Capture golden = make_golden(30);
  OnlineDetector det(quiet_options());
  det.set_golden(&golden);
  std::size_t polled = 0;
  for (std::size_t i = 0; i < golden.transactions.size(); ++i) {
    det.submit(golden.transactions[i]);
    if (i % 3 == 2) polled += det.poll(2);
  }
  polled += det.drain();
  EXPECT_EQ(polled, golden.transactions.size());
  EXPECT_EQ(det.windows_processed(), golden.transactions.size());
  EXPECT_FALSE(det.alarmed());
}

TEST(OnlineDetector, StreamLengthOverrunAlarms) {
  const Capture golden = make_golden(20);
  OnlineDetectorOptions options = quiet_options();
  OnlineDetector det(options);
  det.set_golden(&golden);

  // Replay the golden stream, then keep the stream alive well past the
  // compare length tolerance plus the slack window budget.
  for (const Transaction& txn : golden.transactions) det.submit(txn);
  Transaction extra = golden.transactions.back();
  for (std::uint32_t i = 0; i < 2 * options.length_slack_windows + 4; ++i) {
    extra.index += 1;
    extra.time_ns += 100'000'000ull;
    det.submit(extra);
    det.drain();
    if (det.alarmed()) break;
  }
  const OnlineReport report = det.report();
  EXPECT_TRUE(report.alarmed);
  EXPECT_TRUE(report.alarmed_mid_print);
  EXPECT_EQ(report.first_channel, Channel::kStreamLength);
}

TEST(OnlineDetector, GoldenFreeChannelNeedsNoReference) {
  OnlineDetectorOptions options;  // golden_free on by default
  options.golden_free_min_violations = 3;
  OnlineDetector det(options);  // note: no set_golden()

  // Impossible kinematics: ~10 m of X travel per 0.1 s window.
  Transaction txn;
  for (std::uint32_t i = 0; i < 8 && !det.alarmed(); ++i) {
    txn.index = i;
    txn.counts[0] += 1'000'000;
    txn.time_ns += 100'000'000ull;
    det.submit(txn);
    det.drain();
  }
  const OnlineReport report = det.report();
  EXPECT_TRUE(report.alarmed);
  EXPECT_TRUE(report.alarmed_mid_print);
  EXPECT_EQ(report.first_channel, Channel::kGoldenFree);
  EXPECT_GE(report.golden_free.violations.size(),
            options.golden_free_min_violations);
}

TEST(OnlineDetector, FinalCountsCheckIsPostPrint) {
  const Capture golden = make_golden(10);
  OnlineDetector det(quiet_options());
  det.set_golden(&golden);

  // The windowed stream is clean...
  for (const Transaction& txn : golden.transactions) det.submit(txn);

  // ...but the finals are off by one step: only the paper's 0%-margin
  // end-of-print check can see it.
  Capture observed = golden;
  observed.final_counts[3] += 1;
  det.finish(observed);

  const OnlineReport report = det.report();
  EXPECT_TRUE(report.stream_finished);
  EXPECT_TRUE(report.alarmed);
  EXPECT_FALSE(report.alarmed_mid_print);  // fired after the stream ended
  EXPECT_EQ(report.first_channel, Channel::kFinalCounts);
  EXPECT_FALSE(report.final_counts_match);
}

TEST(OnlineDetector, CleanStreamStaysClean) {
  const Capture golden = make_golden(25);
  OnlineDetector det(quiet_options());
  det.set_golden(&golden);
  for (const Transaction& txn : golden.transactions) {
    det.submit(txn);
    det.poll(1);
  }
  det.finish(golden);
  const OnlineReport report = det.report();
  EXPECT_FALSE(report.alarmed);
  EXPECT_TRUE(report.stream_finished);
  EXPECT_TRUE(report.final_counts_match);
  EXPECT_EQ(report.first_channel, Channel::kNone);
  EXPECT_EQ(report.windows_processed, golden.transactions.size());
}

}  // namespace
