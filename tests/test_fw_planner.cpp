// Unit + property tests for the motion planner.
#include <gtest/gtest.h>

#include <cmath>

#include "fw/planner.hpp"
#include "sim/error.hpp"

namespace offramps::fw {
namespace {

Config cfg() { return Config{}; }

TEST(Segment, DominantAxisIsLargestMagnitude) {
  Segment s;
  s.steps = {100, -300, 4, 0};
  EXPECT_EQ(s.dominant(), sim::Axis::kY);
  EXPECT_EQ(s.dominant_steps(), 300);
}

TEST(Segment, EmptyDetection) {
  Segment s;
  EXPECT_TRUE(s.empty());
  s.steps = {0, 0, 0, 1};
  EXPECT_FALSE(s.empty());
}

TEST(Planner, CruiseMatchesRequestedFeed) {
  const Config c = cfg();
  Planner p(c);
  // Pure X move: 10 mm at 50 mm/s -> 5000 steps/s at 100 steps/mm.
  const Segment s = p.plan({1000, 0, 0, 0}, 50.0);
  EXPECT_NEAR(s.cruise_sps, 5000.0, 1.0);
  EXPECT_EQ(s.dominant(), sim::Axis::kX);
}

TEST(Planner, DiagonalSplitsSpeedAcrossAxes) {
  const Config c = cfg();
  Planner p(c);
  // 45-degree XY move at 50 mm/s: each axis runs at 50/sqrt(2) mm/s.
  const Segment s = p.plan({1000, 1000, 0, 0}, 50.0);
  EXPECT_NEAR(s.cruise_sps, 50.0 / std::sqrt(2.0) * 100.0, 1.0);
}

TEST(Planner, PerAxisFeedrateCapScalesWholeMove) {
  const Config c = cfg();  // Z max 12 mm/s
  Planner p(c);
  // Z-only move requested at 50 mm/s must clamp to 12 mm/s -> 4800 sps.
  const Segment s = p.plan({0, 0, 4000, 0}, 50.0);
  EXPECT_NEAR(s.cruise_sps, 12.0 * 400.0, 1.0);
}

TEST(Planner, EOnlyMoveUsesEFeed) {
  const Config c = cfg();
  Planner p(c);
  // 2 mm retract at 35 mm/s -> 35 * 280 = 9800 sps.
  const Segment s = p.plan({0, 0, 0, -560}, 35.0);
  EXPECT_EQ(s.dominant(), sim::Axis::kE);
  EXPECT_NEAR(s.cruise_sps, 9800.0, 1.0);
}

TEST(Planner, JunctionSpeedCapsEntryAndExit) {
  const Config c = cfg();  // junction 8 mm/s
  Planner p(c);
  const Segment s = p.plan({2000, 0, 0, 0}, 100.0);
  EXPECT_NEAR(s.entry_sps, 8.0 * 100.0, 1.0);
  EXPECT_NEAR(s.exit_sps, s.entry_sps, 1e-9);
  EXPECT_LT(s.entry_sps, s.cruise_sps);
}

TEST(Planner, SlowMovesEnterAtCruise) {
  const Config c = cfg();
  Planner p(c);
  // 4 mm/s < 8 mm/s junction speed: no ramp needed.
  const Segment s = p.plan({1000, 0, 0, 0}, 4.0);
  EXPECT_NEAR(s.entry_sps, s.cruise_sps, 1e-9);
}

TEST(Planner, ExtruderFollowsAsBresenhamMinor) {
  const Config c = cfg();
  Planner p(c);
  const Segment s = p.plan({1000, 0, 0, 130}, 40.0);
  EXPECT_EQ(s.dominant(), sim::Axis::kX);
  EXPECT_EQ(s.steps[3], 130);
}

TEST(Planner, ZeroFeedThrows) {
  const Config c = cfg();
  Planner p(c);
  EXPECT_THROW((void)p.plan({100, 0, 0, 0}, 0.0), offramps::Error);
}

TEST(Planner, EmptyMoveYieldsEmptySegment) {
  const Config c = cfg();
  Planner p(c);
  const Segment s = p.plan({0, 0, 0, 0}, 40.0);
  EXPECT_TRUE(s.empty());
}

TEST(Planner, AccelerationScalesWithDominantShare) {
  const Config c = cfg();
  Planner p(c);
  const Segment pure_x = p.plan({1000, 0, 0, 0}, 40.0);
  EXPECT_NEAR(pure_x.accel_sps2, c.acceleration_mm_s2 * 100.0, 1.0);
  const Segment diag = p.plan({1000, 1000, 0, 0}, 40.0);
  EXPECT_LT(diag.accel_sps2, pure_x.accel_sps2);
}

// Property sweep: for any feed and distance, planned speeds never exceed
// per-axis limits and entry <= cruise.
class PlannerSweep
    : public ::testing::TestWithParam<std::tuple<double, std::int64_t>> {};

TEST_P(PlannerSweep, KinematicLimitsHold) {
  const auto [feed, steps] = GetParam();
  const Config c = cfg();
  Planner p(c);
  const Segment s = p.plan({steps, steps / 2, 0, steps / 8}, feed);
  EXPECT_LE(s.entry_sps, s.cruise_sps + 1e-9);
  EXPECT_LE(s.exit_sps, s.cruise_sps + 1e-9);
  // Dominant is X here; X speed cap is 200 mm/s = 20000 sps.
  EXPECT_LE(s.cruise_sps, 200.0 * 100.0 + 1e-9);
  EXPECT_GE(s.cruise_sps, c.min_step_rate_sps - 1e-9);
  EXPECT_GT(s.accel_sps2, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    FeedByDistance, PlannerSweep,
    ::testing::Combine(::testing::Values(1.0, 10.0, 40.0, 120.0, 500.0),
                       ::testing::Values<std::int64_t>(8, 160, 4000,
                                                       100000)));

}  // namespace
}  // namespace offramps::fw
