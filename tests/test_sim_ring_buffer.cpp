// sim::RingBuffer: the bounded SPSC queue under the fleet service's
// backpressure contract.  FIFO order, wraparound reuse of slots, and the
// occupancy accounting (high water, pushed/popped) the fleet report
// surfaces.
#include <gtest/gtest.h>

#include <string>

#include "sim/error.hpp"
#include "sim/ring_buffer.hpp"

namespace {

using offramps::sim::RingBuffer;

TEST(RingBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(RingBuffer<int>(0), offramps::Error);
}

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> ring(4);
  for (int v = 1; v <= 4; ++v) EXPECT_TRUE(ring.try_push(v));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.try_push(99));  // full: value rejected
  int out = 0;
  for (int v = 1; v <= 4; ++v) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WraparoundPreservesOrder) {
  RingBuffer<int> ring(3);
  int out = 0;
  // Keep the ring two-thirds full while head/tail lap the underlying
  // storage several times: push two ahead, then pop-one/push-one.
  ASSERT_TRUE(ring.try_push(0));
  ASSERT_TRUE(ring.try_push(1));
  for (int v = 2; v < 20; ++v) {
    ASSERT_TRUE(ring.try_push(v));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v - 2);
  }
  // The steady state drains in order.
  for (int v = 18; v < 20; ++v) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.popped(), 20u);
  EXPECT_EQ(ring.high_water(), 3u);
}

TEST(RingBuffer, OccupancyAccounting) {
  RingBuffer<std::string> ring(8);
  for (int v = 0; v < 5; ++v) ASSERT_TRUE(ring.try_push(std::to_string(v)));
  std::string out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_pop(out));
  for (int v = 5; v < 8; ++v) ASSERT_TRUE(ring.try_push(std::to_string(v)));
  // Peak occupancy was 6 (5 - 2 + 3), never the capacity.
  EXPECT_EQ(ring.high_water(), 6u);
  EXPECT_EQ(ring.pushed(), 8u);
  EXPECT_EQ(ring.popped(), 2u);
  EXPECT_EQ(ring.size(), ring.pushed() - ring.popped());
}

TEST(RingBuffer, CapacityOneDegenerateCase) {
  RingBuffer<int> ring(1);
  EXPECT_TRUE(ring.try_push(7));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.try_push(8));
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(ring.try_push(9));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 9);
  EXPECT_EQ(ring.high_water(), 1u);
}

}  // namespace
