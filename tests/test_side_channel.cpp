// Tests for the power side-channel probe and signature detection - the
// lossy baseline the paper's direct-signal approach is compared against.
#include <gtest/gtest.h>

#include <numeric>

#include "detect/side_channel.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::detect {
namespace {

gcode::Program object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2.5,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

host::RunResult probed_run(const gcode::Program& p, std::uint64_t seed,
                           core::TrojanSuiteConfig trojans = {}) {
  host::RigOptions options;
  options.firmware.jitter_seed = seed;
  options.power_probe = plant::PowerProbeOptions{};
  options.power_probe->noise_seed = seed ^ 0xFACE;
  options.trojans = std::move(trojans);
  host::Rig rig(options);
  return rig.run(p);
}

TEST(PowerProbe, TraceCoversTheWholeRun) {
  const host::RunResult r = probed_run(object(), 1);
  ASSERT_FALSE(r.power_trace.empty());
  EXPECT_NEAR(r.power_trace.back().t_s, r.sim_seconds, 0.5);
  // 50 ms cadence.
  const double dt = r.power_trace[1].t_s - r.power_trace[0].t_s;
  EXPECT_NEAR(dt, 0.05, 1e-6);
}

TEST(PowerProbe, HeatupDrawsFullHotendPower) {
  const host::RunResult r = probed_run(object(), 1);
  // Early in heat-up: base (5) + hotend near 100% (40) + no motors.
  double max_early = 0.0;
  for (const auto& s : r.power_trace) {
    if (s.t_s > 20.0) break;
    max_early = std::max(max_early, s.watts);
  }
  EXPECT_GT(max_early, 35.0);
  EXPECT_LT(max_early, 60.0);
}

TEST(PowerProbe, PrintingPhaseShowsMotorLoad) {
  const host::RunResult r = probed_run(object(), 1);
  // Mid-print: motors enabled (4 x ~4-8 W) + PID duty (~35% x 40 W).
  std::vector<double> mid;
  for (const auto& s : r.power_trace) {
    if (s.t_s > 80.0 && s.t_s < 100.0) mid.push_back(s.watts);
  }
  ASSERT_FALSE(mid.empty());
  const double mean =
      std::accumulate(mid.begin(), mid.end(), 0.0) /
      static_cast<double>(mid.size());
  EXPECT_GT(mean, 25.0);
  EXPECT_LT(mean, 60.0);
}

TEST(PowerSignature, CleanReprintPassesDespiteNoise) {
  const auto golden = probed_run(object(), 1).power_trace;
  const auto reprint = probed_run(object(), 31337).power_trace;
  const PowerReport rep = compare_power(golden, reprint);
  EXPECT_FALSE(rep.sabotage_likely) << rep.to_string();
}

TEST(PowerSignature, HeaterDosIsObvious) {
  // Cutting heater power removes ~15-40 W: gross enough for the side
  // channel.
  core::TrojanSuiteConfig cfg;
  cfg.t6 = core::T6Config{.hotend = true, .bed = false,
                          .delay_after_homing_s = 10.0};
  const auto golden = probed_run(object(), 1).power_trace;
  const auto attacked = probed_run(object(), 7, cfg).power_trace;
  const PowerReport rep = compare_power(golden, attacked);
  EXPECT_TRUE(rep.sabotage_likely) << rep.to_string();
  EXPECT_GT(rep.largest_delta_w, 8.0);
}

TEST(PowerSignature, SubtleReductionIsInvisible) {
  // A 2% extrusion reduction perturbs one motor's switching power by
  // milliwatts - far beneath clamp noise.  The paper's lossless
  // step-count channel catches this case (Table II #4); the lossy
  // side channel cannot.
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.98});
  const auto golden = probed_run(object(), 1).power_trace;
  const auto attacked = probed_run(mutated, 7).power_trace;
  const PowerReport rep = compare_power(golden, attacked);
  EXPECT_FALSE(rep.sabotage_likely) << rep.to_string();
}

TEST(WindowMeans, ReducesCorrectly) {
  plant::PowerTrace trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back({static_cast<double>(i) * 0.05,
                     i < 20 ? 10.0 : 30.0});
  }
  const auto means = window_means(trace, 1.0);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_NEAR(means[0], 10.0, 1e-9);
  EXPECT_NEAR(means[1], 30.0, 1e-9);
}

TEST(WindowMeans, EmptyTrace) {
  EXPECT_TRUE(window_means(plant::PowerTrace{}, 1.0).empty());
  EXPECT_TRUE(window_means(plant::SideTrace{}, 1.0).empty());
}

/// Attaches all three probes, noise seeds derived from the rig seed the
/// way svc::attach_probes does it.
host::RunResult multi_probed_run(const gcode::Program& p,
                                 std::uint64_t seed) {
  host::RigOptions options;
  options.firmware.jitter_seed = seed;
  plant::PowerProbeOptions po;
  po.noise_seed = plant::probe_noise_seed(seed, po.noise_seed);
  options.power_probe = po;
  plant::AcousticProbeOptions ao;
  ao.noise_seed = plant::probe_noise_seed(seed, ao.noise_seed);
  options.acoustic_probe = ao;
  plant::VibrationProbeOptions vo;
  vo.noise_seed = plant::probe_noise_seed(seed, vo.noise_seed);
  options.vibration_probe = vo;
  host::Rig rig(options);
  return rig.run(p);
}

double mean_between(const plant::SideTrace& trace, double t0, double t1) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : trace) {
    if (s.t_s >= t0 && s.t_s < t1) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

TEST(AcousticProbe, TraceCoversTheWholeRunAt50ms) {
  const host::RunResult r = multi_probed_run(object(), 1);
  ASSERT_FALSE(r.acoustic_trace.empty());
  EXPECT_NEAR(r.acoustic_trace.back().t_s, r.sim_seconds, 0.5);
  const double dt = r.acoustic_trace[1].t_s - r.acoustic_trace[0].t_s;
  EXPECT_NEAR(dt, 0.05, 1e-6);
}

TEST(AcousticProbe, PrintingIsLouderThanHeatup) {
  const host::RunResult r = multi_probed_run(object(), 1);
  // Heat-up: ambience only (motors disabled, fan off).
  const double idle = mean_between(r.acoustic_trace, 2.0, 15.0);
  EXPECT_NEAR(idle, 30.0, 2.0);
  // Mid-print: motor tones and the part fan ride on the ambience.
  const double printing = mean_between(r.acoustic_trace, 80.0, 100.0);
  EXPECT_GT(printing, idle + 1.0);
  EXPECT_LT(printing, 60.0);
}

TEST(VibrationProbe, OnlyMotionShakesTheFrame) {
  const host::RunResult r = multi_probed_run(object(), 1);
  ASSERT_FALSE(r.vibration_trace.empty());
  // Heat-up: nothing moves - sensor floor plus noise.
  const double idle = mean_between(r.vibration_trace, 2.0, 15.0);
  EXPECT_NEAR(idle, 2.0, 1.5);
  // Mid-print: the gantry swings real mass.
  const double printing = mean_between(r.vibration_trace, 80.0, 100.0);
  EXPECT_GT(printing, idle + 1.0);
}

// Regression pin: probe noise seeds must be derived per rig (and per
// channel), never shared.  The original wiring attached every probe
// with its option-struct default seed, so every rig in a fleet heard
// the same microphone noise.
TEST(ProbeNoiseSeed, DistinctPerRigAndPerChannel) {
  const plant::AcousticProbeOptions ao;
  const plant::VibrationProbeOptions vo;
  const plant::PowerProbeOptions po;
  // Adjacent rig seeds must still diverge (splitmix64 mixing).
  EXPECT_NE(plant::probe_noise_seed(1000, ao.noise_seed),
            plant::probe_noise_seed(1001, ao.noise_seed));
  // Two channels on one rig are two different sensors.
  EXPECT_NE(plant::probe_noise_seed(1000, ao.noise_seed),
            plant::probe_noise_seed(1000, vo.noise_seed));
  EXPECT_NE(plant::probe_noise_seed(1000, ao.noise_seed),
            plant::probe_noise_seed(1000, po.noise_seed));
  // Pure function: same rig, same channel, same seed.
  EXPECT_EQ(plant::probe_noise_seed(1000, ao.noise_seed),
            plant::probe_noise_seed(1000, ao.noise_seed));
}

TEST(ProbeNoiseSeed, TwoRigsRecordDifferentTraces) {
  const gcode::Program p = object();
  const host::RunResult a = multi_probed_run(p, 1000);
  const host::RunResult b = multi_probed_run(p, 1001);
  ASSERT_EQ(a.acoustic_trace.size(), b.acoustic_trace.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.acoustic_trace.size(); ++i) {
    differing += a.acoustic_trace[i].value != b.acoustic_trace[i].value ? 1 : 0;
  }
  EXPECT_GT(differing, a.acoustic_trace.size() / 2)
      << "two rigs' microphones must not share a noise sequence";
  std::size_t vib_differing = 0;
  for (std::size_t i = 0; i < a.vibration_trace.size(); ++i) {
    vib_differing +=
        a.vibration_trace[i].value != b.vibration_trace[i].value ? 1 : 0;
  }
  EXPECT_GT(vib_differing, a.vibration_trace.size() / 2);
}

TEST(SideSignature, CleanReprintPassesDespiteNoise) {
  const gcode::Program p = object();
  const auto golden = multi_probed_run(p, 1);
  const auto reprint = multi_probed_run(p, 31337);
  const SideSignatureOptions acoustic_opts{1.0, 5.0, 3, 2};
  EXPECT_FALSE(compare_side(golden.acoustic_trace, reprint.acoustic_trace,
                            acoustic_opts)
                   .sabotage_likely);
  const SideSignatureOptions vibration_opts{1.0, 8.0, 3, 2};
  EXPECT_FALSE(compare_side(golden.vibration_trace, reprint.vibration_trace,
                            vibration_opts)
                   .sabotage_likely);
}

TEST(MasterSignature, DistillsAndVerifiesTheGoldenRecording) {
  plant::SideTrace golden;
  for (int i = 0; i < 400; ++i) {
    golden.push_back({i * 0.05, 40.0});
  }
  const MasterSignature sig = make_master_signature(golden, 1.0);
  EXPECT_EQ(sig.levels.size(), window_means(golden, 1.0).size());
  EXPECT_EQ(sig.digest, signature_digest(sig.levels, sig.window_s));
  EXPECT_FALSE(sig.empty());

  // The recording itself verifies clean.
  EXPECT_FALSE(verify_signature(sig, golden).sabotage_likely);

  // A print that diverges mid-way from the signed recording is flagged.
  plant::SideTrace tampered = golden;
  for (auto& s : tampered) {
    if (s.t_s > 10.0) s.value = 25.0;
  }
  const SideReport rep = verify_signature(sig, tampered);
  EXPECT_TRUE(rep.sabotage_likely) << rep.to_string();
  EXPECT_GT(rep.largest_delta, 10.0);
}

TEST(MasterSignature, DigestBindsLevelsAndWindowSize) {
  plant::SideTrace golden;
  for (int i = 0; i < 200; ++i) {
    golden.push_back({i * 0.05, 40.0 + (i % 7)});
  }
  const MasterSignature one = make_master_signature(golden, 1.0);
  const MasterSignature half = make_master_signature(golden, 0.5);
  EXPECT_NE(one.digest, half.digest);
  plant::SideTrace louder = golden;
  louder[42].value += 1.0;
  EXPECT_NE(make_master_signature(louder, 1.0).digest, one.digest);
}

TEST(SideReport, Rendering) {
  plant::SideTrace g, o;
  for (int i = 0; i < 200; ++i) {
    g.push_back({i * 0.05, 40.0});
    o.push_back({i * 0.05, i > 100 ? 20.0 : 40.0});
  }
  const SideReport rep = compare_side(g, o);
  EXPECT_TRUE(rep.sabotage_likely);
  const std::string text = rep.to_string(2);
  EXPECT_NE(text.find("Sabotage likely (side channel)!"), std::string::npos);
  EXPECT_NE(text.find("Window"), std::string::npos);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"windows_compared\""), std::string::npos);
}

TEST(PowerReport, Rendering) {
  plant::PowerTrace g, o;
  for (int i = 0; i < 200; ++i) {
    g.push_back({i * 0.05, 20.0});
    o.push_back({i * 0.05, i > 100 ? 50.0 : 20.0});
  }
  const PowerReport rep = compare_power(g, o);
  EXPECT_TRUE(rep.sabotage_likely);
  const std::string text = rep.to_string(2);
  EXPECT_NE(text.find("Sabotage likely (power signature)!"),
            std::string::npos);
  EXPECT_NE(text.find("Window"), std::string::npos);
}

}  // namespace
}  // namespace offramps::detect
