// Tests for the power side-channel probe and signature detection - the
// lossy baseline the paper's direct-signal approach is compared against.
#include <gtest/gtest.h>

#include <numeric>

#include "detect/side_channel.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::detect {
namespace {

gcode::Program object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2.5,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

host::RunResult probed_run(const gcode::Program& p, std::uint64_t seed,
                           core::TrojanSuiteConfig trojans = {}) {
  host::RigOptions options;
  options.firmware.jitter_seed = seed;
  options.power_probe = plant::PowerProbeOptions{};
  options.power_probe->noise_seed = seed ^ 0xFACE;
  options.trojans = std::move(trojans);
  host::Rig rig(options);
  return rig.run(p);
}

TEST(PowerProbe, TraceCoversTheWholeRun) {
  const host::RunResult r = probed_run(object(), 1);
  ASSERT_FALSE(r.power_trace.empty());
  EXPECT_NEAR(r.power_trace.back().t_s, r.sim_seconds, 0.5);
  // 50 ms cadence.
  const double dt = r.power_trace[1].t_s - r.power_trace[0].t_s;
  EXPECT_NEAR(dt, 0.05, 1e-6);
}

TEST(PowerProbe, HeatupDrawsFullHotendPower) {
  const host::RunResult r = probed_run(object(), 1);
  // Early in heat-up: base (5) + hotend near 100% (40) + no motors.
  double max_early = 0.0;
  for (const auto& s : r.power_trace) {
    if (s.t_s > 20.0) break;
    max_early = std::max(max_early, s.watts);
  }
  EXPECT_GT(max_early, 35.0);
  EXPECT_LT(max_early, 60.0);
}

TEST(PowerProbe, PrintingPhaseShowsMotorLoad) {
  const host::RunResult r = probed_run(object(), 1);
  // Mid-print: motors enabled (4 x ~4-8 W) + PID duty (~35% x 40 W).
  std::vector<double> mid;
  for (const auto& s : r.power_trace) {
    if (s.t_s > 80.0 && s.t_s < 100.0) mid.push_back(s.watts);
  }
  ASSERT_FALSE(mid.empty());
  const double mean =
      std::accumulate(mid.begin(), mid.end(), 0.0) /
      static_cast<double>(mid.size());
  EXPECT_GT(mean, 25.0);
  EXPECT_LT(mean, 60.0);
}

TEST(PowerSignature, CleanReprintPassesDespiteNoise) {
  const auto golden = probed_run(object(), 1).power_trace;
  const auto reprint = probed_run(object(), 31337).power_trace;
  const PowerReport rep = compare_power(golden, reprint);
  EXPECT_FALSE(rep.sabotage_likely) << rep.to_string();
}

TEST(PowerSignature, HeaterDosIsObvious) {
  // Cutting heater power removes ~15-40 W: gross enough for the side
  // channel.
  core::TrojanSuiteConfig cfg;
  cfg.t6 = core::T6Config{.hotend = true, .bed = false,
                          .delay_after_homing_s = 10.0};
  const auto golden = probed_run(object(), 1).power_trace;
  const auto attacked = probed_run(object(), 7, cfg).power_trace;
  const PowerReport rep = compare_power(golden, attacked);
  EXPECT_TRUE(rep.sabotage_likely) << rep.to_string();
  EXPECT_GT(rep.largest_delta_w, 8.0);
}

TEST(PowerSignature, SubtleReductionIsInvisible) {
  // A 2% extrusion reduction perturbs one motor's switching power by
  // milliwatts - far beneath clamp noise.  The paper's lossless
  // step-count channel catches this case (Table II #4); the lossy
  // side channel cannot.
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.98});
  const auto golden = probed_run(object(), 1).power_trace;
  const auto attacked = probed_run(mutated, 7).power_trace;
  const PowerReport rep = compare_power(golden, attacked);
  EXPECT_FALSE(rep.sabotage_likely) << rep.to_string();
}

TEST(WindowMeans, ReducesCorrectly) {
  plant::PowerTrace trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back({static_cast<double>(i) * 0.05,
                     i < 20 ? 10.0 : 30.0});
  }
  const auto means = window_means(trace, 1.0);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_NEAR(means[0], 10.0, 1e-9);
  EXPECT_NEAR(means[1], 30.0, 1e-9);
}

TEST(WindowMeans, EmptyTrace) {
  EXPECT_TRUE(window_means({}, 1.0).empty());
}

TEST(PowerReport, Rendering) {
  plant::PowerTrace g, o;
  for (int i = 0; i < 200; ++i) {
    g.push_back({i * 0.05, 20.0});
    o.push_back({i * 0.05, i > 100 ? 50.0 : 20.0});
  }
  const PowerReport rep = compare_power(g, o);
  EXPECT_TRUE(rep.sabotage_likely);
  const std::string text = rep.to_string(2);
  EXPECT_NE(text.find("Sabotage likely (power signature)!"),
            std::string::npos);
  EXPECT_NE(text.find("Window"), std::string::npos);
}

}  // namespace
}  // namespace offramps::detect
