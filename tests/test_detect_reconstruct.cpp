// Tests for capture-based part reconstruction.
#include <gtest/gtest.h>

#include "detect/reconstruct.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::detect {
namespace {

host::RunResult print_cube(double size_mm, double height_mm) {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = size_mm, .size_y_mm = size_mm,
                      .height_mm = height_mm, .center_x_mm = 110,
                      .center_y_mm = 100};
  host::Rig rig;
  return rig.run(host::slice_cube(cube, profile));
}

TEST(Reconstruct, RecoversCubeGeometry) {
  const host::RunResult r = print_cube(10.0, 3.0);
  const ReconstructedPart part = reconstruct_part(r.capture);
  EXPECT_EQ(part.layers.size(), r.part.layer_count);
  EXPECT_NEAR(part.height_mm, 3.0, 0.15);
  EXPECT_NEAR(part.bbox_width_mm, 10.0, 0.6);
  EXPECT_NEAR(part.bbox_depth_mm, 10.0, 0.6);
  // Filament estimate within ~25% (unretracts absorbed into moving
  // windows inflate it slightly).
  EXPECT_NEAR(part.total_filament_mm, r.part.total_filament_mm,
              r.part.total_filament_mm * 0.25);
}

TEST(Reconstruct, LayerDetailsAreOrderedAndPlausible) {
  const host::RunResult r = print_cube(10.0, 2.0);
  const ReconstructedPart part = reconstruct_part(r.capture);
  ASSERT_GE(part.layers.size(), 2u);
  for (std::size_t i = 1; i < part.layers.size(); ++i) {
    EXPECT_GT(part.layers[i].z_mm, part.layers[i - 1].z_mm);
  }
  for (const auto& L : part.layers) {
    EXPECT_GT(L.path_mm, 10.0);     // a real layer has real travel
    EXPECT_GT(L.filament_mm, 0.3);  // and real material
    EXPECT_NEAR(L.width(), 10.0, 1.0);
    EXPECT_FALSE(L.segments.empty());
  }
}

TEST(Reconstruct, PrimeBlobExcluded) {
  // The reconstructed footprint must not stretch to the priming location
  // at the homing corner.
  const host::RunResult r = print_cube(8.0, 2.0);
  const ReconstructedPart part = reconstruct_part(r.capture);
  EXPECT_LT(part.bbox_width_mm, 12.0);
  for (const auto& L : part.layers) {
    EXPECT_GT(L.min_x, 50.0);  // nothing near the 0,0 prime site
  }
}

TEST(Reconstruct, EmptyCapture) {
  const ReconstructedPart part = reconstruct_part(core::Capture{});
  EXPECT_TRUE(part.layers.empty());
  EXPECT_DOUBLE_EQ(part.height_mm, 0.0);
  EXPECT_TRUE(part.ascii_layer(0).empty());
}

TEST(Reconstruct, AsciiArtRendersMaterial) {
  const host::RunResult r = print_cube(10.0, 2.0);
  const ReconstructedPart part = reconstruct_part(r.capture);
  const std::string art = part.ascii_layer(1, 32);
  ASSERT_FALSE(art.empty());
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
  // Each row is `cols` wide.
  EXPECT_EQ(art.find('\n'), 32u);
}

TEST(Reconstruct, AsciiArtOutOfRangeIsEmpty) {
  const host::RunResult r = print_cube(8.0, 2.0);
  const ReconstructedPart part = reconstruct_part(r.capture);
  EXPECT_TRUE(part.ascii_layer(999).empty());
}

TEST(Reconstruct, HollowVsSolidTelluride) {
  // A single-wall square and a solid cube of the same footprint differ
  // hugely in per-layer path: reconstruction preserves that distinction
  // (infill density is recoverable, not just outline).
  host::SliceProfile profile;
  host::SquareSpec hollow{.size_mm = 10, .height_mm = 2, .center_x_mm = 110,
                          .center_y_mm = 100};
  host::Rig rig_hollow;
  const auto hollow_part = reconstruct_part(
      rig_hollow.run(host::slice_square(hollow, profile)).capture);
  const auto solid_part = reconstruct_part(print_cube(10.0, 2.0).capture);
  ASSERT_FALSE(hollow_part.layers.empty());
  ASSERT_FALSE(solid_part.layers.empty());
  EXPECT_GT(solid_part.layers[1].path_mm,
            2.0 * hollow_part.layers[1].path_mm);
}

}  // namespace
}  // namespace offramps::detect
