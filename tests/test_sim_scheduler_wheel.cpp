// Ordering-invariant property tests for the timer-wheel scheduler.
//
// The wheel replaced the binary heap (PR 7) under a hard contract: events
// drain in exactly (time, seq) order, FIFO among same-tick events, no
// matter how insertions interleave with drains or how far times spread
// across wheel levels and the overflow spill heap.  Every fleet/campaign/
// checkpoint digest depends on this, so the tests here compare the real
// `sim::Scheduler` against a reference binary-heap scheduler (a faithful
// copy of the pre-wheel implementation) running the same schedule script.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

namespace {

using offramps::sim::Scheduler;
using offramps::sim::Tick;
using offramps::sim::TimerWheel;

/// The pre-wheel scheduler, verbatim in ordering behavior: a plain
/// binary heap popped in (time, seq) order.  Kept here as the oracle.
class RefHeapScheduler {
 public:
  using Callback = std::function<void()>;

  void schedule_at(Tick t, Callback cb) {
    heap_.push_back(Event{t, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  void schedule_in(Tick dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }
  [[nodiscard]] Tick now() const { return now_; }
  [[nodiscard]] bool idle() const { return heap_.empty(); }

  bool step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.time;
    ev.cb();
    return true;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Execution log entry: which event ran, at what simulated time.
struct LogEntry {
  std::uint64_t id;
  Tick time;
  bool operator==(const LogEntry&) const = default;
};

/// Time distributions matching the workloads bench_sched measures.
Tick draw_time(std::mt19937_64& rng, int dist) {
  switch (dist) {
    case 0:  // dense: stepper-burst spacing, heavy same-tick collisions
      return rng() % 64;
    case 1:  // sparse: thermal-tick spacing, exercises levels 1-2
      return rng() % 10'000'000;
    case 2:  // clustered: few distinct ticks, long FIFO runs
      return (rng() % 8) * 1000;
    default:  // far future: beyond the wheel horizon, spill-heap path
      return TimerWheel::kHorizon + rng() % 1'000'000;
  }
}

/// Runs the same generative schedule script on both schedulers and
/// returns (wheel log, reference log).  Initial events may spawn
/// children by a deterministic rule keyed on the event id, so insertion
/// interleaves with draining on both sides identically as long as the
/// drain order matches - any divergence shows up in the logs.
std::pair<std::vector<LogEntry>, std::vector<LogEntry>> run_script(
    std::uint64_t seed, std::size_t n_initial, bool spawn_children) {
  std::vector<LogEntry> wheel_log;
  std::vector<LogEntry> ref_log;

  const auto drive = [&](auto& sched, std::vector<LogEntry>& log) {
    std::mt19937_64 rng(seed);
    std::uint64_t next_id = 0;
    // Children reuse the parent's rng stream deterministically: a fresh
    // engine seeded from the child id.
    std::function<void(std::uint64_t, int)> schedule_event =
        [&](std::uint64_t id, int depth) {
          std::mt19937_64 crng(seed ^ (id * 0x9e3779b97f4a7c15ULL));
          const Tick delta = draw_time(crng, static_cast<int>(id % 4));
          sched.schedule_in(delta, [&, id, depth]() {
            log.push_back(LogEntry{id, sched.now()});
            if (spawn_children && depth < 3 && id % 3 == 0) {
              for (int c = 0; c < 2; ++c) {
                schedule_event(next_id++, depth + 1);
              }
            }
          });
        };
    for (std::size_t i = 0; i < n_initial; ++i) {
      schedule_event(next_id++, 0);
    }
    (void)rng;
    sched.run_all();
  };

  Scheduler wheel;
  drive(wheel, wheel_log);
  RefHeapScheduler ref;
  drive(ref, ref_log);
  return {wheel_log, ref_log};
}

TEST(SchedulerWheelProperty, RandomizedInsertionsDrainLikeReferenceHeap) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL, 0xdeadbeefULL}) {
    auto [wheel_log, ref_log] = run_script(seed, 500, /*spawn_children=*/false);
    ASSERT_EQ(wheel_log.size(), 500u) << "seed " << seed;
    EXPECT_EQ(wheel_log, ref_log) << "seed " << seed;
  }
}

TEST(SchedulerWheelProperty, InterleavedSpawningDrainsLikeReferenceHeap) {
  for (std::uint64_t seed : {3ULL, 99ULL, 0xabcdefULL}) {
    auto [wheel_log, ref_log] = run_script(seed, 200, /*spawn_children=*/true);
    ASSERT_GT(wheel_log.size(), 200u) << "seed " << seed;
    EXPECT_EQ(wheel_log, ref_log) << "seed " << seed;
  }
}

TEST(SchedulerWheelProperty, SameTickEventsRunInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(5000, [&order, i]() { order.push_back(i); });
  }
  s.run_all();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerWheelProperty, SameTickScheduledDuringDrainRunsThisTick) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(10, [&]() {
    order.push_back(0);
    // Scheduled while tick 10 is mid-drain: must still run at tick 10,
    // after every event inserted before it.
    s.schedule_at(10, [&]() { order.push_back(2); });
  });
  s.schedule_at(10, [&]() { order.push_back(1); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(s.now(), 10u);
}

TEST(SchedulerWheelProperty, StepIfBeforeBoundaryIsInclusive) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(100, [&]() { ran = true; });
  EXPECT_FALSE(s.step_if_before(99));
  EXPECT_EQ(s.now(), 0u);         // refusal leaves time untouched
  EXPECT_EQ(s.pending(), 1u);     // and the event pending
  EXPECT_TRUE(s.step_if_before(100));  // boundary is inclusive
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 100u);
}

TEST(SchedulerWheelProperty, ScheduleEarlierAfterRefusedStepStillOrdersFirst) {
  // step_if_before()'s internal peek pulls the earliest event into the
  // wheel's ready batch; scheduling an even earlier event afterwards
  // must spill that batch back and drain in (time, seq) order anyway.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1000, [&]() { order.push_back(1); });
  EXPECT_FALSE(s.step_if_before(500));
  s.schedule_at(600, [&]() { order.push_back(0); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SchedulerWheelProperty, StopRequestedMidDrainPreservesRemainder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(static_cast<Tick>(i) * 10, [&, i]() {
      order.push_back(i);
      if (i == 4) s.request_stop();
    });
  }
  s.run_all();
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(s.pending(), 5u);
  s.clear_stop();
  s.run_all();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerWheelProperty, FarFutureEventsSpillToOverflowAndStillOrder) {
  Scheduler s;
  std::vector<int> order;
  // A near event first (a lone first event is served from the ready run
  // regardless of its time), then beyond-horizon ones (delta >= 2^32):
  // those land in the spill heap.
  s.schedule_at(50, [&]() { order.push_back(0); });
  s.schedule_at(TimerWheel::kHorizon + 500, [&]() { order.push_back(2); });
  s.schedule_at(2 * TimerWheel::kHorizon + 7, [&]() { order.push_back(3); });
  s.schedule_at(TimerWheel::kHorizon - 1, [&]() { order.push_back(1); });
  EXPECT_GE(s.overflowed(), 2u);
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.now(), 2 * TimerWheel::kHorizon + 7);
  EXPECT_EQ(s.overflowed(), 0u);
}

TEST(SchedulerWheelProperty, SlotResidueCollisionsDrainInTimeOrder) {
  // Times congruent mod 256 share a level-0 slot; times congruent mod
  // 65536 share a level-1 slot.  Neither may leak a later lap early.
  Scheduler s;
  std::vector<Tick> times;
  for (Tick base : {Tick{5}, Tick{5 + 256}, Tick{5 + 512},
                    Tick{5 + 65536}, Tick{5 + 131072}}) {
    s.schedule_at(base, [&times, &s]() { times.push_back(s.now()); });
  }
  s.run_all();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.front(), 5u);
  EXPECT_EQ(times.back(), 5u + 131072u);
}

TEST(SchedulerWheelProperty, LongRunningChainsCrossLevelBoundaries) {
  // A self-rescheduling chain whose period sweeps across level widths
  // forces cascades at every level boundary.
  Scheduler s;
  std::uint64_t hops = 0;
  Tick last = 0;
  std::function<void(Tick)> hop = [&](Tick period) {
    EXPECT_GE(s.now(), last);
    last = s.now();
    ++hops;
    if (hops < 200) {
      const Tick next_period = (period * 3) % 2'000'000 + 1;
      s.schedule_in(next_period, [&hop, next_period]() { hop(next_period); });
    }
  };
  s.schedule_in(1, [&hop]() { hop(1); });
  s.run_all();
  EXPECT_EQ(hops, 200u);
}

TEST(TimerWheelUnit, PeekIsIdempotentAndPopConsumes) {
  TimerWheel w;
  w.insert(30, 0, []() {});
  w.insert(10, 1, []() {});
  w.insert(10, 2, []() {});
  EXPECT_EQ(w.size(), 3u);
  Tick t = 0;
  ASSERT_TRUE(w.peek(&t));
  EXPECT_EQ(t, 10u);
  ASSERT_TRUE(w.peek(&t));  // idempotent
  EXPECT_EQ(t, 10u);
  EXPECT_EQ(w.pop().seq, 1u);
  EXPECT_EQ(w.pop().seq, 2u);
  ASSERT_TRUE(w.peek(&t));
  EXPECT_EQ(t, 30u);
  EXPECT_EQ(w.pop().seq, 0u);
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.peek(&t));
}

TEST(TimerWheelUnit, OverflowMigratesAsCursorAdvances) {
  TimerWheel w;
  int dummy = 0;
  w.insert(1, 0, [&dummy]() { ++dummy; });
  w.insert(TimerWheel::kHorizon + 100, 1, [&dummy]() { ++dummy; });
  EXPECT_EQ(w.overflow_size(), 1u);
  Tick t = 0;
  ASSERT_TRUE(w.peek(&t));
  EXPECT_EQ(t, 1u);
  (void)w.pop();
  ASSERT_TRUE(w.peek(&t));
  EXPECT_EQ(t, TimerWheel::kHorizon + 100);
  EXPECT_EQ(w.overflow_size(), 0u);  // migrated into the wheel
  (void)w.pop();
  EXPECT_TRUE(w.empty());
}

}  // namespace
