// Tests for the golden-free plausibility detector (the paper's proposed
// future-work direction, implemented as an extension).
#include <gtest/gtest.h>

#include "detect/golden_free.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::detect {
namespace {

gcode::Program object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 3,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

core::Capture capture_of(const gcode::Program& p, std::uint64_t seed) {
  host::RigOptions options;
  options.firmware.jitter_seed = seed;
  host::Rig rig(options);
  auto r = rig.run(p);
  EXPECT_TRUE(r.finished);
  return std::move(r.capture);
}

TEST(GoldenFree, CleanPrintsPassAllRules) {
  for (const std::uint64_t seed : {5u, 55u, 555u}) {
    const GoldenFreeReport rep =
        analyze_golden_free(capture_of(object(), seed));
    EXPECT_FALSE(rep.trojan_likely) << "seed " << seed << "\n"
                                    << rep.to_string();
    EXPECT_TRUE(rep.violations.empty()) << rep.to_string();
    EXPECT_GT(rep.printing_windows, 100u);
  }
}

TEST(GoldenFree, HeavyReductionFlagsDensity) {
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.5});
  const GoldenFreeReport rep =
      analyze_golden_free(capture_of(mutated, 6));
  EXPECT_TRUE(rep.trojan_likely);
  EXPECT_GT(rep.count(Rule::kDensityLow), 10u);
}

TEST(GoldenFree, CoarseRelocationFlagsBlobs) {
  const auto mutated = gcode::flaw3d::apply_relocation(
      object(), {.every_n_moves = 100, .take_fraction = 0.15});
  const GoldenFreeReport rep =
      analyze_golden_free(capture_of(mutated, 6));
  EXPECT_TRUE(rep.trojan_likely);
  EXPECT_GE(rep.count(Rule::kBlobDump), 2u);
}

TEST(GoldenFree, SubtleTrojansEscape) {
  // The honest limitation golden-free analysis carries: a 2% reduction
  // and fine-grained relocation stay within physical plausibility.  This
  // is exactly why the paper's golden-model comparison exists.
  const auto subtle_reduction =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.98});
  EXPECT_FALSE(
      analyze_golden_free(capture_of(subtle_reduction, 6)).trojan_likely);
  const auto fine_relocation = gcode::flaw3d::apply_relocation(
      object(), {.every_n_moves = 5, .take_fraction = 0.15});
  EXPECT_FALSE(
      analyze_golden_free(capture_of(fine_relocation, 6)).trojan_likely);
}

TEST(GoldenFree, SyntheticKinematicViolation) {
  // Hand-build a capture where X teleports 40 mm in one 0.1 s window
  // (400 mm/s against a 200 mm/s machine).
  core::Capture cap;
  for (std::uint32_t i = 0; i < 12; ++i) {
    core::Transaction t;
    t.index = i;
    t.time_ns = static_cast<std::uint64_t>(i) * 100'000'000ull;
    t.counts[0] = static_cast<std::int32_t>(i < 6 ? i * 500 : i * 500 + 4000);
    t.counts[3] = static_cast<std::int32_t>(i * 100);
    cap.transactions.push_back(t);
  }
  const GoldenFreeReport rep = analyze_golden_free(cap, {}, 1);
  EXPECT_TRUE(rep.trojan_likely);
  EXPECT_GE(rep.count(Rule::kKinematics), 1u);
}

TEST(GoldenFree, SyntheticBuildVolumeViolation) {
  core::Capture cap;
  for (std::uint32_t i = 0; i < 4; ++i) {
    core::Transaction t;
    t.index = i;
    t.time_ns = static_cast<std::uint64_t>(i) * 100'000'000ull;
    t.counts[1] = -1000;  // Y at -10 mm: outside the frame
    cap.transactions.push_back(t);
  }
  const GoldenFreeReport rep = analyze_golden_free(cap, {}, 1);
  EXPECT_TRUE(rep.trojan_likely);
  EXPECT_GE(rep.count(Rule::kBuildVolume), 1u);
}

TEST(GoldenFree, SyntheticNegativeExtrusion) {
  core::Capture cap;
  for (std::uint32_t i = 0; i < 4; ++i) {
    core::Transaction t;
    t.index = i;
    t.time_ns = static_cast<std::uint64_t>(i) * 100'000'000ull;
    t.counts[3] = -1000;  // 3.6 mm net retraction
    cap.transactions.push_back(t);
  }
  const GoldenFreeReport rep = analyze_golden_free(cap, {}, 1);
  EXPECT_TRUE(rep.trojan_likely);
  EXPECT_GE(rep.count(Rule::kNegativeExtrusion), 1u);
}

TEST(GoldenFree, EmptyAndTinyCapturesAreSafe) {
  EXPECT_FALSE(analyze_golden_free(core::Capture{}).trojan_likely);
  core::Capture one;
  one.transactions.push_back({});
  EXPECT_FALSE(analyze_golden_free(one).trojan_likely);
}

TEST(GoldenFree, ReportRendering) {
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.5});
  const GoldenFreeReport rep =
      analyze_golden_free(capture_of(mutated, 6));
  const std::string text = rep.to_string(3);
  EXPECT_NE(text.find("extrusion density implausibly low"),
            std::string::npos);
  EXPECT_NE(text.find("Trojan likely (golden-free)!"), std::string::npos);
}

TEST(GoldenFree, RuleNamesAreDistinct) {
  EXPECT_STRNE(rule_name(Rule::kDensityLow), rule_name(Rule::kDensityHigh));
  EXPECT_STRNE(rule_name(Rule::kKinematics), rule_name(Rule::kBlobDump));
}

}  // namespace
}  // namespace offramps::detect
