// Unit tests for the real-time detection monitor.
#include <gtest/gtest.h>

#include "core/uart.hpp"
#include "detect/monitor.hpp"
#include "sim/scheduler.hpp"

namespace offramps::detect {
namespace {

/// UART reporter fed by hand-driven tracker wires.
struct MonitorFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire xs{sched, "XS"}, xd{sched, "XD"};
  sim::Wire ys{sched, "YS"}, yd{sched, "YD"};
  sim::Wire zs{sched, "ZS"}, zd{sched, "ZD"};
  sim::Wire es{sched, "ES"}, ed{sched, "ED"};
  sim::Wire xm{sched, "XM"}, ym{sched, "YM"}, zm{sched, "ZM"};
  core::AxisTracker tx{sched, xs, xd}, ty{sched, ys, yd},
      tz{sched, zs, zd}, te{sched, es, ed};
  core::HomingDetector homing{sched, xm, ym, zm};
  core::UartReporter uart{sched, {&tx, &ty, &tz, &te}, homing};

  void home() {
    for (sim::Wire* w : {&xm, &ym, &zm}) {
      for (int hit = 0; hit < 2; ++hit) {
        w->set(true);
        sched.run_until(sched.now() + sim::ms(1));
        w->set(false);
        sched.run_until(sched.now() + sim::ms(1));
      }
    }
  }

  /// Steps X at `sps` steps/s for `seconds` of simulated time.
  void run_x(double sps, double seconds) {
    xd.set(true);
    const auto interval = static_cast<sim::Tick>(1e9 / sps);
    const sim::Tick end = sched.now() + sim::from_seconds(seconds);
    while (sched.now() < end) {
      xs.set(true);
      xs.set(false);
      sched.run_until(sched.now() + interval);
    }
  }

  /// A golden capture with X advancing at `sps` for `seconds`.
  core::Capture golden_for(double sps, double seconds) {
    core::Capture cap;
    const int n = static_cast<int>(seconds * 10.0);
    for (int i = 1; i <= n; ++i) {
      core::Transaction t;
      t.index = static_cast<std::uint32_t>(i - 1);
      t.counts[0] = static_cast<std::int32_t>(sps * 0.1 * i);
      cap.transactions.push_back(t);
    }
    return cap;
  }
};

TEST_F(MonitorFixture, CleanPrintRaisesNoAlarm) {
  RealtimeMonitor monitor(uart, golden_for(1000.0, 10.0));
  bool alarmed = false;
  monitor.on_alarm([&](const auto&) { alarmed = true; });
  home();
  run_x(1000.0, 5.0);
  EXPECT_FALSE(alarmed);
  EXPECT_GT(monitor.transactions_seen(), 40u);
}

TEST_F(MonitorFixture, DivergentPrintAlarms) {
  RealtimeMonitor monitor(uart, golden_for(1000.0, 10.0));
  std::vector<Mismatch> alarm_mismatches;
  monitor.on_alarm([&](const std::vector<Mismatch>& m) {
    alarm_mismatches = m;
  });
  home();
  run_x(1000.0, 2.0);  // on profile
  run_x(2000.0, 2.0);  // Trojan doubles the step rate
  EXPECT_TRUE(monitor.alarmed());
  EXPECT_FALSE(alarm_mismatches.empty());
  EXPECT_EQ(alarm_mismatches.front().column, 0u);
}

TEST_F(MonitorFixture, AlarmFiresOnlyOnce) {
  RealtimeMonitor monitor(uart, golden_for(1000.0, 10.0));
  int alarms = 0;
  monitor.on_alarm([&](const auto&) { ++alarms; });
  home();
  run_x(3000.0, 4.0);  // way off profile the whole time
  EXPECT_EQ(alarms, 1);
}

TEST_F(MonitorFixture, DebounceRequiresConsecutiveMismatches) {
  // Threshold of 50 consecutive bad transactions never satisfied by a
  // 2-transaction glitch.
  RealtimeMonitor monitor(uart, golden_for(1000.0, 60.0), {}, 50);
  home();
  run_x(1000.0, 2.0);
  run_x(4000.0, 0.15);  // brief glitch (~2 transactions)
  run_x(1000.0, 2.0);
  EXPECT_FALSE(monitor.alarmed());
  EXPECT_FALSE(monitor.mismatches().empty());  // observed but debounced
}

TEST_F(MonitorFixture, OverrunningGoldenEventuallyAlarms) {
  // Golden print was only 1 s long; the observed print keeps going.
  RealtimeMonitor monitor(uart, golden_for(1000.0, 1.0), {}, 3);
  home();
  run_x(1000.0, 3.0);
  EXPECT_TRUE(monitor.alarmed());
}

}  // namespace
}  // namespace offramps::detect
