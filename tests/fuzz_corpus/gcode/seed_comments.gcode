; full line comment
G1 X1 (inline comment) Y2 ; trailing
(leading) G92 E0
M221 S95
M220 S150
