G1 Einf
G1 Xnan
G1 E1e300
