// Tests for capture alignment and aligned comparison.
#include <gtest/gtest.h>

#include "detect/align.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::detect {
namespace {

core::Capture synthetic_ramp(std::uint32_t n, std::int32_t rate,
                             std::uint32_t start_offset = 0) {
  core::Capture cap;
  for (std::uint32_t i = 0; i < n; ++i) {
    core::Transaction t;
    t.index = i;
    t.time_ns = static_cast<std::uint64_t>(i) * 100'000'000ull;
    t.counts[0] = static_cast<std::int32_t>((i + start_offset)) * rate;
    cap.transactions.push_back(t);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    cap.final_counts[c] = cap.transactions.back().counts[c];
  }
  cap.print_completed = true;
  return cap;
}

TEST(Alignment, IdenticalSeriesAlignAtZero) {
  const auto cap = synthetic_ramp(100, 100);
  const AlignmentResult a = best_alignment(cap, cap);
  EXPECT_EQ(a.shift, 0);
  EXPECT_DOUBLE_EQ(a.cost, 0.0);
}

TEST(Alignment, RecoversKnownShift) {
  // Observed lags by 3 windows: observed[i] == golden[i + 3].
  const auto golden = synthetic_ramp(100, 100);
  const auto observed = synthetic_ramp(100, 100, 3);
  const AlignmentResult a = best_alignment(golden, observed);
  EXPECT_EQ(a.shift, 3);
  EXPECT_DOUBLE_EQ(a.cost, 0.0);
  EXPECT_GT(a.unshifted_cost, 50.0);
}

TEST(Alignment, RecoversNegativeShift) {
  const auto golden = synthetic_ramp(100, 100, 5);
  const auto observed = synthetic_ramp(100, 100);
  const AlignmentResult a = best_alignment(golden, observed);
  EXPECT_EQ(a.shift, -5);
}

TEST(Alignment, ShiftBeyondSearchWindowStaysUnaligned) {
  const auto golden = synthetic_ramp(100, 100);
  const auto observed = synthetic_ramp(100, 100, 30);
  const AlignmentResult a = best_alignment(golden, observed, /*max=*/10);
  // The best in-window shift (10) is found, but cannot zero the cost.
  EXPECT_GT(a.cost, 0.0);
}

TEST(Alignment, EmptyCapturesAreSafe) {
  const core::Capture empty;
  const AlignmentResult a = best_alignment(empty, empty);
  EXPECT_EQ(a.shift, 0);
  EXPECT_EQ(a.overlap, 0u);
}

TEST(CompareAligned, ShiftedCleanSeriesPassesTightMargin) {
  // A pure 2-window lag would trip a 1% margin positionally; aligned
  // comparison absorbs it completely.
  const auto golden = synthetic_ramp(200, 100);
  auto observed = synthetic_ramp(200, 100, 2);
  observed.final_counts = golden.final_counts;
  CompareOptions tight;
  tight.margin_pct = 1.0;
  tight.length_tolerance = 1.0;  // length identical anyway
  EXPECT_TRUE(compare(golden, observed, tight).trojan_likely);
  AlignmentResult a;
  const Report rep = compare_aligned(golden, observed, tight, 10, &a);
  EXPECT_EQ(a.shift, 2);
  EXPECT_FALSE(rep.trojan_likely) << rep.to_string();
}

TEST(CompareAligned, RealTrojanStillDetectedAfterAlignment) {
  // Alignment must absorb timing, never sabotage: a reduction Trojan
  // stays detected because no shift explains a different E slope.
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  const auto program = host::slice_cube(cube, profile);
  host::RigOptions gopt;
  gopt.firmware.jitter_seed = 1;
  host::Rig grig(gopt);
  const auto golden = grig.run(program).capture;

  const auto mutated =
      gcode::flaw3d::apply_reduction(program, {.factor = 0.85});
  host::RigOptions topt;
  topt.firmware.jitter_seed = 7;
  host::Rig trig(topt);
  const auto trojaned = trig.run(mutated).capture;

  EXPECT_TRUE(compare_aligned(golden, trojaned).trojan_likely);
}

TEST(CompareAligned, TightensTheUsableMargin) {
  // On real reprints, alignment reduces worst-case apparent drift, so a
  // tighter margin becomes usable (the paper's "faster protocol" goal
  // achieved in software instead).
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  const auto program = host::slice_cube(cube, profile);
  host::RigOptions a_opt, b_opt;
  a_opt.firmware.jitter_seed = 1;
  b_opt.firmware.jitter_seed = 31337;
  host::Rig a(a_opt), b(b_opt);
  const auto golden = a.run(program).capture;
  const auto reprint = b.run(program).capture;

  CompareOptions tight;
  tight.margin_pct = 1.5;
  const Report positional = compare(golden, reprint, tight);
  const Report aligned = compare_aligned(golden, reprint, tight);
  // Aligned comparison never does worse, and remains clean overall.
  EXPECT_LE(aligned.mismatch_count(), positional.mismatch_count());
  EXPECT_FALSE(aligned.trojan_likely) << aligned.to_string();
}

}  // namespace
}  // namespace offramps::detect
