// Unit tests for the UART reporter and the capture data model (byte
// serialization, CSV round trip).
#include <gtest/gtest.h>

#include "core/uart.hpp"
#include "sim/error.hpp"
#include "sim/scheduler.hpp"

namespace offramps::core {
namespace {

TEST(Transaction, ByteRoundTrip) {
  Transaction t;
  t.index = 42;
  t.counts = {6060, -8266, 0, 52843};
  t.time_ns = 123456;
  const auto bytes = t.to_bytes();
  const Transaction u = Transaction::from_bytes(bytes, t.index, t.time_ns);
  EXPECT_EQ(u.counts, t.counts);
  EXPECT_EQ(u.index, 42u);
}

TEST(Transaction, PayloadIsSixteenBytesLittleEndian) {
  Transaction t;
  t.counts = {1, 256, -1, 0x01020304};
  const auto b = t.to_bytes();
  EXPECT_EQ(b.size(), 16u);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[4], 0u);
  EXPECT_EQ(b[5], 1u);
  EXPECT_EQ(b[8], 0xFFu);
  EXPECT_EQ(b[12], 0x04u);
  EXPECT_EQ(b[15], 0x01u);
}

TEST(Capture, CsvRoundTrip) {
  Capture cap;
  cap.label = "golden";
  for (std::uint32_t i = 0; i < 5; ++i) {
    Transaction t;
    t.index = i;
    t.counts = {static_cast<std::int32_t>(i * 100),
                static_cast<std::int32_t>(i * 200), -5,
                static_cast<std::int32_t>(i * 300)};
    cap.transactions.push_back(t);
  }
  const Capture back = Capture::from_csv(cap.to_csv(), "copy");
  ASSERT_EQ(back.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back.transactions[i].counts, cap.transactions[i].counts);
  }
  EXPECT_EQ(back.label, "copy");
}

TEST(Capture, CsvHeaderMatchesPaperFigure) {
  Capture cap;
  Transaction t;
  t.index = 5113;
  t.counts = {6060, 8266, 960, 52843};
  cap.transactions.push_back(t);
  const std::string csv = cap.to_csv();
  EXPECT_NE(csv.find("Index, X, Y, Z, E"), std::string::npos);
  EXPECT_NE(csv.find("5113, 6060, 8266, 960, 52843"), std::string::npos);
}

TEST(Capture, MalformedCsvThrows) {
  EXPECT_THROW(Capture::from_csv("Index, X, Y, Z, E\n1, 2, three\n"),
               offramps::Error);
}

TEST(Capture, CsvFooterPreservesExactFinals) {
  Capture cap;
  Transaction t;
  t.index = 0;
  t.counts = {100, 200, 300, 400};
  cap.transactions.push_back(t);
  // Finals captured at finalize time exceed the last transaction (steps
  // landed in the final partial window).
  cap.final_counts = {105, 200, 307, 411};
  cap.print_completed = false;
  const Capture back = Capture::from_csv(cap.to_csv());
  EXPECT_EQ(back.final_counts, cap.final_counts);
  EXPECT_FALSE(back.print_completed);
}

TEST(Capture, LegacyCsvWithoutFooterFallsBackToLastRow) {
  const Capture back = Capture::from_csv(
      "Index, X, Y, Z, E\n0, 10, 20, 30, 40\n1, 11, 21, 31, 41\n");
  EXPECT_EQ(back.final_counts,
            (std::array<std::int64_t, 4>{11, 21, 31, 41}));
  EXPECT_TRUE(back.print_completed);
}

TEST(Capture, MalformedFooterThrows) {
  EXPECT_THROW(Capture::from_csv("Index, X, Y, Z, E\n0, 1, 2, 3, 4\n"
                                 "# final, x, y\n"),
               offramps::Error);
}

struct UartFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire xs{sched, "XS"}, xd{sched, "XD"};
  sim::Wire ys{sched, "YS"}, yd{sched, "YD"};
  sim::Wire zs{sched, "ZS"}, zd{sched, "ZD"};
  sim::Wire es{sched, "ES"}, ed{sched, "ED"};
  sim::Wire xm{sched, "XM"}, ym{sched, "YM"}, zm{sched, "ZM"};
  AxisTracker tx{sched, xs, xd}, ty{sched, ys, yd}, tz{sched, zs, zd},
      te{sched, es, ed};
  HomingDetector homing{sched, xm, ym, zm};
  UartReporter uart{sched, {&tx, &ty, &tz, &te}, homing};

  void home() {
    for (sim::Wire* w : {&xm, &ym, &zm}) {
      w->set(true);
      sched.run_until(sched.now() + sim::ms(1));
      w->set(false);
      sched.run_until(sched.now() + sim::ms(1));
      w->set(true);
      sched.run_until(sched.now() + sim::ms(1));
      w->set(false);
      sched.run_until(sched.now() + sim::ms(1));
    }
  }

  void step_x(int n) {
    xd.set(true);
    for (int i = 0; i < n; ++i) {
      xs.set(true);
      xs.set(false);
      sched.run_until(sched.now() + sim::us(100));
    }
  }
};

TEST_F(UartFixture, NoTransactionsBeforeHoming) {
  step_x(10);  // steps before homing: counters not armed
  sched.run_until(sim::seconds(2));
  EXPECT_TRUE(uart.capture().empty());
  EXPECT_FALSE(uart.streaming());
}

TEST_F(UartFixture, StreamStartsAfterHomingPlusFirstStep) {
  home();
  sched.run_until(sched.now() + sim::seconds(1));
  EXPECT_TRUE(uart.capture().empty());  // homed but no step yet
  step_x(5);
  EXPECT_TRUE(uart.streaming());
  sched.run_until(sched.now() + sim::ms(1050));
  EXPECT_GE(uart.capture().size(), 10u);  // ~0.1 s cadence
  EXPECT_LE(uart.capture().size(), 11u);
}

TEST_F(UartFixture, TransactionsCarryCumulativeCounts) {
  home();
  step_x(50);
  sched.run_until(sched.now() + sim::ms(250));
  const auto& txns = uart.capture().transactions;
  ASSERT_GE(txns.size(), 2u);
  EXPECT_EQ(txns.back().counts[0], 50);
  EXPECT_EQ(txns.back().counts[1], 0);
  // Indices are sequential from zero.
  for (std::size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(txns[i].index, static_cast<std::uint32_t>(i));
  }
}

TEST_F(UartFixture, PerTransactionCallbackStreams) {
  int delivered = 0;
  uart.on_transaction([&](const Transaction&) { ++delivered; });
  home();
  step_x(5);
  sched.run_until(sched.now() + sim::ms(550));
  EXPECT_GE(delivered, 5);
}

TEST_F(UartFixture, FinalizeFreezesCountsAndStopsStream) {
  home();
  step_x(30);
  sched.run_until(sched.now() + sim::ms(300));
  uart.finalize(/*print_completed=*/true);
  const auto size_at_finalize = uart.capture().size();
  step_x(10);
  sched.run_until(sched.now() + sim::seconds(1));
  EXPECT_EQ(uart.capture().size(), size_at_finalize);
  // Final counts were frozen at finalize time.
  EXPECT_EQ(uart.capture().final_counts[0], 30);
  EXPECT_TRUE(uart.capture().print_completed);
}

TEST_F(UartFixture, HomingZeroesCountersAtDatum) {
  step_x(25);  // pre-homing noise
  home();
  step_x(10);
  sched.run_until(sched.now() + sim::ms(150));
  EXPECT_EQ(uart.capture().transactions.back().counts[0], 10);
}

}  // namespace
}  // namespace offramps::core
