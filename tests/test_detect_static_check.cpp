// Tests for detect::static_check - the golden-free runtime cross-check
// that compares an OFFRAMPS capture against the static step oracle.
#include <gtest/gtest.h>

#include "analyze/analyzer.hpp"
#include "detect/static_check.hpp"
#include "gcode/flaw3d.hpp"
#include "gcode/parser.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::detect {
namespace {

gcode::Program test_object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

core::Capture print_capture(const gcode::Program& program,
                            std::uint64_t seed) {
  host::RigOptions options;
  options.firmware.jitter_seed = seed;
  host::Rig rig(options);
  host::RunResult r = rig.run(program);
  EXPECT_TRUE(r.finished);
  return std::move(r.capture);
}

struct StaticCheckFixture : ::testing::Test {
  static analyze::Oracle* oracle;  // static oracle of the clean program

  static void SetUpTestSuite() {
    oracle = new analyze::Oracle(
        analyze::analyze_program(test_object()).oracle);
  }
  static void TearDownTestSuite() {
    delete oracle;
    oracle = nullptr;
  }
};

analyze::Oracle* StaticCheckFixture::oracle = nullptr;

TEST_F(StaticCheckFixture, CleanPrintPasses) {
  const core::Capture cap = print_capture(test_object(), /*seed=*/1);
  const StaticCheckReport rep = static_check(*oracle, cap);
  EXPECT_FALSE(rep.trojan_suspected) << rep.to_string();
  EXPECT_TRUE(rep.oracle_armed);
  EXPECT_TRUE(rep.print_completed);
}

TEST_F(StaticCheckFixture, CleanPrintPassesUnderDifferentSeed) {
  const core::Capture cap = print_capture(test_object(), /*seed=*/424242);
  EXPECT_FALSE(static_check(*oracle, cap).trojan_suspected);
}

TEST_F(StaticCheckFixture, StealthiestReductionIsCaught) {
  // 2% extrusion loss hides inside the paper's 5% golden margin on
  // windowed counts; the static check's tight margin catches it from the
  // final counters alone - with no golden print ever made.
  const auto mutated =
      gcode::flaw3d::apply_reduction(test_object(), {.factor = 0.98});
  const core::Capture cap = print_capture(mutated, /*seed=*/7);
  const StaticCheckReport rep = static_check(*oracle, cap);
  EXPECT_TRUE(rep.trojan_suspected) << rep.to_string();
  ASSERT_FALSE(rep.mismatches.empty());
  EXPECT_EQ(rep.mismatches[0].axis, 3u);  // the E axis diverges
}

TEST_F(StaticCheckFixture, GrossReductionIsCaught) {
  const auto mutated =
      gcode::flaw3d::apply_reduction(test_object(), {.factor = 0.5});
  const core::Capture cap = print_capture(mutated, /*seed=*/7);
  EXPECT_TRUE(static_check(*oracle, cap).trojan_suspected);
}

TEST_F(StaticCheckFixture, AbortedPrintIsInconclusiveButSuspect) {
  core::Capture cap = print_capture(test_object(), /*seed=*/1);
  cap.print_completed = false;
  const StaticCheckReport rep = static_check(*oracle, cap);
  EXPECT_TRUE(rep.trojan_suspected);
  EXPECT_FALSE(rep.print_completed);
}

TEST(StaticCheck, NeverArmedOracleIsInconclusive) {
  const analyze::AnalysisResult res = analyze::analyze_program(
      gcode::parse_program("G21\nG90\nG1 X10 F3000\n"));
  core::Capture cap;
  cap.print_completed = true;
  const StaticCheckReport rep = static_check(res.oracle, cap);
  EXPECT_TRUE(rep.trojan_suspected);
  EXPECT_FALSE(rep.oracle_armed);
}

TEST(StaticCheck, MarginRespectsAbsoluteSlack) {
  analyze::Oracle oracle;
  oracle.counters_armed = true;
  oracle.expected_counts = {1000, 1000, 100, 1000};
  core::Capture cap;
  cap.print_completed = true;
  cap.final_counts = {1000, 1000, 104, 1000};  // +4 steps on Z
  StaticCheckOptions options;
  options.slack_steps = 8;
  EXPECT_FALSE(static_check(oracle, cap, options).trojan_suspected);
  options.slack_steps = 2;
  EXPECT_TRUE(static_check(oracle, cap, options).trojan_suspected);
}

}  // namespace
}  // namespace offramps::detect
