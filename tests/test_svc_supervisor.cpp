// svc::Supervisor: deterministic backoff, the retry/quarantine ladder,
// and the sim-clocked stall watchdog.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/error.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "svc/supervisor.hpp"

namespace {

using offramps::Error;
using offramps::svc::AttemptContext;
using offramps::svc::backoff_delay_ms;
using offramps::svc::GuardOutcome;
using offramps::svc::rig_status_name;
using offramps::svc::RigStatus;
using offramps::svc::StallWatchdog;
using offramps::svc::Supervisor;
using offramps::svc::SupervisorOptions;

TEST(Backoff, ZeroBaseDisablesSleeping) {
  SupervisorOptions opt;
  opt.backoff_base_ms = 0;
  EXPECT_EQ(backoff_delay_ms(opt, 0, 0), 0u);
  EXPECT_EQ(backoff_delay_ms(opt, 7, 3), 0u);
}

TEST(Backoff, DeterministicAndJittered) {
  SupervisorOptions opt;
  opt.backoff_base_ms = 100;
  opt.backoff_cap_ms = 2000;
  for (std::uint64_t key = 0; key < 16; ++key) {
    for (std::uint32_t attempt = 0; attempt < 5; ++attempt) {
      const std::uint64_t a = backoff_delay_ms(opt, key, attempt);
      const std::uint64_t b = backoff_delay_ms(opt, key, attempt);
      EXPECT_EQ(a, b) << "pure function of (seed, key, attempt)";
      // Exponential envelope with jitter in [delay/2, delay].
      std::uint64_t ceiling = opt.backoff_base_ms;
      for (std::uint32_t i = 0; i < attempt && ceiling < opt.backoff_cap_ms;
           ++i) {
        ceiling *= 2;
      }
      if (ceiling > opt.backoff_cap_ms) ceiling = opt.backoff_cap_ms;
      EXPECT_GE(a, ceiling / 2);
      EXPECT_LE(a, ceiling);
    }
  }
}

TEST(Backoff, DecorrelatedAcrossKeys) {
  SupervisorOptions opt;
  opt.backoff_base_ms = 1000;
  opt.backoff_cap_ms = 1000;
  // Same attempt, different keys: the jitter must not collapse to one
  // value (thundering herd).  With a 500-wide window, 32 keys all equal
  // would be astronomically unlikely.
  bool any_different = false;
  const std::uint64_t first = backoff_delay_ms(opt, 0, 0);
  for (std::uint64_t key = 1; key < 32; ++key) {
    if (backoff_delay_ms(opt, key, 0) != first) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Backoff, CapSaturates) {
  SupervisorOptions opt;
  opt.backoff_base_ms = 100;
  opt.backoff_cap_ms = 400;
  for (std::uint32_t attempt = 0; attempt < 40; ++attempt) {
    EXPECT_LE(backoff_delay_ms(opt, 1, attempt), 400u);
  }
}

SupervisorOptions fast_options(std::uint32_t attempts) {
  SupervisorOptions opt;
  opt.max_attempts = attempts;
  opt.backoff_base_ms = 0;  // no sleeping in tests
  return opt;
}

TEST(Supervisor, FirstTrySuccessIsOk) {
  const Supervisor sup(fast_options(3));
  int calls = 0;
  const GuardOutcome out =
      sup.run_guarded(1, [&](const AttemptContext&) { ++calls; });
  EXPECT_EQ(out.status, RigStatus::kOk);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_TRUE(out.failure_cause.empty());
  EXPECT_EQ(calls, 1);
}

TEST(Supervisor, RetrySuccessIsRecovered) {
  const Supervisor sup(fast_options(3));
  int calls = 0;
  const GuardOutcome out = sup.run_guarded(1, [&](const AttemptContext& ctx) {
    ++calls;
    if (ctx.attempt == 0) throw Error("transient");
  });
  EXPECT_EQ(out.status, RigStatus::kRecovered);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.failure_cause, "transient");
  EXPECT_EQ(calls, 2);
}

TEST(Supervisor, FinalAttemptRunsDegraded) {
  const Supervisor sup(fast_options(3));
  bool was_degraded = false;
  const GuardOutcome out = sup.run_guarded(1, [&](const AttemptContext& ctx) {
    if (ctx.attempt < 2) throw Error("still broken");
    was_degraded = ctx.degraded;
  });
  EXPECT_EQ(out.status, RigStatus::kDegraded);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_TRUE(was_degraded) << "final attempt must carry the degrade flag";
}

TEST(Supervisor, ExhaustedRetriesAreLost) {
  const Supervisor sup(fast_options(3));
  int calls = 0;
  const GuardOutcome out = sup.run_guarded(1, [&](const AttemptContext&) {
    ++calls;
    throw Error("hard failure " + std::to_string(calls));
  });
  EXPECT_EQ(out.status, RigStatus::kLost);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.failure_cause, "hard failure 3");
  EXPECT_EQ(calls, 3);
}

TEST(Supervisor, SingleAttemptNeverDegrades) {
  const Supervisor sup(fast_options(1));
  bool degraded = false;
  const GuardOutcome out = sup.run_guarded(1, [&](const AttemptContext& ctx) {
    degraded = ctx.degraded;
  });
  EXPECT_EQ(out.status, RigStatus::kOk);
  EXPECT_FALSE(degraded) << "1 attempt = no degrade ladder";
}

TEST(Supervisor, DegradeLadderCanBeDisabled) {
  SupervisorOptions opt = fast_options(2);
  opt.degrade_channels = false;
  const Supervisor sup(opt);
  bool degraded = false;
  const GuardOutcome out = sup.run_guarded(1, [&](const AttemptContext& ctx) {
    degraded = ctx.degraded;
    if (ctx.attempt == 0) throw Error("transient");
  });
  EXPECT_EQ(out.status, RigStatus::kRecovered);
  EXPECT_FALSE(degraded);
}

TEST(Supervisor, StatusNames) {
  EXPECT_STREQ(rig_status_name(RigStatus::kOk), "ok");
  EXPECT_STREQ(rig_status_name(RigStatus::kRecovered), "recovered");
  EXPECT_STREQ(rig_status_name(RigStatus::kDegraded), "degraded");
  EXPECT_STREQ(rig_status_name(RigStatus::kLost), "lost");
  EXPECT_STREQ(rig_status_name(RigStatus::kPending), "pending");
}

TEST(StallWatchdog, ThrowsWhenProgressFreezes) {
  offramps::sim::Scheduler sched;
  SupervisorOptions opt;
  opt.watchdog_period_s = 0.5;
  opt.stall_timeout_s = 2.0;
  opt.first_data_timeout_s = 100.0;

  std::uint64_t progress = 0;
  // Progress advances for 3 sim-seconds, then wedges.
  for (int i = 1; i <= 6; ++i) {
    sched.schedule_at(offramps::sim::from_seconds(0.5 * i),
                      [&progress] { ++progress; });
  }
  StallWatchdog dog(
      sched, opt, [&progress] { return progress; }, [] { return true; },
      "test");
  EXPECT_THROW(sched.run_until(offramps::sim::from_seconds(60.0)),
               offramps::Error);
  // The stream made progress until t=3s; the stall must be detected at
  // roughly 3s + stall_timeout, far before the 60 s horizon.
  const double t = offramps::sim::to_seconds(sched.now());
  EXPECT_GE(t, 4.9);
  EXPECT_LE(t, 6.1);
}

TEST(StallWatchdog, ThrowsWhenStreamNeverStarts) {
  offramps::sim::Scheduler sched;
  SupervisorOptions opt;
  opt.watchdog_period_s = 0.5;
  opt.stall_timeout_s = 100.0;
  opt.first_data_timeout_s = 3.0;

  StallWatchdog dog(
      sched, opt, [] { return std::uint64_t{0}; }, [] { return true; },
      "test");
  EXPECT_THROW(sched.run_until(offramps::sim::from_seconds(60.0)),
               offramps::Error);
  EXPECT_LE(offramps::sim::to_seconds(sched.now()), 4.1);
}

TEST(StallWatchdog, RetiresWhenInactive) {
  offramps::sim::Scheduler sched;
  SupervisorOptions opt;
  opt.watchdog_period_s = 0.5;
  opt.stall_timeout_s = 1.0;
  opt.first_data_timeout_s = 1.0;

  bool active = true;
  sched.schedule_at(offramps::sim::from_seconds(0.6),
                    [&active] { active = false; });
  StallWatchdog dog(
      sched, opt, [] { return std::uint64_t{0}; },
      [&active] { return active; }, "test");
  // Once inactive the watchdog retires; no throw, and the scheduler
  // drains instead of running to the horizon.
  EXPECT_NO_THROW(sched.run_until(offramps::sim::from_seconds(60.0)));
}

}  // namespace
