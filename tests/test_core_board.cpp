// Unit tests for the OFFRAMPS board: the three routing configurations of
// paper Figure 3 and their equivalence properties.
#include <gtest/gtest.h>

#include "core/board.hpp"
#include "sim/trace.hpp"

namespace offramps::core {
namespace {

struct BoardFixture : ::testing::Test {
  sim::Scheduler sched;

  void pulse(sim::Wire& w, int n, sim::Tick spacing = sim::us(50)) {
    for (int i = 0; i < n; ++i) {
      w.set(true);
      sched.run_until(sched.now() + sim::us(1));
      w.set(false);
      sched.run_until(sched.now() + spacing);
    }
  }
};

TEST_F(BoardFixture, DirectRouteForwardsControlSignals) {
  Board board(sched, {}, RouteMode::kDirect);
  sim::TraceRecorder out(board.ramps_side().step(sim::Axis::kX), false);
  pulse(board.arduino_side().step(sim::Axis::kX), 10);
  EXPECT_EQ(out.rising_edges(), 10u);
}

TEST_F(BoardFixture, DirectRouteForwardsEndstopsBackward) {
  Board board(sched, {}, RouteMode::kDirect);
  board.ramps_side().min_endstop(sim::Axis::kY).set(true);
  sched.run_until(sim::us(1));
  EXPECT_TRUE(board.arduino_side().min_endstop(sim::Axis::kY).level());
}

TEST_F(BoardFixture, DirectRouteForwardsAnalog) {
  Board board(sched, {}, RouteMode::kDirect);
  board.ramps_side().analog(sim::APin::kThermHotend).set(512.0);
  EXPECT_DOUBLE_EQ(
      board.arduino_side().analog(sim::APin::kThermHotend).value(), 512.0);
}

TEST_F(BoardFixture, MitmRouteIsLosslessWhenBenign) {
  Board board(sched, {}, RouteMode::kFpgaMitm);
  sim::TraceRecorder out(board.ramps_side().step(sim::Axis::kE), false);
  pulse(board.arduino_side().step(sim::Axis::kE), 25);
  sched.run_until(sched.now() + sim::us(5));
  EXPECT_EQ(out.rising_edges(), 25u);
}

TEST_F(BoardFixture, MitmAddsOnlyNanosecondDelay) {
  Board board(sched, {}, RouteMode::kFpgaMitm);
  auto& in = board.arduino_side().step(sim::Axis::kX);
  auto& out = board.ramps_side().step(sim::Axis::kX);
  sim::Tick out_rise = 0;
  out.on_rising([&](sim::Tick t) { out_rise = t; });
  const sim::Tick t0 = sched.now();
  in.set(true);
  sched.run_until(sched.now() + sim::us(1));
  const sim::Tick delay = out_rise - t0;
  EXPECT_GT(delay, 0u);
  EXPECT_LE(delay, sim::ns(13));  // paper: max 12.923 ns
}

TEST_F(BoardFixture, DirectModeDisablesMonitoring) {
  Board board(sched, {}, RouteMode::kDirect);
  // Full homing signature on the RAMPS side...
  for (const auto a : {sim::Axis::kX, sim::Axis::kY, sim::Axis::kZ}) {
    auto& stop = board.ramps_side().min_endstop(a);
    pulse(stop, 2, sim::ms(1));
  }
  sched.run_until(sched.now() + sim::ms(10));
  // ...goes unseen: the FPGA is out of circuit.
  EXPECT_FALSE(board.fpga().homing().homed());
}

TEST_F(BoardFixture, RecordModeMonitorsWithoutModifying) {
  Board board(sched, {}, RouteMode::kFpgaRecord);
  // Homing signature reaches both the firmware side AND the monitors.
  for (const auto a : {sim::Axis::kX, sim::Axis::kY, sim::Axis::kZ}) {
    auto& stop = board.ramps_side().min_endstop(a);
    stop.set(true);
    sched.run_until(sched.now() + sim::ms(1));
    stop.set(false);
    sched.run_until(sched.now() + sim::ms(1));
    stop.set(true);
    sched.run_until(sched.now() + sim::ms(1));
    stop.set(false);
    sched.run_until(sched.now() + sim::ms(1));
  }
  EXPECT_TRUE(board.fpga().homing().homed());
  // And the direct jumpers carried the signals to the firmware side.
  EXPECT_FALSE(board.arduino_side().min_endstop(sim::Axis::kZ).level());
}

TEST_F(BoardFixture, RecordModeCannotModify) {
  Board board(sched, {}, RouteMode::kFpgaRecord);
  // A Trojan forcing a heater path high has no effect: paths are inactive.
  board.fpga().path(sim::Pin::kHotendHeat).force(true);
  sched.run_until(sched.now() + sim::us(10));
  EXPECT_FALSE(board.ramps_side().wire(sim::Pin::kHotendHeat).level());
}

TEST_F(BoardFixture, MitmModeCanModify) {
  Board board(sched, {}, RouteMode::kFpgaMitm);
  board.fpga().path(sim::Pin::kHotendHeat).force(true);
  sched.run_until(sched.now() + sim::us(10));
  EXPECT_TRUE(board.ramps_side().wire(sim::Pin::kHotendHeat).level());
}

TEST_F(BoardFixture, RouteSwitchRewiresLive) {
  Board board(sched, {}, RouteMode::kDirect);
  auto& in = board.arduino_side().step(sim::Axis::kX);
  auto& out = board.ramps_side().step(sim::Axis::kX);
  pulse(in, 3);
  EXPECT_EQ(out.rising_count(), 3u);
  board.set_route(RouteMode::kFpgaMitm);
  pulse(in, 3);
  sched.run_until(sched.now() + sim::us(5));
  EXPECT_EQ(out.rising_count(), 6u);
  board.set_route(RouteMode::kDirect);
  pulse(in, 3);
  EXPECT_EQ(out.rising_count(), 9u);
}

TEST_F(BoardFixture, MaxPropDelayMatchesPaperWorstCase) {
  Board board(sched, {}, RouteMode::kFpgaMitm);
  EXPECT_EQ(board.fpga().max_prop_delay(), sim::ns(13));
  EXPECT_EQ(board.fpga().max_prop_delay_pin(), sim::Pin::kYDir);
}

TEST(RouteModeNames, AreDescriptive) {
  EXPECT_NE(std::string(route_mode_name(RouteMode::kDirect)).find("bypass"),
            std::string::npos);
  EXPECT_NE(std::string(route_mode_name(RouteMode::kFpgaMitm))
                .find("middle"),
            std::string::npos);
}

}  // namespace
}  // namespace offramps::core
