// Unit tests for the modal g-code interpreter.
#include <gtest/gtest.h>

#include "gcode/modal.hpp"
#include "gcode/parser.hpp"

namespace offramps::gcode {
namespace {

Command line(const char* text) {
  auto cmd = parse_line(text);
  EXPECT_TRUE(cmd.has_value()) << text;
  return *cmd;
}

TEST(Modal, AbsoluteMoveResolvesDeltas) {
  ModalState m;
  const auto mv = m.apply(line("G1 X10 Y5 F1200"));
  ASSERT_TRUE(mv.has_value());
  EXPECT_DOUBLE_EQ(mv->delta[0], 10.0);
  EXPECT_DOUBLE_EQ(mv->delta[1], 5.0);
  EXPECT_DOUBLE_EQ(mv->feed_mm_min, 1200.0);
  EXPECT_EQ(mv->kind, MoveKind::kTravel);
}

TEST(Modal, RelativeModeAccumulates) {
  ModalState m;
  m.apply(line("G91"));
  m.apply(line("G1 X5"));
  const auto mv = m.apply(line("G1 X5"));
  ASSERT_TRUE(mv.has_value());
  EXPECT_DOUBLE_EQ(mv->from[0], 5.0);
  EXPECT_DOUBLE_EQ(mv->target[0], 10.0);
}

TEST(Modal, G90RestoresAbsolute) {
  ModalState m;
  m.apply(line("G91"));
  m.apply(line("G1 X5"));
  m.apply(line("G90"));
  const auto mv = m.apply(line("G1 X5"));
  ASSERT_TRUE(mv.has_value());
  EXPECT_DOUBLE_EQ(mv->delta[0], 0.0);
}

TEST(Modal, ExtruderModeIndependentViaM82M83) {
  ModalState m;
  m.apply(line("M83"));  // relative E, absolute XYZ
  m.apply(line("G1 X10 E2"));
  const auto mv = m.apply(line("G1 X20 E2"));
  ASSERT_TRUE(mv.has_value());
  EXPECT_DOUBLE_EQ(mv->delta[3], 2.0);
  EXPECT_DOUBLE_EQ(mv->target[3], 4.0);
  EXPECT_DOUBLE_EQ(mv->delta[0], 10.0);  // XYZ still absolute
}

TEST(Modal, G92RebasesE) {
  ModalState m;
  m.apply(line("G1 E5"));
  m.apply(line("G92 E0"));
  const auto mv = m.apply(line("G1 E1"));
  ASSERT_TRUE(mv.has_value());
  EXPECT_DOUBLE_EQ(mv->delta[3], 1.0);
}

TEST(Modal, BareG92ZeroesEverything) {
  ModalState m;
  m.apply(line("G1 X10 Y10 Z2 E5"));
  m.apply(line("G92"));
  EXPECT_DOUBLE_EQ(m.position()[0], 0.0);
  EXPECT_DOUBLE_EQ(m.position()[3], 0.0);
}

TEST(Modal, G28ZeroesNamedAxes) {
  ModalState m;
  m.apply(line("G1 X10 Y10 Z5"));
  m.apply(line("G28 X"));
  EXPECT_DOUBLE_EQ(m.position()[0], 0.0);
  EXPECT_DOUBLE_EQ(m.position()[1], 10.0);
  m.apply(line("G28"));
  EXPECT_DOUBLE_EQ(m.position()[1], 0.0);
  EXPECT_DOUBLE_EQ(m.position()[2], 0.0);
}

TEST(Modal, FeedratePersistsAcrossMoves) {
  ModalState m;
  m.apply(line("G1 X1 F600"));
  const auto mv = m.apply(line("G1 X2"));
  ASSERT_TRUE(mv.has_value());
  EXPECT_DOUBLE_EQ(mv->feed_mm_min, 600.0);
}

TEST(Modal, MoveClassification) {
  ModalState m;
  EXPECT_EQ(m.apply(line("G1 X10"))->kind, MoveKind::kTravel);
  EXPECT_EQ(m.apply(line("G1 X20 E1"))->kind, MoveKind::kExtrusion);
  EXPECT_EQ(m.apply(line("G1 E0.5"))->kind, MoveKind::kRetraction);
  EXPECT_EQ(m.apply(line("G1 E2"))->kind, MoveKind::kEOnly);
  EXPECT_EQ(m.apply(line("G1 X30 E1"))->kind, MoveKind::kRetraction);
}

TEST(Modal, TravelDistance) {
  ModalState m;
  const auto mv = m.apply(line("G1 X3 Y4"));
  ASSERT_TRUE(mv.has_value());
  EXPECT_DOUBLE_EQ(mv->travel_mm(), 5.0);
}

TEST(Modal, NonMotionCommandsReturnNullopt) {
  ModalState m;
  EXPECT_FALSE(m.apply(line("M104 S210")).has_value());
  EXPECT_FALSE(m.apply(line("G90")).has_value());
  EXPECT_FALSE(m.apply(line("M106 S255")).has_value());
}

}  // namespace
}  // namespace offramps::gcode
