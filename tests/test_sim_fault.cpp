// Unit tests for the declarative fault-injection engine: stuck-at and
// glitch faults on digital wires, open/short/drift faults on analog
// channels, byte-stream corruptors, scheduler timing jitter, activation
// windows, and the zero-intensity control-cell convention.
#include <gtest/gtest.h>

#include <vector>

#include "sim/error.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "sim/wire.hpp"

namespace offramps::sim {
namespace {

TEST(FaultKindNames, RoundTripAllKinds) {
  for (int i = 0; i <= static_cast<int>(FaultKind::kTimingJitter); ++i) {
    const auto k = static_cast<FaultKind>(i);
    EXPECT_EQ(fault_kind_from_name(fault_kind_name(k)), k);
  }
  EXPECT_THROW(fault_kind_from_name("cosmic_ray"), offramps::Error);
}

TEST(FaultKindNames, EveryKindHasExactlyOneFamily) {
  for (int i = 0; i <= static_cast<int>(FaultKind::kTimingJitter); ++i) {
    const auto k = static_cast<FaultKind>(i);
    const int families = int{fault_targets_digital(k)} +
                         int{fault_targets_analog(k)} +
                         int{fault_targets_stream(k)} +
                         int{fault_targets_timing(k)};
    EXPECT_EQ(families, 1) << fault_kind_name(k);
  }
}

TEST(FaultSpec, WindowSemantics) {
  FaultSpec s;
  s.start = ms(10);
  s.stop = ms(20);
  EXPECT_FALSE(s.window_contains(ms(9)));
  EXPECT_TRUE(s.window_contains(ms(10)));
  EXPECT_TRUE(s.window_contains(ms(19)));
  EXPECT_FALSE(s.window_contains(ms(20)));  // half-open
  s.stop = 0;                               // "until the end"
  EXPECT_TRUE(s.window_contains(ms(1'000'000)));
}

TEST(FaultSpec, DescribeNamesKindTargetAndWindow) {
  FaultSpec s{.kind = FaultKind::kStuckLow, .target = "X_STEP",
              .intensity = 1.0, .start = seconds(2), .stop = seconds(4)};
  const std::string d = s.describe();
  EXPECT_NE(d.find("stuck_low"), std::string::npos);
  EXPECT_NE(d.find("X_STEP"), std::string::npos);
  EXPECT_NE(d.find("2"), std::string::npos);
  EXPECT_NE(d.find("4"), std::string::npos);
}

struct DigitalFaultTest : ::testing::Test {
  Scheduler sched;
  Wire wire{sched, "NET"};
  FaultInjector inj{sched};
};

TEST_F(DigitalFaultTest, StuckHighEngagesAndReleasesOnWindow) {
  inj.inject_digital({.kind = FaultKind::kStuckHigh, .target = "NET",
                      .start = ms(1), .stop = ms(3)},
                     wire);
  sched.run_until(ms(2));
  EXPECT_TRUE(wire.level());
  EXPECT_TRUE(wire.fault().has_value());
  // A drive against the fault is masked and counted, not observed.
  wire.set(false);
  EXPECT_TRUE(wire.level());
  EXPECT_EQ(wire.fault_masked_drives(), 1u);
  sched.run_until(ms(4));
  // Released: the net re-synchronizes to the last driven level.
  EXPECT_FALSE(wire.fault().has_value());
  EXPECT_FALSE(wire.level());
  EXPECT_EQ(inj.stats().stuck_engagements, 1u);
}

TEST_F(DigitalFaultTest, StuckLowWithNoStopHoldsToTheEnd) {
  wire.set(true);
  inj.inject_digital({.kind = FaultKind::kStuckLow, .target = "NET",
                      .start = ms(1)},
                     wire);
  sched.run_until(seconds(10));
  EXPECT_FALSE(wire.level());
  EXPECT_TRUE(wire.fault().has_value());
}

TEST_F(DigitalFaultTest, ZeroIntensityIsARecordedNoOp) {
  inj.inject_digital({.kind = FaultKind::kStuckHigh, .target = "NET",
                      .intensity = 0.0, .start = ms(1)},
                     wire);
  sched.run_until(ms(10));
  EXPECT_EQ(inj.armed(), 1u);
  EXPECT_FALSE(wire.level());
  EXPECT_EQ(inj.stats().total(), 0u);
}

TEST_F(DigitalFaultTest, GlitchesArePoissonAndSeedReproducible) {
  // 1000 glitches/s over 100 ms of idle-low wire: expect roughly 100
  // short positive pulses, and the exact count must be seed-stable.
  const FaultSpec spec{.kind = FaultKind::kGlitch, .target = "NET",
                       .intensity = 1000.0, .start = 0, .stop = ms(100),
                       .seed = 42};
  inj.inject_digital(spec, wire);
  sched.run_until(ms(120));
  const auto glitches = inj.stats().glitches;
  EXPECT_GT(glitches, 50u);
  EXPECT_LT(glitches, 200u);
  // Nearly every glitch is an observable rising edge (back-to-back
  // glitches inside one pulse width can merge, so <= not ==).
  EXPECT_GT(wire.rising_count(), 0u);
  EXPECT_LE(wire.rising_count(), glitches);
  EXPECT_FALSE(wire.fault().has_value());  // all released after window

  Scheduler sched2;
  Wire wire2{sched2, "NET"};
  FaultInjector inj2{sched2};
  inj2.inject_digital(spec, wire2);
  sched2.run_until(ms(120));
  EXPECT_EQ(inj2.stats().glitches, glitches);
}

TEST_F(DigitalFaultTest, InjectDigitalRejectsForeignKinds) {
  EXPECT_THROW(
      inj.inject_digital({.kind = FaultKind::kAnalogDrift, .target = "NET"},
                         wire),
      offramps::Error);
  EXPECT_THROW(
      inj.inject_digital({.kind = FaultKind::kUartBitFlip, .target = "NET"},
                         wire),
      offramps::Error);
}

struct AnalogFaultTest : ::testing::Test {
  Scheduler sched;
  AnalogChannel ch{sched, "THERM", 512.0};
  FaultInjector inj{sched};
};

TEST_F(AnalogFaultTest, OpenCircuitRailsToFullScaleThenReleases) {
  inj.inject_analog({.kind = FaultKind::kAnalogOpen, .target = "THERM",
                     .start = ms(1), .stop = ms(3)},
                    ch);
  sched.run_until(ms(2));
  EXPECT_DOUBLE_EQ(ch.value(), 1023.0);
  EXPECT_TRUE(ch.fault_active());
  ch.set(400.0);  // driver keeps updating underneath the fault
  EXPECT_DOUBLE_EQ(ch.value(), 1023.0);
  sched.run_until(ms(4));
  EXPECT_FALSE(ch.fault_active());
  EXPECT_DOUBLE_EQ(ch.value(), 400.0);  // re-publishes the driven value
}

TEST_F(AnalogFaultTest, ShortCircuitReadsZero) {
  inj.inject_analog({.kind = FaultKind::kAnalogShort, .target = "THERM",
                     .start = ms(1)},
                    ch);
  sched.run_until(ms(2));
  EXPECT_DOUBLE_EQ(ch.value(), 0.0);
  EXPECT_EQ(inj.stats().analog_engagements, 1u);
}

TEST_F(AnalogFaultTest, DriftRampsLinearlyAndClamps) {
  // 100 ADC counts per second from t = 0.
  inj.inject_analog({.kind = FaultKind::kAnalogDrift, .target = "THERM",
                     .intensity = 100.0, .start = 0},
                    ch);
  sched.run_until(seconds(1));
  ch.set(512.0);
  EXPECT_NEAR(ch.value(), 612.0, 1.0);
  sched.run_until(seconds(3));
  ch.set(512.0);
  EXPECT_NEAR(ch.value(), 812.0, 1.0);
  sched.run_until(seconds(60));
  ch.set(512.0);
  EXPECT_DOUBLE_EQ(ch.value(), 1023.0);  // clamped at full scale
}

struct StreamFaultTest : ::testing::Test {
  Scheduler sched;
  FaultInjector inj{sched};
  std::vector<std::uint8_t> frame{0xA5, 0x5A, 1, 2, 3, 4, 5, 6, 7, 8};
};

TEST_F(StreamFaultTest, BitFlipAtCertaintyFlipsExactlyOneBitPerByte) {
  auto f = inj.make_stream_fault({.kind = FaultKind::kUartBitFlip,
                                  .target = "uart", .intensity = 1.0});
  ASSERT_TRUE(f);
  auto copy = frame;
  f(copy);
  ASSERT_EQ(copy.size(), frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const std::uint8_t diff = copy[i] ^ frame[i];
    EXPECT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit flipped";
  }
  EXPECT_EQ(inj.stats().bytes_flipped, frame.size());
}

TEST_F(StreamFaultTest, DropAndDupChangeLength) {
  auto drop = inj.make_stream_fault({.kind = FaultKind::kUartDropByte,
                                     .target = "uart", .intensity = 1.0});
  auto copy = frame;
  drop(copy);
  EXPECT_TRUE(copy.empty());
  EXPECT_EQ(inj.stats().bytes_dropped, frame.size());

  auto dup = inj.make_stream_fault({.kind = FaultKind::kUartDupByte,
                                    .target = "uart", .intensity = 1.0,
                                    .seed = 7});
  copy = frame;
  dup(copy);
  EXPECT_EQ(copy.size(), frame.size() * 2);
  EXPECT_EQ(inj.stats().bytes_duplicated, frame.size());
}

TEST_F(StreamFaultTest, QuietOutsideWindowAndWhenDisarmed) {
  auto f = inj.make_stream_fault({.kind = FaultKind::kUartBitFlip,
                                  .target = "uart", .intensity = 1.0,
                                  .start = seconds(100)});
  auto copy = frame;
  f(copy);  // now() == 0, window starts at 100 s
  EXPECT_EQ(copy, frame);
  EXPECT_EQ(inj.stats().bytes_flipped, 0u);
  // Zero intensity returns a null corruptor (caller skips installation).
  auto off = inj.make_stream_fault({.kind = FaultKind::kUartBitFlip,
                                    .target = "uart", .intensity = 0.0});
  EXPECT_FALSE(off);
}

TEST(TimingFault, JitterDelaysEventsWithinBoundAndWindow) {
  Scheduler sched;
  FaultInjector inj(sched);
  // Up to 500 us of added latency for the first 10 ms only.
  inj.inject_timing({.kind = FaultKind::kTimingJitter, .target = "scheduler",
                     .intensity = 500.0, .start = 0, .stop = ms(10)});
  std::vector<Tick> fired;
  for (int i = 1; i <= 20; ++i) {
    sched.schedule_at(ms(i), [&fired, &sched] { fired.push_back(sched.now()); });
  }
  sched.run_all();
  ASSERT_EQ(fired.size(), 20u);
  bool any_delayed = false;
  for (int i = 0; i < 20; ++i) {
    const Tick requested = ms(i + 1);
    const Tick actual = fired[static_cast<std::size_t>(i)];
    EXPECT_GE(actual, requested);
    if (requested < ms(10)) {
      EXPECT_LE(actual, requested + us(500));
      any_delayed |= actual != requested;
    } else {
      // Events scheduled after the window closes are exact again.
      EXPECT_EQ(actual, requested);
    }
  }
  EXPECT_TRUE(any_delayed);
  EXPECT_GT(sched.warped_events(), 0u);
  EXPECT_EQ(inj.stats().timing_windows, 1u);
}

TEST(TimingFault, SecondTimingFaultThrows) {
  Scheduler sched;
  FaultInjector inj(sched);
  inj.inject_timing(
      {.kind = FaultKind::kTimingJitter, .target = {}, .intensity = 10.0});
  EXPECT_THROW(inj.inject_timing({.kind = FaultKind::kTimingJitter,
                                  .target = {},
                                  .intensity = 10.0}),
               offramps::Error);
}

TEST(TimingFault, InjectorDestructionUnhooksTheWarp) {
  Scheduler sched;
  {
    FaultInjector inj(sched);
    inj.inject_timing({.kind = FaultKind::kTimingJitter,
                       .target = {},
                       .intensity = 100.0,
                       .seed = 3});
  }
  // With the injector gone the scheduler must be jitter-free again.
  Tick fired = 0;
  sched.schedule_at(ms(5), [&fired, &sched] { fired = sched.now(); });
  sched.run_all();
  EXPECT_EQ(fired, ms(5));
}

}  // namespace
}  // namespace offramps::sim
