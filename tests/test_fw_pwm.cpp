// Unit tests for the soft-PWM generator.
#include <gtest/gtest.h>

#include "fw/pwm.hpp"
#include "sim/trace.hpp"

namespace offramps::fw {
namespace {

struct PwmFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire out{sched, "pwm"};
  SoftPwm pwm{sched, out, sim::ms(10)};
};

TEST_F(PwmFixture, ZeroDutyDrivesLowWithNoEvents) {
  pwm.set_duty(0.0);
  const auto pending = sched.pending();
  sched.run_until(sim::ms(100));
  EXPECT_FALSE(out.level());
  EXPECT_EQ(out.rising_count(), 0u);
  EXPECT_EQ(pending, 0u);  // saturated output costs nothing
}

TEST_F(PwmFixture, FullDutyDrivesHighSolid) {
  pwm.set_duty(1.0);
  sched.run_until(sim::ms(100));
  EXPECT_TRUE(out.level());
  EXPECT_EQ(out.rising_count(), 1u);  // one edge, no toggling
}

TEST_F(PwmFixture, FractionalDutyMeasuresCorrectly) {
  sim::DutyMeter meter(out);
  pwm.set_duty(0.3);
  sched.run_until(sim::ms(1000));
  EXPECT_NEAR(meter.sample(), 0.3, 0.02);
}

TEST_F(PwmFixture, PeriodIsRespected) {
  sim::TraceRecorder trace(out, false);
  pwm.set_duty(0.5);
  sched.run_until(sim::ms(1000));
  // 100 windows in 1000 ms at 10 ms period (re-armed 1 ns past the
  // boundary to avoid same-instant controller collisions).
  EXPECT_NEAR(static_cast<double>(trace.rising_edges()), 100.0, 2.0);
  EXPECT_GE(trace.min_period(), sim::ms(10));
  EXPECT_LE(trace.min_period(), sim::ms(10) + 10);
}

TEST_F(PwmFixture, DutyClampsOutOfRange) {
  pwm.set_duty(1.7);
  EXPECT_DOUBLE_EQ(pwm.duty(), 1.0);
  pwm.set_duty(-0.3);
  EXPECT_DOUBLE_EQ(pwm.duty(), 0.0);
}

TEST_F(PwmFixture, DutyChangeTakesEffect) {
  sim::DutyMeter meter(out);
  pwm.set_duty(0.8);
  sched.run_until(sim::ms(500));
  (void)meter.sample();  // reset the window
  pwm.set_duty(0.2);
  sched.run_until(sim::ms(1500));
  EXPECT_NEAR(meter.sample(), 0.2, 0.05);
}

TEST_F(PwmFixture, StopDrivesLowImmediately) {
  pwm.set_duty(0.5);
  sched.run_until(sim::ms(105));
  pwm.stop();
  EXPECT_FALSE(out.level());
  const auto edges_at_stop = out.rising_count();
  sched.run_until(sim::ms(300));
  EXPECT_EQ(out.rising_count(), edges_at_stop);  // waveform really stopped
}

TEST_F(PwmFixture, RestartAfterStop) {
  pwm.set_duty(0.5);
  sched.run_until(sim::ms(100));
  pwm.stop();
  sched.run_until(sim::ms(200));
  pwm.set_duty(0.5);
  sim::DutyMeter meter(out);
  sched.run_until(sim::ms(1200));
  EXPECT_NEAR(meter.sample(), 0.5, 0.03);
}

}  // namespace
}  // namespace offramps::fw
