// svc::Checkpoint: binary round trip, the bounded/versioned reader, the
// atomic save protocol, and the campaign digest that fences resumes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "sim/error.hpp"
#include "svc/checkpoint.hpp"
#include "svc/fleet.hpp"

namespace {

using offramps::Error;
using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::svc::campaign_digest;
using offramps::svc::Checkpoint;
using offramps::svc::FleetOptions;
using offramps::svc::ReferenceSnapshot;
using offramps::svc::RigOutcome;
using offramps::svc::RigSpec;
using offramps::svc::RigStatus;

Capture small_capture() {
  Capture cap;
  cap.label = "golden-0";
  cap.print_completed = true;
  for (std::uint32_t i = 0; i < 4; ++i) {
    Transaction t;
    t.index = i;
    t.counts = {static_cast<std::int32_t>(i), 0, 0,
                static_cast<std::int32_t>(2 * i)};
    t.time_ns = i * 100'000'000ull;
    cap.transactions.push_back(t);
  }
  cap.final_counts = {3, 0, 0, 6};
  return cap;
}

Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.spec_digest = 0xDEADBEEFCAFEF00Dull;
  ck.total_rigs = 3;

  ReferenceSnapshot ref;
  ref.golden = small_capture();
  ref.golden_power = {{0.0, 11.5}, {0.1, 12.25}, {0.2, 13.0}};
  ck.references.push_back(std::move(ref));

  RigOutcome out;
  out.spec.name = "rig-1";
  out.spec.seed = 1001;
  out.spec.cube_mm = 6.0;
  out.spec.height_mm = 1.5;
  out.spec.sabotage = offramps::svc::parse_sabotage("reduce:0.5");
  out.spec.chaos = offramps::host::parse_chaos("crash:1");
  out.status = RigStatus::kRecovered;
  out.attempts = 2;
  out.failure_cause = "chaos: injected rig crash";
  out.print_finished = false;
  out.safe_stopped = true;
  out.kill_reason = "fleet safe-stop: golden-compare alarm";
  out.sim_seconds = 12.5;
  out.final_counts = {10, 20, 30, 40};
  out.detector.alarmed = true;
  out.detector.alarmed_mid_print = true;
  out.detector.alarm_window = 17;
  out.detector.alarm_tick_ns = 1'700'000'000ull;
  out.detector.windows_processed = 42;
  out.detector.ring_high_water = 9;
  out.detector.compare_mismatches = 3;
  out.detector.golden_free.violations.resize(2);
  out.detector.power.windows_compared = 12;
  out.detector.power.mismatches.resize(1);
  out.detector.final_counts_match = false;
  out.detector.static_final.trojan_suspected = true;
  ck.done.emplace_back(1, std::move(out));
  return ck;
}

TEST(Checkpoint, BinaryRoundTrip) {
  const Checkpoint ck = sample_checkpoint();
  const Checkpoint back = Checkpoint::from_binary(ck.to_binary());

  EXPECT_EQ(back.spec_digest, ck.spec_digest);
  EXPECT_EQ(back.total_rigs, 3u);
  ASSERT_EQ(back.references.size(), 1u);
  EXPECT_EQ(back.references[0].golden.size(), 4u);
  EXPECT_EQ(back.references[0].golden.label, "golden-0");
  ASSERT_EQ(back.references[0].golden_power.size(), 3u);
  EXPECT_DOUBLE_EQ(back.references[0].golden_power[1].watts, 12.25);

  ASSERT_EQ(back.done.size(), 1u);
  EXPECT_EQ(back.done[0].first, 1u);
  const RigOutcome& out = back.done[0].second;
  EXPECT_EQ(out.spec.name, "rig-1");
  EXPECT_EQ(out.spec.sabotage.to_string(), "reduce:0.50");
  EXPECT_EQ(out.spec.chaos.to_string(), "crash:1");
  EXPECT_EQ(out.status, RigStatus::kRecovered);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.failure_cause, "chaos: injected rig crash");
  EXPECT_TRUE(out.safe_stopped);
  EXPECT_EQ(out.kill_reason, "fleet safe-stop: golden-compare alarm");
  EXPECT_DOUBLE_EQ(out.sim_seconds, 12.5);
  EXPECT_EQ(out.final_counts[3], 40);
  EXPECT_TRUE(out.detector.alarmed_mid_print);
  EXPECT_EQ(out.detector.windows_processed, 42u);
  // Nested reports round-trip as counts (all to_json ever renders).
  EXPECT_EQ(out.detector.golden_free.violations.size(), 2u);
  EXPECT_EQ(out.detector.power.windows_compared, 12u);
  EXPECT_EQ(out.detector.power.mismatches.size(), 1u);
  EXPECT_FALSE(out.detector.final_counts_match);
  EXPECT_TRUE(out.detector.static_final.trojan_suspected);
}

TEST(Checkpoint, RejectsBadMagicAndVersion) {
  std::vector<std::uint8_t> bytes = sample_checkpoint().to_binary();
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(Checkpoint::from_binary(bad_magic), Error);

  std::vector<std::uint8_t> bad_version = bytes;
  bad_version[4] = 0xFE;  // version u16 LE low byte
  bad_version[5] = 0xFF;
  try {
    Checkpoint::from_binary(bad_version);
    FAIL() << "unknown version must be rejected";
  } catch (const Error& e) {
    // The error names both the file's version and the supported one, so
    // a mixed-version farm can diagnose itself.
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos);
    EXPECT_NE(what.find(std::to_string(Checkpoint::kVersion)),
              std::string::npos);
  }
}

TEST(Checkpoint, RejectsTruncationAtEveryByte) {
  const std::vector<std::uint8_t> bytes = sample_checkpoint().to_binary();
  // A checkpoint cut anywhere - including mid-record - must raise a
  // parse error, never decode garbage or crash.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    const std::vector<std::uint8_t> part(bytes.begin(),
                                         bytes.begin() + cut);
    EXPECT_THROW(Checkpoint::from_binary(part), Error) << "cut at " << cut;
  }
  EXPECT_NO_THROW(Checkpoint::from_binary(bytes));
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = sample_checkpoint().to_binary();
  bytes.push_back(0x00);
  EXPECT_THROW(Checkpoint::from_binary(bytes), Error);
}

TEST(Checkpoint, RejectsLyingCounts) {
  Checkpoint ck = sample_checkpoint();
  ck.total_rigs = 0;  // fewer rigs than completed records
  EXPECT_THROW(Checkpoint::from_binary(ck.to_binary()), Error);
}

TEST(Checkpoint, AtomicSaveAndLoad) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/ck-atomic-test.bin";
  const Checkpoint ck = sample_checkpoint();
  ck.save(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "temp file must be renamed away";
  const Checkpoint back = Checkpoint::load(path);
  EXPECT_EQ(back.spec_digest, ck.spec_digest);
  ASSERT_EQ(back.done.size(), 1u);
  EXPECT_EQ(back.done[0].second.spec.name, "rig-1");
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadRejectsMissingFile) {
  EXPECT_THROW(Checkpoint::load("/nonexistent/nowhere/ck.bin"), Error);
}

TEST(CampaignDigest, SensitiveToSpecsAndOptions) {
  std::vector<RigSpec> specs(2);
  specs[0].name = "a";
  specs[1].name = "b";
  FleetOptions options;
  const std::uint64_t base = campaign_digest(specs, options);

  // Pure function.
  EXPECT_EQ(campaign_digest(specs, options), base);

  // Any behavior-relevant change moves the digest.
  std::vector<RigSpec> edited = specs;
  edited[1].seed += 1;
  EXPECT_NE(campaign_digest(edited, options), base);

  edited = specs;
  edited[0].sabotage = offramps::svc::parse_sabotage("reduce:0.5");
  EXPECT_NE(campaign_digest(edited, options), base);

  edited = specs;
  edited[0].chaos = offramps::host::parse_chaos("crash:1");
  EXPECT_NE(campaign_digest(edited, options), base);

  FleetOptions opt2 = options;
  opt2.channels.power = !opt2.channels.power;
  EXPECT_NE(campaign_digest(specs, opt2), base);

  // Every side-channel flag is behavior-relevant on its own.
  FleetOptions opt2a = options;
  opt2a.channels.acoustic = !opt2a.channels.acoustic;
  EXPECT_NE(campaign_digest(specs, opt2a), base);
  FleetOptions opt2v = options;
  opt2v.channels.vibration = !opt2v.channels.vibration;
  EXPECT_NE(campaign_digest(specs, opt2v), base);

  FleetOptions opt3 = options;
  opt3.supervisor.max_attempts += 1;
  EXPECT_NE(campaign_digest(specs, opt3), base);

  // Worker count and checkpoint paths are result-neutral: excluded.
  FleetOptions opt4 = options;
  opt4.workers = 8;
  opt4.checkpoint_path = "/tmp/somewhere.bin";
  opt4.stop_after = 1;
  EXPECT_EQ(campaign_digest(specs, opt4), base);
}

}  // namespace
