// Static lint acceptance tests (the tentpole's core claim):
//
//  * every shipped motion-perturbing Flaw3D Trojan variant (Table II's
//    four reduction factors and four relocation periods) is flagged
//    statically - zero misses;
//  * a corpus of 20 clean sliced prints lints completely quiet.
#include <gtest/gtest.h>

#include <vector>

#include "analyze/analyzer.hpp"
#include "gcode/flaw3d.hpp"
#include "gcode/parser.hpp"
#include "host/slicer.hpp"

namespace offramps::analyze {
namespace {

using host::CubeSpec;
using host::CylinderSpec;
using host::SliceProfile;
using host::SquareSpec;

gcode::Program test_object() {
  return host::slice_cube(
      CubeSpec{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2},
      SliceProfile{});
}

/// Lints `suspect` against the clean `baseline`, as the CLI's
/// --baseline mode does.
AnalysisResult lint_with_baseline(const gcode::Program& baseline,
                                  const gcode::Program& suspect) {
  const AnalysisResult base = analyze_program(baseline);
  AnalysisResult res = analyze_program(suspect);
  compare_with_baseline(base, res, {});
  return res;
}

// --- Table II, cases 1-4: reduction ---------------------------------------

class ReductionLint : public ::testing::TestWithParam<double> {};

TEST_P(ReductionLint, IsFlaggedStatically) {
  const gcode::Program clean = test_object();
  const auto mutated =
      gcode::flaw3d::apply_reduction(clean, {.factor = GetParam()});
  const AnalysisResult res = lint_with_baseline(clean, mutated);
  EXPECT_FALSE(res.clean());
  // The extrusion deficit shows up in both the totals and the exact
  // per-axis count comparison.
  EXPECT_TRUE(res.has(FindingCode::kExtrusionTotalMismatch))
      << res.to_string();
  EXPECT_TRUE(res.has(FindingCode::kStepCountMismatch)) << res.to_string();
}

INSTANTIATE_TEST_SUITE_P(TableII, ReductionLint,
                         ::testing::Values(0.5, 0.85, 0.9, 0.98));

// --- Table II, cases 5-8: relocation --------------------------------------

class RelocationLint : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RelocationLint, IsFlaggedStatically) {
  const gcode::Program clean = test_object();
  const auto mutated = gcode::flaw3d::apply_relocation(
      clean, {.every_n_moves = GetParam(), .take_fraction = 0.15});
  const AnalysisResult res = lint_with_baseline(clean, mutated);
  EXPECT_FALSE(res.clean());
  // Inserted blob commands change the segment count...
  EXPECT_TRUE(res.has(FindingCode::kMoveCountMismatch)) << res.to_string();
  // ...and the withheld-then-dumped filament diverges the segments.
  EXPECT_TRUE(res.has(FindingCode::kSegmentMismatch)) << res.to_string();
}

TEST_P(RelocationLint, BlobsAreFlaggedWithoutAnyBaseline) {
  // The relocation signature (stationary extrusion beyond the retraction
  // debt) needs no reference program at all.
  const auto mutated = gcode::flaw3d::apply_relocation(
      test_object(), {.every_n_moves = GetParam(), .take_fraction = 0.15});
  const AnalysisResult res = analyze_program(mutated);
  EXPECT_TRUE(res.has(FindingCode::kInplaceExtrusion)) << res.to_string();
  EXPECT_FALSE(res.clean());
}

INSTANTIATE_TEST_SUITE_P(TableII, RelocationLint,
                         ::testing::Values(5u, 10u, 20u, 100u));

// --- Clean corpus ----------------------------------------------------------

TEST(CleanCorpus, TwentyCleanPrintsLintQuiet) {
  std::vector<gcode::Program> corpus;
  // 8 cubes of varying footprint and height...
  for (int i = 0; i < 8; ++i) {
    CubeSpec cube;
    cube.size_x_mm = 6.0 + i;
    cube.size_y_mm = 6.0 + (i % 3);
    cube.height_mm = 1.0 + 0.5 * (i % 4);
    SliceProfile profile;
    if (i % 2 == 1) profile.skirt_loops = 2;
    corpus.push_back(host::slice_cube(cube, profile));
  }
  // ...6 hollow squares...
  for (int i = 0; i < 6; ++i) {
    SquareSpec square;
    square.size_mm = 10.0 + 2 * i;
    square.height_mm = 1.5 + 0.25 * i;
    corpus.push_back(host::slice_square(square, SliceProfile{}));
  }
  // ...and 6 cylinders, half of them arc-move programs.
  for (int i = 0; i < 6; ++i) {
    CylinderSpec cyl;
    cyl.diameter_mm = 12.0 + 2 * i;
    cyl.height_mm = 1.5;
    corpus.push_back(i % 2 == 0
                         ? host::slice_cylinder(cyl, SliceProfile{})
                         : host::slice_cylinder_arcs(cyl, SliceProfile{}));
  }
  ASSERT_EQ(corpus.size(), 20u);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const AnalysisResult res = analyze_program(corpus[i]);
    EXPECT_TRUE(res.clean()) << "corpus print " << i << ":\n"
                             << res.to_string();
    EXPECT_TRUE(res.oracle.counters_armed);
  }
}

TEST(CleanCorpus, CleanPrintDiffsQuietAgainstItself) {
  const gcode::Program program = test_object();
  const AnalysisResult res = lint_with_baseline(program, program);
  EXPECT_TRUE(res.clean()) << res.to_string();
  EXPECT_EQ(res.count(FindingCode::kSegmentMismatch), 0u);
}

// --- Envelope and signature checks -----------------------------------------

TEST(LintFindings, ColdExtrusionIsAnError) {
  const auto program = gcode::parse_program(
      "G28\nG92 E0\nG1 X10 E1 F600\n");  // heaters never turned on
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kColdExtrusion)) << res.to_string();
  EXPECT_FALSE(res.clean());
}

TEST(LintFindings, TempOverrideBeforeUseIsFlagged) {
  const auto program = gcode::parse_program(
      "M104 S210\nM104 S275\nG28\nM109 S275\nG92 E0\nG1 X10 E1 F600\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kTempOverride)) << res.to_string();
}

TEST(LintFindings, MatchingWaitAfterSetIsQuiet) {
  // The slicer's normal M104 S210 -> M109 S210 pair must not trip the
  // override check.
  const auto program = gcode::parse_program(
      "M104 S210\nM109 S210\nG28\nG92 E0\nG1 X10 E1 F600\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_FALSE(res.has(FindingCode::kTempOverride)) << res.to_string();
  EXPECT_TRUE(res.clean()) << res.to_string();
}

TEST(LintFindings, OvertempSetpointIsAnError) {
  const auto program = gcode::parse_program("M104 S280\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kThermalOvertemp));
  EXPECT_FALSE(res.clean());
}

TEST(LintFindings, AxisLimitViolationIsAnError) {
  const auto program = gcode::parse_program(
      "G28\nM109 S210\nG1 X400 F3000\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kAxisLimit)) << res.to_string();
  EXPECT_FALSE(res.clean());
}

TEST(LintFindings, FeedrateAboveMaximumIsFlagged) {
  const auto program = gcode::parse_program(
      "G28\nG1 Z50 F9999\n");  // Z maximum is 12 mm/s = F720
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kFeedrateLimit)) << res.to_string();
}

TEST(LintFindings, UnknownCommandIsAWarning) {
  const auto program = gcode::parse_program("G28\nM999 S1\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kUnknownCommand));
  EXPECT_FALSE(res.clean());
}

TEST(LintFindings, UnreachableAfterEmergencyStopIsNoted) {
  const auto program = gcode::parse_program("G28\nM112\nG1 X10 F3000\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kUnreachableCommands));
}

TEST(LintFindings, JsonReportIsWellFormedEnough) {
  const auto mutated = gcode::flaw3d::apply_relocation(
      test_object(), {.every_n_moves = 20, .take_fraction = 0.15});
  const AnalysisResult res = analyze_program(mutated);
  const std::string json = res.to_json();
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"inplace-extrusion\""), std::string::npos);
  EXPECT_NE(json.find("\"expected_counts\""), std::string::npos);
}

}  // namespace
}  // namespace offramps::analyze
