// Unit tests for the thermal manager: PID heating against the plant model,
// bang-bang bed control, and every protection path (max/min temp, heating
// failed, thermal runaway).
#include <gtest/gtest.h>

#include <optional>

#include "fw/thermal.hpp"
#include "plant/thermal.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"
#include "sim/thermistor.hpp"

namespace offramps::fw {
namespace {

/// Thermal manager wired to real heater plants through one pin bank.
struct ThermalFixture : ::testing::Test {
  sim::Scheduler sched;
  Config config;
  sim::PinBank bank{sched, "t."};
  std::optional<plant::HeaterPlant> hotend_plant;
  std::optional<plant::HeaterPlant> bed_plant;
  std::optional<ThermalManager> tm;
  bool killed = false;
  ThermalFault kill_fault = ThermalFault::kNone;

  void build(plant::HeaterParams hotend_params = plant::hotend_params(),
             plant::HeaterParams bed_params = plant::bed_params()) {
    hotend_plant.emplace(sched, bank.wire(sim::Pin::kHotendHeat),
                         bank.analog(sim::APin::kThermHotend),
                         hotend_params);
    bed_plant.emplace(sched, bank.wire(sim::Pin::kBedHeat),
                      bank.analog(sim::APin::kThermBed), bed_params);
    tm.emplace(sched, config, bank.analog(sim::APin::kThermHotend),
               bank.analog(sim::APin::kThermBed),
               bank.wire(sim::Pin::kHotendHeat),
               bank.wire(sim::Pin::kBedHeat),
               [this](Heater, ThermalFault f) {
                 killed = true;
                 kill_fault = f;
               });
    tm->start();
  }
};

TEST_F(ThermalFixture, ReadsAmbientAtStart) {
  build();
  sched.run_until(sim::seconds(1));
  EXPECT_NEAR(tm->current(Heater::kHotend), 25.0, 2.0);
  EXPECT_NEAR(tm->current(Heater::kBed), 25.0, 2.0);
}

TEST_F(ThermalFixture, PidReachesAndHoldsHotendTarget) {
  build();
  tm->set_target(Heater::kHotend, 210.0);
  sched.run_until(sim::seconds(120));
  EXPECT_TRUE(tm->at_target(Heater::kHotend));
  // Hold for two more minutes: stays in band, no fault.
  double min_seen = 1000.0, max_seen = 0.0;
  for (int i = 0; i < 120; ++i) {
    sched.run_until(sched.now() + sim::seconds(1));
    min_seen = std::min(min_seen, tm->current(Heater::kHotend));
    max_seen = std::max(max_seen, tm->current(Heater::kHotend));
  }
  EXPECT_GT(min_seen, 205.0);
  EXPECT_LT(max_seen, 218.0);
  EXPECT_FALSE(killed);
}

TEST_F(ThermalFixture, BangBangControlsBed) {
  build();
  tm->set_target(Heater::kBed, 60.0);
  sched.run_until(sim::seconds(400));
  EXPECT_TRUE(tm->at_target(Heater::kBed));
  EXPECT_FALSE(killed);
}

TEST_F(ThermalFixture, TargetZeroTurnsHeaterOff) {
  build();
  tm->set_target(Heater::kHotend, 210.0);
  sched.run_until(sim::seconds(120));
  tm->set_target(Heater::kHotend, 0.0);
  sched.run_until(sim::seconds(121));
  EXPECT_FALSE(bank.wire(sim::Pin::kHotendHeat).level());
  sched.run_until(sim::seconds(400));
  EXPECT_LT(tm->current(Heater::kHotend), 100.0);  // cooling down
  EXPECT_FALSE(killed);
}

TEST_F(ThermalFixture, DeadHeaterTriggersHeatingFailed) {
  // Heater cartridge unplugged: zero watts delivered.
  auto params = plant::hotend_params();
  params.power_w = 0.0;
  build(params);
  tm->set_target(Heater::kHotend, 210.0);
  sched.run_until(sim::seconds(120));
  EXPECT_TRUE(killed);
  EXPECT_EQ(kill_fault, ThermalFault::kHeatingFailed);
  EXPECT_FALSE(bank.wire(sim::Pin::kHotendHeat).level());
}

/// Fixture with NO plant: the test scripts the ADC reading directly, so
/// protection paths can be driven through arbitrary temperature profiles.
struct ManualAdcFixture : ::testing::Test {
  sim::Scheduler sched;
  Config config;
  sim::PinBank bank{sched, "t."};
  std::optional<ThermalManager> tm;
  sim::Thermistor therm;
  bool killed = false;
  ThermalFault kill_fault = ThermalFault::kNone;

  void SetUp() override {
    set_temp(25.0);
    bank.analog(sim::APin::kThermBed).set(therm.adc_counts(25.0));
    tm.emplace(sched, config, bank.analog(sim::APin::kThermHotend),
               bank.analog(sim::APin::kThermBed),
               bank.wire(sim::Pin::kHotendHeat),
               bank.wire(sim::Pin::kBedHeat),
               [this](Heater, ThermalFault f) {
                 killed = true;
                 kill_fault = f;
               });
    tm->start();
  }

  void set_temp(double c) {
    bank.analog(sim::APin::kThermHotend).set(therm.adc_counts(c));
  }

  /// Schedules `temp(t)` samples once per second for `seconds` seconds.
  template <typename Fn>
  void drive_profile(double seconds, Fn temp) {
    for (int i = 0; i <= static_cast<int>(seconds); ++i) {
      const double c = temp(static_cast<double>(i));
      sched.schedule_at(sched.now() + sim::seconds(
                            static_cast<std::uint64_t>(i)),
                        [this, c] { set_temp(c); });
    }
  }
};

TEST_F(ManualAdcFixture, PowerLossAfterStableTriggersRunaway) {
  tm->set_target(Heater::kHotend, 210.0);
  // Healthy heat-up reaching the target, then a fall-away: a downstream
  // Trojan (T6) or wiring fault has cut heater power.
  drive_profile(200.0, [](double t) {
    if (t < 60.0) return 25.0 + t * 3.2;        // heat to ~217
    if (t < 90.0) return 210.0;                  // stable at target
    return std::max(25.0, 210.0 - (t - 90.0) * 1.5);  // falling away
  });
  sched.run_until(sim::seconds(200));
  EXPECT_TRUE(killed);
  EXPECT_EQ(kill_fault, ThermalFault::kThermalRunaway);
}

TEST_F(ManualAdcFixture, OverTemperatureTriggersMaxTemp) {
  tm->set_target(Heater::kHotend, 210.0);
  // An externally forced heater (Trojan T7): readings race past spec.
  drive_profile(20.0, [](double t) { return 25.0 + t * 20.0; });
  sched.run_until(sim::seconds(20));
  EXPECT_TRUE(killed);
  EXPECT_EQ(kill_fault, ThermalFault::kMaxTemp);
}

TEST_F(ManualAdcFixture, OpenSensorTriggersMinTemp) {
  // Thermistor unplugged: ADC pinned at the rail reads far below zero.
  sched.schedule_at(sim::seconds(2), [this] {
    bank.analog(sim::APin::kThermHotend).set(1023.0);
  });
  sched.run_until(sim::seconds(5));
  EXPECT_TRUE(killed);
  EXPECT_EQ(kill_fault, ThermalFault::kMinTemp);
}

TEST_F(ManualAdcFixture, SlowHeatingTripsHeatingFailedWatch) {
  tm->set_target(Heater::kHotend, 210.0);
  // Gains less than watch_increase (2 C) per watch_period (20 s).
  drive_profile(120.0, [](double t) { return 25.0 + t * 0.05; });
  sched.run_until(sim::seconds(120));
  EXPECT_TRUE(killed);
  EXPECT_EQ(kill_fault, ThermalFault::kHeatingFailed);
}

TEST_F(ManualAdcFixture, BriefDipWithinHysteresisIsTolerated) {
  tm->set_target(Heater::kHotend, 210.0);
  drive_profile(200.0, [](double t) {
    if (t < 60.0) return 25.0 + t * 3.2;
    if (t >= 100.0 && t < 110.0) return 207.5;  // dip within hysteresis
    return 210.0;
  });
  sched.run_until(sim::seconds(200));
  EXPECT_FALSE(killed);
}

TEST_F(ThermalFixture, ShutdownStopsBothHeaters) {
  build();
  tm->set_target(Heater::kHotend, 210.0);
  tm->set_target(Heater::kBed, 60.0);
  sched.run_until(sim::seconds(10));
  tm->shutdown();
  EXPECT_FALSE(bank.wire(sim::Pin::kHotendHeat).level());
  EXPECT_FALSE(bank.wire(sim::Pin::kBedHeat).level());
  EXPECT_DOUBLE_EQ(tm->target(Heater::kHotend), 0.0);
}

TEST(ThermalFaultNames, AreMarlinLike) {
  EXPECT_STREQ(thermal_fault_name(ThermalFault::kThermalRunaway),
               "Thermal Runaway");
  EXPECT_STREQ(thermal_fault_name(ThermalFault::kHeatingFailed),
               "Heating failed");
  EXPECT_STREQ(thermal_fault_name(ThermalFault::kNone), "none");
}

}  // namespace
}  // namespace offramps::fw
