// svc::replay_corpus + the reference cache inside a real campaign: a
// live fleet recorded with --captures semantics must replay to a
// byte-identical report at any worker count and without the simulator;
// a warm cache must reproduce the cold run's report byte for byte; and
// the session-layer chaos drills must land on the supervisor's ladder.
//
// This is the integration tier above test_svc_session (synthetic
// streams) and test_svc_ref_cache (codec units): everything here runs
// through Fleet::run once and exercises the recorded artifacts.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/session_wire.hpp"
#include "host/chaos.hpp"
#include "sim/error.hpp"
#include "svc/daemon.hpp"
#include "svc/fleet.hpp"
#include "svc/ref_cache.hpp"

namespace {

using offramps::Error;
using offramps::host::parse_chaos;
using offramps::svc::Fleet;
using offramps::svc::FleetOptions;
using offramps::svc::FleetReport;
using offramps::svc::parse_sabotage;
using offramps::svc::ReplayOptions;
using offramps::svc::RigSpec;
using offramps::svc::RigStatus;
using offramps::svc::ServiceOptions;

std::filesystem::path fresh_dir(const std::string& name) {
  // ctest runs each TEST of this binary as its own process, in
  // parallel; suffix the pid so two shards never tear down each other's
  // recording mid-replay.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (name + "." + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Three small rigs sharing one object, one of them sabotaged - enough
/// to cover both verdicts in replay while keeping the one live
/// simulation this suite pays for quick.
std::vector<RigSpec> recorded_fleet() {
  std::vector<RigSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "rp-" + std::to_string(i);
    specs[i].seed = 700 + i;
    specs[i].cube_mm = 6.0;
    specs[i].height_mm = 1.5;
  }
  specs[1].sabotage = parse_sabotage("reduce:0.5");
  return specs;
}

FleetOptions recorded_options() {
  FleetOptions options;
  options.workers = 2;
  return options;
}

ServiceOptions service_options(const std::string& cache_dir = "") {
  const FleetOptions fleet = recorded_options();
  ServiceOptions service;
  service.workers = 1;
  service.detector = fleet.detector;
  service.pump = fleet.pump;
  service.use_oracle = fleet.use_oracle;
  service.channels = fleet.channels;
  service.reference_seed = fleet.reference_seed;
  service.profile = fleet.profile;
  service.cache_dir = cache_dir;
  return service;
}

/// The one live simulation: recorded once, shared by every test below.
struct Recording {
  std::string captures_dir;
  std::string cache_dir;
  std::string live_json;
};

const Recording& recording() {
  static const Recording rec = [] {
    Recording r;
    r.captures_dir = fresh_dir("replay_caps").string();
    r.cache_dir = fresh_dir("replay_cache").string();
    FleetOptions options = recorded_options();
    options.save_captures_dir = r.captures_dir;
    options.cache_dir = r.cache_dir;
    Fleet fleet(options);
    r.live_json = fleet.run(recorded_fleet()).to_json();
    return r;
  }();
  return rec;
}

TEST(RefCacheCampaign, ColdRunPopulatesOneEntryPerObject) {
  const Recording& rec = recording();
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(rec.cache_dir)) {
    entries += e.path().extension() == ".ref" ? 1 : 0;
  }
  // All three rigs print the same object: one digest, one entry.
  EXPECT_EQ(entries, 1u);
}

TEST(RefCacheCampaign, WarmRunIsByteIdentical) {
  const Recording& rec = recording();
  FleetOptions options = recorded_options();
  options.cache_dir = rec.cache_dir;
  Fleet fleet(options);
  EXPECT_EQ(fleet.run(recorded_fleet()).to_json(), rec.live_json)
      << "a cache hit must not change a byte of the report";
}

TEST(RefCacheCampaign, TornEntryHealsByRecompute) {
  const Recording& rec = recording();
  // Tear the entry (cachetear drill), run warm: the campaign must
  // recompute, reproduce the report, and rewrite the entry.
  offramps::svc::RefCache probe({.dir = rec.cache_dir, .max_bytes = 0});
  const std::uint64_t key = offramps::svc::reference_digest(
      6.0, 1.5, recorded_options().profile, recorded_options().reference_seed,
      recorded_options().channels);
  const std::string path = probe.path_for(key);
  ASSERT_TRUE(std::filesystem::exists(path));
  offramps::host::ChaosInjector::tear_cache_entry(path);

  FleetOptions options = recorded_options();
  options.cache_dir = rec.cache_dir;
  Fleet fleet(options);
  EXPECT_EQ(fleet.run(recorded_fleet()).to_json(), rec.live_json);
  EXPECT_TRUE(std::filesystem::exists(path)) << "recompute must re-cache";
}

TEST(Replay, ReproducesLiveReportByteForByte) {
  const Recording& rec = recording();
  ReplayOptions options;
  options.service = service_options(rec.cache_dir);
  const FleetReport report = replay_corpus(rec.captures_dir, options);
  EXPECT_EQ(report.to_json(), rec.live_json)
      << "replay must reproduce every verdict without simulating";
  EXPECT_EQ(report.alarmed(), 1u);
  EXPECT_EQ(report.count(RigStatus::kOk), 3u);
}

TEST(Replay, ByteIdenticalAcrossWorkerCounts) {
  const Recording& rec = recording();
  ReplayOptions options;
  options.service = service_options(rec.cache_dir);
  options.service.workers = 8;
  EXPECT_EQ(replay_corpus(rec.captures_dir, options).to_json(), rec.live_json);
}

TEST(Replay, WorksWithoutCacheBySimulatingReference) {
  const Recording& rec = recording();
  ReplayOptions options;
  options.service = service_options();  // no cache: simulate the golden
  EXPECT_EQ(replay_corpus(rec.captures_dir, options).to_json(), rec.live_json);
}

TEST(Replay, ChaosDrillsLandOnTheLadder) {
  const Recording& rec = recording();
  ReplayOptions options;
  options.service = service_options(rec.cache_dir);
  // Corpus files sort by name: rp-0, rp-1, rp-2.  Drop a transaction
  // from rp-0's stream and cut rp-2's short.
  auto corrupt = parse_chaos("framecorrupt");
  corrupt.after = 3;
  options.chaos.emplace_back(0, corrupt);
  options.chaos.emplace_back(2, parse_chaos("disconnect"));

  const FleetReport report = replay_corpus(rec.captures_dir, options);
  ASSERT_EQ(report.rigs.size(), 3u);
  EXPECT_EQ(report.rigs[0].status, RigStatus::kRecovered);
  EXPECT_NE(report.rigs[0].failure_cause.find("corrupt transaction"),
            std::string::npos)
      << report.rigs[0].failure_cause;
  EXPECT_EQ(report.rigs[1].status, RigStatus::kOk);
  EXPECT_TRUE(report.rigs[1].detector.alarmed) << "sabotage verdict survives";
  EXPECT_EQ(report.rigs[2].status, RigStatus::kLost);
  EXPECT_EQ(report.campaign(), "lost");
}

TEST(Replay, EmptyOrMissingCorpusThrows) {
  ReplayOptions options;
  options.service = service_options();
  const auto empty = fresh_dir("replay_empty");
  EXPECT_THROW(replay_corpus(empty.string(), options), Error);
  EXPECT_THROW(replay_corpus((empty / "nope").string(), options), Error);
}

}  // namespace
