// host::ParallelRunner: scheduling correctness, exception propagation,
// and the determinism contract -- a batch of independent Rig simulations
// must produce byte-identical results for any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "host/fault_campaign.hpp"
#include "host/parallel_runner.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps {
namespace {

gcode::Program small_cube() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8.0,
                      .size_y_mm = 8.0,
                      .height_mm = 2.0,
                      .center_x_mm = 110.0,
                      .center_y_mm = 100.0};
  return host::slice_cube(cube, profile);
}

/// FNV-1a over a run's capture: equal digests == equal simulations.
std::uint64_t capture_digest(const host::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (const auto& txn : r.capture.transactions) {
    mix(txn.time_ns);
    for (const auto c : txn.counts) mix(static_cast<std::uint64_t>(c));
  }
  for (const auto c : r.capture.final_counts) {
    mix(static_cast<std::uint64_t>(c));
  }
  for (const auto s : r.motor_steps) mix(static_cast<std::uint64_t>(s));
  mix(r.events_executed);
  return h;
}

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    host::ParallelRunner pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    constexpr std::size_t kJobs = 100;
    std::vector<std::atomic<int>> hits(kJobs);
    pool.run(kJobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kJobs; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " @" << workers;
    }
  }
}

TEST(ParallelRunner, MapPreservesIndexOrder) {
  host::ParallelRunner pool(4);
  const std::vector<std::size_t> out =
      pool.map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelRunner, EmptyBatchIsANoop) {
  host::ParallelRunner pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no jobs should run"; });
  EXPECT_TRUE(pool.map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(ParallelRunner, MoreWorkersThanJobs) {
  host::ParallelRunner pool(8);
  const std::vector<int> out =
      pool.map<int>(3, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  host::ParallelRunner pool(3);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<int> sum{0};
    pool.run(10, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 45) << "batch " << batch;
  }
}

TEST(ParallelRunner, BackToBackTinyBatchesNeverLoseTheWakeup) {
  // Regression: run() used to publish the batch counter before enqueuing
  // jobs, so a worker re-parking between batches could consume its wait
  // predicate against empty queues and sleep through the only notify.
  // Tiny batches issued back-to-back maximize that re-park window; a
  // regression shows up as this test hanging.
  host::ParallelRunner pool(4);
  std::atomic<long> total{0};
  long expected = 0;
  for (int batch = 0; batch < 2'000; ++batch) {
    const std::size_t jobs = 1 + batch % 3;
    expected += static_cast<long>(jobs);
    pool.run(jobs, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ParallelRunner, ExceptionPropagatesAndBatchDrains) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    host::ParallelRunner pool(workers);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.run(20,
                 [&](std::size_t i) {
                   ++ran;
                   if (i == 7) throw std::runtime_error("job 7 failed");
                 }),
        std::runtime_error);
    // Every job still executed; the failure did not abandon the batch.
    EXPECT_EQ(ran.load(), 20) << workers << " workers";
    // The pool survives the failed batch.
    std::atomic<int> sum{0};
    pool.run(4, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 6);
  }
}

TEST(ParallelRunner, DefaultWorkersHonorsEnvironment) {
  // Malformed values must fall back to the documented default (cores),
  // not silently degrade to one worker; test_strict_parse covers the
  // full edge-case matrix.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;
  ::setenv("OFFRAMPS_JOBS", "5", 1);
  EXPECT_EQ(host::ParallelRunner::default_workers(), 5u);
  ::setenv("OFFRAMPS_JOBS", "0", 1);
  EXPECT_EQ(host::ParallelRunner::default_workers(), cores);
  ::setenv("OFFRAMPS_JOBS", "garbage", 1);
  EXPECT_EQ(host::ParallelRunner::default_workers(), cores);
  ::unsetenv("OFFRAMPS_JOBS");
  EXPECT_GE(host::ParallelRunner::default_workers(), 1u);
}

// --- Service lane (post/drain) --------------------------------------------
//
// The daemon's accept loop post()s one job per rig session and drain()s
// at shutdown; these pin the lane's contract independently of sockets.

TEST(ParallelRunnerService, PostedJobsAllRunByDrain) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    host::ParallelRunner pool(workers);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
      pool.post([&ran] { ++ran; });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), 100) << workers << " workers";
  }
}

TEST(ParallelRunnerService, DrainWithoutPostsIsANoop) {
  host::ParallelRunner pool(2);
  pool.drain();
  pool.drain();
}

TEST(ParallelRunnerService, DrainRethrowsAfterEveryJobFinished) {
  host::ParallelRunner pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.post([&ran, i] {
      ++ran;
      if (i == 7) throw std::runtime_error("session 7 failed");
    });
  }
  EXPECT_THROW(pool.drain(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20) << "a failed session must not abandon the rest";
  // The lane survives the failure.
  std::atomic<int> again{0};
  pool.post([&again] { ++again; });
  pool.drain();
  EXPECT_EQ(again.load(), 1);
}

TEST(ParallelRunnerService, PostInterleavesWithRunBatches) {
  // Sessions keep arriving while batch work flows through the same pool;
  // both lanes must complete without losing a job.
  host::ParallelRunner pool(3);
  std::atomic<int> sessions{0};
  std::atomic<int> batch{0};
  for (int round = 0; round < 10; ++round) {
    pool.post([&sessions] { ++sessions; });
    pool.run(5, [&batch](std::size_t) { ++batch; });
    pool.post([&sessions] { ++sessions; });
  }
  pool.drain();
  EXPECT_EQ(sessions.load(), 20);
  EXPECT_EQ(batch.load(), 50);
}

TEST(ParallelRunnerService, PostFromWorkerThreadCompletes) {
  // A session job may itself enqueue follow-up work (the daemon's
  // accept loop posts from the poll thread while workers are busy).
  host::ParallelRunner pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.post([&pool, &ran] {
      pool.post([&ran] { ++ran; });
      ++ran;
    });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 16);
}

// --- Determinism suite ----------------------------------------------------
//
// The contract the whole PR rests on: distributing independent sims over
// workers must not change a single byte of any result.

TEST(ParallelDeterminism, CaptureDigestsMatchSequential) {
  const gcode::Program program = small_cube();
  constexpr std::size_t kSims = 4;

  const auto digests_with = [&](std::size_t workers) {
    host::ParallelRunner pool(workers);
    return pool.map<std::uint64_t>(kSims, [&](std::size_t i) {
      host::RigOptions options;
      options.firmware.jitter_seed = 100 + 7 * i;
      host::Rig rig(options);
      return capture_digest(rig.run(program));
    });
  };

  const std::vector<std::uint64_t> seq = digests_with(1);
  ASSERT_EQ(seq.size(), kSims);
  // Distinct seeds must give distinct sims (the digest is not degenerate).
  EXPECT_GT(std::set<std::uint64_t>(seq.begin(), seq.end()).size(), 1u);
  EXPECT_EQ(digests_with(2), seq);
  EXPECT_EQ(digests_with(8), seq);
}

TEST(ParallelDeterminism, CampaignJsonByteIdenticalAcrossWorkerCounts) {
  const gcode::Program program = small_cube();

  // A slice of the default sweep keeps the test quick while covering
  // three fault families.
  std::vector<sim::FaultSpec> sweep = host::FaultCampaign::default_sweep();
  sweep.resize(6);

  const auto report_with = [&](std::size_t workers) {
    host::FaultCampaign campaign(program, "determinism-cube");
    host::ParallelRunner pool(workers);
    return campaign.run(sweep, pool).to_json();
  };
  const std::string seq = report_with(1);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(report_with(2), seq);
  EXPECT_EQ(report_with(8), seq);
}

TEST(ParallelDeterminism, PooledCampaignMatchesSequentialApi) {
  const gcode::Program program = small_cube();
  std::vector<sim::FaultSpec> sweep = host::FaultCampaign::default_sweep();
  sweep.resize(4);

  host::FaultCampaign sequential(program, "api-cmp");
  const std::string a = sequential.run(sweep).to_json();

  host::FaultCampaign pooled(program, "api-cmp");
  host::ParallelRunner pool(4);
  const std::string b = pooled.run(sweep, pool).to_json();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace offramps
