// Campaign-level robustness tests.
//
// 1. False-positive characterization: the real-time monitor and the
//    in-fabric guard must stay quiet across >= 20 seeded "time-noise"
//    runs (different firmware jitter seeds, benign UART corruption,
//    armed-but-zero-intensity faults) with no Trojan active.
// 2. Sensitivity under the same noise: a T5-style Z layer shift (extra
//    Z steps injected upstream of the FPGA) must still raise the alarm.
// 3. Structural blind spots are pinned down, not papered over: the
//    fabric's own Trojans (the real T5/T9) sabotage downstream of the
//    taps, which step-count monitors cannot see by design.
// 4. The campaign classifier: clean / fail-safe / silent-corruption
//    cells come out as expected, and UART bit-flip cells survive via
//    CRC framing with capture parity against the clean run.
// 5. The fault engine cannot fake an instant home against debounced
//    endstops (bouncy-switch satellite).
#include <gtest/gtest.h>

#include "core/fabric_guard.hpp"
#include "host/fault_campaign.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "sim/fault.hpp"

namespace offramps::host {
namespace {

gcode::Program object() {
  SliceProfile profile;
  CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                .center_x_mm = 110, .center_y_mm = 100};
  return slice_cube(cube, profile);
}

const core::Capture& golden_capture() {
  static const core::Capture cap = [] {
    RigOptions options;
    options.firmware.jitter_seed = 1;
    Rig rig(options);
    return rig.run(object()).capture;
  }();
  return cap;
}

/// The benign noise menu, cycled across runs: pure firmware time noise,
/// low-rate UART bit flips, dropped bytes, duplicated bytes, and armed
/// zero-intensity faults (the hooks engage, the faults never fire).
std::vector<sim::FaultSpec> noise_for(int i) {
  const auto seed = static_cast<std::uint64_t>(0xBE9100 + i);
  switch (i % 4) {
    case 1:
      return {{.kind = sim::FaultKind::kUartBitFlip, .target = "uart",
               .intensity = 0.001, .seed = seed}};
    case 2:
      return {{.kind = sim::FaultKind::kUartDropByte, .target = "uart",
               .intensity = 0.0005, .seed = seed}};
    case 3:
      return {{.kind = sim::FaultKind::kUartDupByte, .target = "uart",
               .intensity = 0.0005, .seed = seed},
              {.kind = sim::FaultKind::kGlitch, .target = "ramps.X_STEP",
               .intensity = 0.0, .seed = seed},
              {.kind = sim::FaultKind::kAnalogDrift,
               .target = "THERM_HOTEND", .intensity = 0.0, .seed = seed}};
    default:
      return {};  // firmware jitter seed alone
  }
}

TEST(FalsePositiveCharacterization, MonitorsStayQuietAcrossTwentyNoiseRuns) {
  const core::Capture& golden = golden_capture();
  const gcode::Program program = object();
  for (int i = 0; i < 20; ++i) {
    RigOptions options;
    options.firmware.jitter_seed = static_cast<std::uint64_t>(100 + i);
    options.faults = noise_for(i);
    Rig rig(options);
    core::FabricGuard guard(rig.board().fpga(), golden);
    const RunResult r =
        rig.run_monitored(program, golden, {}, /*abort_on_alarm=*/false);
    ASSERT_TRUE(r.finished) << "noise run " << i;
    EXPECT_FALSE(r.monitor_alarmed) << "monitor false positive, run " << i;
    EXPECT_FALSE(guard.alarmed()) << "guard false positive, run " << i;
    // Corrupted frames were discarded by CRC, never misread as steps.
    if (i % 4 == 1 || i % 4 == 2) {
      EXPECT_EQ(r.capture.size(), golden.size()) << i;
    }
  }
}

TEST(DetectionUnderNoise, T5StyleZShiftStillAlarms) {
  // Same noise as the quiet runs, plus a T5-style sabotage: a burst of
  // extra Z steps injected on the firmware side of the header (a
  // compromised cable/driver upstream of the FPGA's taps).  The monitors
  // must cut through the noise and alarm on the real attack.
  const core::Capture& golden = golden_capture();
  RigOptions options;
  options.firmware.jitter_seed = 777;
  options.faults = {
      {.kind = sim::FaultKind::kUartBitFlip, .target = "uart",
       .intensity = 0.001, .seed = 0xBE9177},
      {.kind = sim::FaultKind::kGlitch, .target = "arduino.Z_STEP",
       .intensity = 200.0, .start = sim::seconds(68), .seed = 0x75}};
  Rig rig(options);
  core::FabricGuardOptions gopt;
  gopt.safe_stop = false;  // observe the whole print
  core::FabricGuard guard(rig.board().fpga(), golden, gopt);
  const RunResult r =
      rig.run_monitored(object(), golden, {}, /*abort_on_alarm=*/false);
  EXPECT_GT(r.fault_stats.glitches, 100u);  // the attack really ran
  EXPECT_TRUE(r.monitor_alarmed);
  EXPECT_TRUE(guard.alarmed());
}

TEST(DetectionUnderNoise, FabricSideTrojansAreOutsideTheTapsByDesign) {
  // The real T5/T9 are the fabric's *own* Trojans: they inject/re-modulate
  // on the printer side, downstream of the monitoring taps, so the
  // step-count detectors are structurally blind to them (the paper's
  // threat model - OFFRAMPS is the attacker, not the victim).  Pin that
  // down: under the same noise the part is damaged but no alarm fires;
  // a campaign classifies this as silent corruption.
  const core::Capture& golden = golden_capture();
  RigOptions options;
  options.firmware.jitter_seed = 555;
  options.faults = {{.kind = sim::FaultKind::kUartBitFlip, .target = "uart",
                     .intensity = 0.001, .seed = 0xBE9155}};
  options.trojans.t5 =
      core::T5Config{.mode = core::T5Config::Mode::kAtStart,
                     .shift_steps = 400, .delay_after_homing_s = 1.0};
  options.trojans.t9 = core::T9Config{.duty_scale = 0.2};
  Rig rig(options);
  const RunResult r =
      rig.run_monitored(object(), golden, {}, /*abort_on_alarm=*/false);
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.part.first_layer_z_mm, 1.0);  // T5 did real damage
  EXPECT_FALSE(r.monitor_alarmed);          // ...and nobody saw it
}

TEST(CampaignClassifier, CellsClassifyAsExpected) {
  FaultCampaign campaign(object(), "classifier-test");

  // Zero intensity: the built-in control cell must come out clean.
  const CellResult control = campaign.run_cell(
      {.kind = sim::FaultKind::kGlitch, .target = "ramps.X_STEP",
       .intensity = 0.0});
  EXPECT_EQ(control.outcome, CellOutcome::kClean);
  EXPECT_EQ(control.capture_transactions,
            campaign.reference().capture.size());

  // Shorted hotend thermistor: zero ADC counts decode as an impossibly
  // hot sensor (NTC divider), so the firmware's MAXTEMP protection kills
  // the run - detected AND deviating, the definition of fail-safe.
  const CellResult shorted = campaign.run_cell(
      {.kind = sim::FaultKind::kAnalogShort, .target = "THERM_HOTEND",
       .intensity = 1.0, .start = sim::seconds(5)});
  EXPECT_EQ(shorted.outcome, CellOutcome::kFailSafe);
  EXPECT_TRUE(shorted.killed);
  EXPECT_NE(shorted.kill_reason.find("MAXTEMP"), std::string::npos);

  // Heavy UART bit-flips: CRC framing discards the corrupt frames and
  // the capture still matches the clean run transaction for transaction.
  const CellResult flips = campaign.run_cell(
      {.kind = sim::FaultKind::kUartBitFlip, .target = "uart",
       .intensity = 0.01, .seed = 0xF11});
  EXPECT_EQ(flips.outcome, CellOutcome::kClean);
  EXPECT_GT(flips.crc_rejected, 0u);
  EXPECT_EQ(flips.capture_transactions,
            campaign.reference().capture.size());

  // The report serializes every cell with its classification.
  CampaignReport report;
  report.program_label = "classifier-test";
  report.cells = {control, shorted, flips};
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"fail_safe\""), std::string::npos);
  EXPECT_NE(json.find("\"analog_short\""), std::string::npos);
  EXPECT_NE(json.find("MAXTEMP"), std::string::npos);
  EXPECT_EQ(report.count(CellOutcome::kClean), 2u);
  EXPECT_EQ(report.count(CellOutcome::kFailSafe), 1u);
}

TEST(EndstopDebounce, BouncySwitchCannotFakeAnInstantHome) {
  // Glitch the firmware-side X endstop net for the whole run: dozens of
  // fake contact edges arrive while the firmware homes.  Debounce must
  // reject every one of them, so homing still references the *physical*
  // switch and the print is bit-identical to a clean run with the same
  // time-noise seed.
  const gcode::Program program = object();
  RigOptions clean_options;
  clean_options.firmware.jitter_seed = 42;
  Rig clean_rig(clean_options);
  const RunResult clean = clean_rig.run(program);
  ASSERT_TRUE(clean.finished);

  RigOptions options;
  options.firmware.jitter_seed = 42;
  options.faults = {{.kind = sim::FaultKind::kGlitch,
                     .target = "arduino.X_MIN", .intensity = 50.0,
                     .seed = 0xB0CE}};
  Rig rig(options);
  const RunResult r = rig.run(program);
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.fault_stats.glitches, 100u);
  EXPECT_GE(r.endstop_bounces_rejected, 1u);
  EXPECT_EQ(r.motor_steps, clean.motor_steps);
  EXPECT_NEAR(r.part.first_layer_z_mm, clean.part.first_layer_z_mm, 1e-9);
}

}  // namespace
}  // namespace offramps::host
