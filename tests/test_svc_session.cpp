// svc::RigSession: wire bytes in, supervised verdict out.  Pins the
// damage ladder without touching the simulator - a synthetic golden
// capture and a recorded stream that replays it stand in for a live
// rig.  Clean streams land on kOk with the end-frame facts mapped into
// the outcome; CRC-dropped transactions land on kRecovered; disconnects,
// protocol violations, malformed hello specs, bad capture blobs, and
// reference-resolution failures all land on kLost.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "core/session_wire.hpp"
#include "host/chaos.hpp"
#include "sim/error.hpp"
#include "svc/fleet.hpp"
#include "svc/session.hpp"

namespace {

using offramps::Error;
using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::core::wire::SessionHello;
using offramps::core::wire::SessionMeta;
using offramps::core::wire::SessionRecorder;
using offramps::host::ChaosInjector;
using offramps::host::parse_chaos;
using offramps::svc::RigOutcome;
using offramps::svc::RigSession;
using offramps::svc::RigStatus;
using offramps::svc::SessionOptions;
using offramps::svc::SessionRefs;

/// A plausible golden print: monotone counts, steady cadence.
Capture synthetic_golden(std::size_t n = 48) {
  Capture cap;
  cap.label = "session-golden";
  cap.print_completed = true;
  for (std::size_t i = 0; i < n; ++i) {
    Transaction t;
    t.index = static_cast<std::uint32_t>(i);
    t.counts = {static_cast<std::int32_t>(4 * i),
                static_cast<std::int32_t>(3 * i),
                static_cast<std::int32_t>(i / 16),
                static_cast<std::int32_t>(2 * i)};
    t.time_ns = 2'000'000ull * (i + 1);
    cap.transactions.push_back(t);
  }
  const Transaction& last = cap.transactions.back();
  cap.final_counts = {last.counts[0], last.counts[1], last.counts[2],
                      last.counts[3]};
  return cap;
}

SessionHello clean_hello() {
  return {.rig_index = 0,
          .seed = 11,
          .cube_mm = 8.0,
          .height_mm = 3.0,
          .name = "sess-rig",
          .sabotage = "clean",
          .chaos = "none"};
}

/// Records the stream a live rig driving `golden`'s transactions through
/// its detector would have produced.
std::vector<std::uint8_t> clean_stream(const Capture& golden) {
  SessionRecorder rec;
  rec.hello(clean_hello());
  for (const Transaction& t : golden.transactions) {
    rec.txn(t);
    rec.slot();
  }
  rec.finish(golden);
  rec.end({.print_finished = true,
           .safe_stopped = false,
           .sim_seconds = 42.5,
           .final_counts = {golden.final_counts[0], golden.final_counts[1],
                            golden.final_counts[2], golden.final_counts[3]}});
  return rec.bytes();
}

SessionOptions quiet_options() {
  SessionOptions options;
  // The golden-free machine model is tuned for real kinematics; the
  // synthetic trace here only exercises stream plumbing, so keep the
  // verdict pinned to the golden-compare channel.
  options.detector.golden_free = false;
  return options;
}

/// Feeds a whole stream then closes, returning the verdict.
RigOutcome run_session(const std::vector<std::uint8_t>& bytes,
                       const Capture& golden, std::size_t chunk = 0) {
  RigSession session(quiet_options(), [&](const SessionHello&) {
    return SessionRefs{.golden = &golden, .oracle = nullptr,
                       .golden_power = nullptr};
  });
  std::size_t off = 0;
  while (off < bytes.size() && !session.done()) {
    const std::size_t n =
        chunk == 0 ? bytes.size() - off : std::min(chunk, bytes.size() - off);
    const std::size_t used = session.feed(bytes.data() + off, n);
    off += used;
    if (used == 0) break;
  }
  session.close();
  return session.outcome();
}

TEST(RigSession, CleanStreamIsOkWithEndFactsMapped) {
  const Capture golden = synthetic_golden();
  const RigOutcome out = run_session(clean_stream(golden), golden);

  EXPECT_EQ(out.status, RigStatus::kOk);
  EXPECT_TRUE(out.failure_cause.empty()) << out.failure_cause;
  EXPECT_EQ(out.spec.name, "sess-rig");
  EXPECT_EQ(out.spec.seed, 11u);
  EXPECT_FALSE(out.detector.alarmed)
      << "a stream replaying its own golden must not alarm";
  EXPECT_TRUE(out.detector.stream_finished);
  EXPECT_TRUE(out.print_finished);
  EXPECT_FALSE(out.safe_stopped);
  EXPECT_DOUBLE_EQ(out.sim_seconds, 42.5);
  EXPECT_EQ(out.final_counts,
            (std::array<std::int64_t, 4>{
                golden.final_counts[0], golden.final_counts[1],
                golden.final_counts[2], golden.final_counts[3]}));
  EXPECT_EQ(out.attempts, 1u);
}

TEST(RigSession, ChunkedFeedMatchesWholeBuffer) {
  const Capture golden = synthetic_golden();
  const std::vector<std::uint8_t> bytes = clean_stream(golden);
  const RigOutcome whole = run_session(bytes, golden);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}}) {
    const RigOutcome out = run_session(bytes, golden, chunk);
    EXPECT_EQ(out.status, whole.status) << "chunk " << chunk;
    EXPECT_EQ(out.detector.alarmed, whole.detector.alarmed);
    EXPECT_EQ(out.detector.windows_processed, whole.detector.windows_processed)
        << "the verdict must be a pure function of the call sequence";
    EXPECT_EQ(out.detector.ring_high_water, whole.detector.ring_high_water);
  }
}

TEST(RigSession, FrameCorruptChaosRecovers) {
  const Capture golden = synthetic_golden();
  std::vector<std::uint8_t> bytes = clean_stream(golden);
  auto spec = parse_chaos("framecorrupt");
  spec.after = 5;
  ChaosInjector(spec, 0).mangle_session(bytes);

  const RigOutcome out = run_session(bytes, golden);
  EXPECT_EQ(out.status, RigStatus::kRecovered);
  EXPECT_NE(out.failure_cause.find("dropped 1 corrupt transaction"),
            std::string::npos)
      << out.failure_cause;
  EXPECT_TRUE(out.print_finished) << "the session still completed";
}

TEST(RigSession, DisconnectChaosIsLost) {
  const Capture golden = synthetic_golden();
  std::vector<std::uint8_t> bytes = clean_stream(golden);
  ChaosInjector(parse_chaos("disconnect"), 0).mangle_session(bytes);

  const RigOutcome out = run_session(bytes, golden);
  EXPECT_EQ(out.status, RigStatus::kLost);
  EXPECT_NE(out.failure_cause.find("disconnected"), std::string::npos)
      << out.failure_cause;
}

TEST(RigSession, StreamWithoutHelloIsLost) {
  SessionRecorder rec;
  rec.end(SessionMeta{});
  const Capture golden = synthetic_golden();
  const RigOutcome out = run_session(rec.bytes(), golden);
  EXPECT_EQ(out.status, RigStatus::kLost);
  EXPECT_EQ(out.attempts, 0u) << "no hello, no rig to bill an attempt to";
}

TEST(RigSession, MalformedSpecInHelloIsLost) {
  const Capture golden = synthetic_golden();
  SessionRecorder rec;
  SessionHello hello = clean_hello();
  hello.sabotage = "bogus-grammar";
  rec.hello(hello);
  rec.end(SessionMeta{});
  const RigOutcome out = run_session(rec.bytes(), golden);
  EXPECT_EQ(out.status, RigStatus::kLost);
  EXPECT_NE(out.failure_cause.find("malformed spec"), std::string::npos)
      << out.failure_cause;
}

TEST(RigSession, ResolverFailureQuarantinesSession) {
  SessionRecorder rec;
  rec.hello(clean_hello());
  rec.end(SessionMeta{});
  const std::vector<std::uint8_t>& bytes = rec.bytes();

  RigSession session(quiet_options(), [](const SessionHello&) -> SessionRefs {
    throw Error("reference print lost");
  });
  session.feed(bytes.data(), bytes.size());
  session.close();
  const RigOutcome out = session.outcome();
  EXPECT_EQ(out.status, RigStatus::kLost);
  EXPECT_NE(out.failure_cause.find("reference print lost"), std::string::npos)
      << out.failure_cause;
}

TEST(RigSession, NullGoldenReferenceIsLost) {
  SessionRecorder rec;
  rec.hello(clean_hello());
  rec.end(SessionMeta{});
  const std::vector<std::uint8_t>& bytes = rec.bytes();

  RigSession session(quiet_options(),
                     [](const SessionHello&) { return SessionRefs{}; });
  session.feed(bytes.data(), bytes.size());
  session.close();
  EXPECT_EQ(session.outcome().status, RigStatus::kLost);
}

TEST(RigSession, CorruptCaptureBlobIsProtocolFailure) {
  const Capture golden = synthetic_golden();
  SessionRecorder rec;
  rec.hello(clean_hello());
  for (const Transaction& t : golden.transactions) rec.txn(t);
  // Hand-craft a kFinish frame whose payload is not a valid capture: the
  // outer framing is intact, so this is the peer lying, not wire damage.
  std::vector<std::uint8_t> bytes = rec.bytes();
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  bytes.push_back(0xA7);
  bytes.push_back(0xF5);
  bytes.push_back(5);  // FrameType::kFinish
  bytes.push_back(static_cast<std::uint8_t>(garbage.size()));
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.insert(bytes.end(), garbage.begin(), garbage.end());
  offramps::core::wire::append_end(bytes, SessionMeta{});

  const RigOutcome out = run_session(bytes, golden);
  EXPECT_EQ(out.status, RigStatus::kLost);
}

TEST(RigSession, SabotagedStreamAlarmsButStaysOk) {
  // Stream health and detection verdict are orthogonal: a rig whose
  // counts drift from the golden alarms, yet its *session* is clean.
  const Capture golden = synthetic_golden();
  Capture observed = golden;
  for (std::size_t i = 16; i < observed.transactions.size(); ++i) {
    Transaction& t = observed.transactions[i];
    t.counts[3] = t.counts[3] / 2;  // Flaw3D-style extrusion reduction
  }
  const Transaction& last = observed.transactions.back();
  observed.final_counts = {last.counts[0], last.counts[1], last.counts[2],
                           last.counts[3]};

  SessionRecorder rec;
  rec.hello(clean_hello());
  for (const Transaction& t : observed.transactions) {
    rec.txn(t);
    rec.slot();
  }
  rec.finish(observed);
  rec.end({.print_finished = true,
           .safe_stopped = false,
           .sim_seconds = 42.5,
           .final_counts = {observed.final_counts[0], observed.final_counts[1],
                            observed.final_counts[2],
                            observed.final_counts[3]}});

  const RigOutcome out = run_session(rec.bytes(), golden);
  EXPECT_EQ(out.status, RigStatus::kOk);
  EXPECT_TRUE(out.detector.alarmed)
      << "halved extrusion against the golden must trip the compare channel";
}

TEST(RigSession, ZeroWindowsPerSlotIsRejected) {
  SessionOptions options;
  options.windows_per_slot = 0;
  EXPECT_THROW(RigSession(options, [](const SessionHello&) {
                 return SessionRefs{};
               }),
               Error);
}

}  // namespace
