// Tests for the one-segment junction lookahead: collinear chains cruise
// through segment boundaries; sharp corners still slow to the jerk cap.
#include <gtest/gtest.h>

#include <string>

#include "helpers.hpp"

namespace offramps::fw {
namespace {

using offramps::test::DirectStack;

/// Runs a script and returns the simulated duration in seconds.
double timed(const std::string& script) {
  fw::Config config;
  config.segment_jitter_max = 0;  // deterministic timing comparisons
  DirectStack s(config);
  s.enqueue(script);
  EXPECT_TRUE(s.run());
  return sim::to_seconds(s.sched.now());
}

TEST(Lookahead, CollinearSplitMatchesSingleMove) {
  // The same 100 mm line, whole vs split into ten host segments: with
  // junction lookahead the split version must not pay ten ramp cycles.
  std::string split = "G28 X\n";
  for (int i = 1; i <= 10; ++i) {
    split += "G1 X" + std::to_string(i * 10) + " F6000\n";
  }
  const double whole = timed("G28 X\nG1 X100 F6000\n");
  const double chopped = timed(split);
  EXPECT_NEAR(chopped, whole, whole * 0.06);
}

TEST(Lookahead, ReversalsStillSlowToJunctionSpeed) {
  // Ten 10 mm zigzag reversals cover the same 100 mm of path but must
  // re-ramp at every reversal: slower than the collinear chain once the
  // shared homing time is factored out.
  std::string zigzag = "G28 X\n";
  for (int i = 0; i < 10; ++i) {
    zigzag += (i % 2 == 0) ? "G1 X10 F6000\n" : "G1 X0 F6000\n";
  }
  std::string collinear = "G28 X\n";
  for (int i = 1; i <= 10; ++i) {
    collinear += "G1 X" + std::to_string(i * 10) + " F6000\n";
  }
  const double homing = timed("G28 X\n");
  const double zig_motion = timed(zigzag) - homing;
  const double line_motion = timed(collinear) - homing;
  EXPECT_GT(zig_motion, line_motion * 1.2);
}

TEST(Lookahead, RightAngleCornersAreIntermediate) {
  // An L-shaped staircase sits between collinear (full speed) and
  // reversal (jerk floor) behaviour.
  std::string stairs = "G28\n";
  for (int i = 1; i <= 5; ++i) {
    stairs += "G1 X" + std::to_string(i * 10) + " F6000\n";
    stairs += "G1 Y" + std::to_string(i * 10) + " F6000\n";
  }
  std::string collinear = "G28\n";
  for (int i = 1; i <= 10; ++i) {
    collinear += "G1 X" + std::to_string(i * 10) + " F6000\n";
  }
  // Same total path length (100 mm).
  const double corner_time = timed(stairs);
  const double straight_time = timed(collinear);
  EXPECT_GT(corner_time, straight_time);
}

TEST(Lookahead, ArcChordsCruise) {
  // A G3 circle is executed as ~1 mm chords; with lookahead the whole
  // arc runs near the commanded feedrate.  62.8 mm at 40 mm/s ~= 1.57 s
  // ideal; without lookahead every chord would ramp 8->40->8 mm/s at
  // ~63 ramp cycles (~2x slower).
  const double baseline = timed("G28\nG0 X60 Y50 F6000\n");
  const double with_arc =
      timed("G28\nG0 X60 Y50 F6000\nG3 X60 Y50 I-10 J0 F2400\n");
  const double arc_s = with_arc - baseline;
  EXPECT_GT(arc_s, 1.5);
  EXPECT_LT(arc_s, 2.4);
}

TEST(Lookahead, MotionBreakersResetContinuity) {
  // A dwell between two collinear moves forces a full stop; timing must
  // exceed the continuous version.
  const double continuous = timed("G28 X\nG1 X50 F6000\nG1 X100 F6000\n");
  const double broken =
      timed("G28 X\nG1 X50 F6000\nG4 P0\nG1 X100 F6000\n");
  EXPECT_GT(broken, continuous - 1e-9);
}

TEST(Lookahead, StepCountsAreUnchangedByLookahead) {
  // Lookahead is a timing feature: positions and step totals must be
  // exactly the geometry's.
  fw::Config config;
  config.segment_jitter_max = 0;
  DirectStack s(config);
  s.enqueue("G28\nG1 X40 Y0 F6000\nG1 X40 Y40 F6000\nG1 X0 Y40 F6000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 0.0, 0.15);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 40.0, 0.15);
}

}  // namespace
}  // namespace offramps::fw
