// Unit-level tests for the Trojan control module: arming, triggering,
// activation accounting, dynamic toggling, and controller hygiene.
#include <gtest/gtest.h>

#include "core/board.hpp"
#include "core/trojans.hpp"
#include "sim/error.hpp"
#include "sim/trace.hpp"

namespace offramps::core {
namespace {

struct TrojanFixture : ::testing::Test {
  sim::Scheduler sched;
  Board board{sched, {}, RouteMode::kFpgaMitm};

  /// Drives the homing signature on the RAMPS side so homing-triggered
  /// Trojans arm.
  void home() {
    for (const auto a : {sim::Axis::kX, sim::Axis::kY, sim::Axis::kZ}) {
      auto& stop = board.ramps_side().min_endstop(a);
      for (int hit = 0; hit < 2; ++hit) {
        stop.set(true);
        sched.run_until(sched.now() + sim::ms(1));
        stop.set(false);
        sched.run_until(sched.now() + sim::ms(1));
      }
    }
    sched.run_until(sched.now() + sim::ms(1));
  }

  /// Pulses a firmware-side step line at a given cadence.
  void pulses(sim::Axis axis, int n, sim::Tick spacing = sim::us(100)) {
    for (int i = 0; i < n; ++i) {
      board.arduino_side().step(axis).pulse(sim::us(1));
      sched.run_until(sched.now() + spacing);
    }
  }
};

TEST_F(TrojanFixture, ArmTwiceThrows) {
  TrojanSuiteConfig cfg;
  cfg.t2 = T2Config{};
  board.trojans().arm(cfg);
  EXPECT_THROW(board.trojans().arm(cfg), offramps::Error);
}

TEST_F(TrojanFixture, EmptySuiteArmsNothing) {
  EXPECT_TRUE(board.trojans().trojans().empty());
  EXPECT_EQ(board.trojans().find(TrojanId::kT2), nullptr);
}

TEST_F(TrojanFixture, TrojansStayDormantUntilHoming) {
  TrojanSuiteConfig cfg;
  cfg.t2 = T2Config{.keep_ratio = 0.5};
  board.trojans().arm(cfg);
  Trojan* t2 = board.trojans().find(TrojanId::kT2);
  ASSERT_NE(t2, nullptr);
  EXPECT_FALSE(t2->enabled());

  sim::TraceRecorder out(board.ramps_side().step(sim::Axis::kE), false);
  pulses(sim::Axis::kE, 20);
  EXPECT_EQ(out.rising_edges(), 20u);  // pre-homing: everything passes

  home();
  EXPECT_TRUE(t2->enabled());
  pulses(sim::Axis::kE, 20);
  EXPECT_EQ(out.rising_edges(), 30u);  // post-homing: half masked
}

TEST_F(TrojanFixture, HomingDelayDefersActivation) {
  TrojanSuiteConfig cfg;
  cfg.t6 = T6Config{.hotend = true, .bed = false,
                    .delay_after_homing_s = 5.0};
  board.trojans().arm(cfg);
  board.arduino_side().wire(sim::Pin::kHotendHeat).set(true);
  home();
  sched.run_until(sched.now() + sim::seconds(2));
  EXPECT_TRUE(board.ramps_side().wire(sim::Pin::kHotendHeat).level());
  sched.run_until(sched.now() + sim::seconds(4));
  EXPECT_FALSE(board.ramps_side().wire(sim::Pin::kHotendHeat).level());
}

TEST_F(TrojanFixture, ActivationCountersTrack) {
  TrojanSuiteConfig cfg;
  cfg.t2 = T2Config{.keep_ratio = 0.5};
  board.trojans().arm(cfg);
  home();
  pulses(sim::Axis::kE, 40);
  Trojan* t2 = board.trojans().find(TrojanId::kT2);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t2->activations(), 20u);  // one per dropped pulse
  EXPECT_EQ(board.fpga().path(sim::Pin::kEStep).dropped_pulses(), 20u);
}

TEST_F(TrojanFixture, DisarmAllRestoresPassthrough) {
  TrojanSuiteConfig cfg;
  cfg.t2 = T2Config{.keep_ratio = 0.5};
  cfg.t6 = T6Config{.hotend = true, .bed = true,
                    .delay_after_homing_s = 0.0};
  board.trojans().arm(cfg);
  home();
  board.trojans().disarm_all();
  sim::TraceRecorder out(board.ramps_side().step(sim::Axis::kE), false);
  pulses(sim::Axis::kE, 10);
  EXPECT_EQ(out.rising_edges(), 10u);
  EXPECT_FALSE(board.fpga()
                   .path(sim::Pin::kHotendHeat)
                   .forced()
                   .has_value());
}

TEST_F(TrojanFixture, T1BurstsInjectOnSchedule) {
  TrojanSuiteConfig cfg;
  cfg.t1 = T1Config{.period = sim::seconds(2),
                    .pulses_per_burst = 25,
                    .alternate_axes = true};
  board.trojans().arm(cfg);
  home();
  sim::TraceRecorder x(board.ramps_side().step(sim::Axis::kX), false);
  sim::TraceRecorder y(board.ramps_side().step(sim::Axis::kY), false);
  sched.run_until(sched.now() + sim::seconds(7));  // 3 bursts: X, Y, X
  EXPECT_EQ(x.rising_edges(), 50u);
  EXPECT_EQ(y.rising_edges(), 25u);
  EXPECT_EQ(board.trojans().find(TrojanId::kT1)->activations(), 3u);
}

TEST_F(TrojanFixture, T8CyclesDriverEnables) {
  TrojanSuiteConfig cfg;
  cfg.t8 = T8Config{.axes = {true, false, false, false},
                    .period_s = 1.0,
                    .off_duration_s = 0.2,
                    .delay_after_homing_s = 0.0};
  board.trojans().arm(cfg);
  // Firmware holds the driver enabled.
  board.arduino_side().enable(sim::Axis::kX).set(false);
  home();
  auto& en = board.ramps_side().enable(sim::Axis::kX);
  sched.run_until(sched.now() + sim::ms(1100));
  EXPECT_TRUE(en.level());  // mid-deactivation: forced high
  sched.run_until(sched.now() + sim::ms(300));
  EXPECT_FALSE(en.level());  // released back to the firmware's level
  sched.run_until(sched.now() + sim::seconds(4));
  EXPECT_GE(board.trojans().find(TrojanId::kT8)->activations(), 4u);
}

TEST_F(TrojanFixture, EnableDisableIsIdempotent) {
  TrojanSuiteConfig cfg;
  cfg.t7 = T7Config{.hotend = true, .delay_after_homing_s = 0.0};
  board.trojans().arm(cfg);
  Trojan* t7 = board.trojans().find(TrojanId::kT7);
  ASSERT_NE(t7, nullptr);
  home();
  EXPECT_TRUE(t7->enabled());
  t7->set_enabled(true);  // no-op
  EXPECT_EQ(t7->activations(), 1u);
  t7->set_enabled(false);
  t7->set_enabled(false);  // no-op
  EXPECT_FALSE(board.fpga()
                   .path(sim::Pin::kHotendHeat)
                   .forced()
                   .has_value());
}

TEST(TrojanNames, AllDistinct) {
  const TrojanId ids[] = {TrojanId::kT1, TrojanId::kT2, TrojanId::kT3,
                          TrojanId::kT4, TrojanId::kT5, TrojanId::kT6,
                          TrojanId::kT7, TrojanId::kT8, TrojanId::kT9,
                          TrojanId::kT10};
  for (const auto a : ids) {
    for (const auto b : ids) {
      if (a != b) {
        EXPECT_STRNE(trojan_name(a), trojan_name(b));
      }
    }
  }
}

}  // namespace
}  // namespace offramps::core
