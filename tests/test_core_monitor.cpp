// Unit tests for the FPGA monitoring modules: edge detector, homing FSM,
// axis tracker, and layer monitor.
#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "sim/scheduler.hpp"

namespace offramps::core {
namespace {

TEST(EdgeDetector, SynchronizesToFpgaClock) {
  sim::Scheduler sched;
  sim::Wire w(sched, "w");
  std::vector<sim::Tick> seen;
  EdgeDetector det(sched, w, [&](sim::Edge, sim::Tick t) {
    seen.push_back(t);
  });
  sched.schedule_at(sim::ns(13), [&] { w.set(true); });   // between clocks
  sched.schedule_at(sim::ns(40), [&] { w.set(false); });  // on a clock edge
  sched.run_all();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], sim::ns(20));  // sampled at the next 10 ns boundary
  EXPECT_EQ(seen[1], sim::ns(40));
}

struct HomingFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire x{sched, "XM"}, y{sched, "YM"}, z{sched, "ZM"};
  HomingDetector det{sched, x, y, z};

  /// One axis' full homing signature: hit, release, re-hit.
  void home_axis(sim::Wire& w) {
    w.set(true);
    sched.run_until(sched.now() + sim::ms(1));
    w.set(false);
    sched.run_until(sched.now() + sim::ms(1));
    w.set(true);
    sched.run_until(sched.now() + sim::ms(1));
    w.set(false);
    sched.run_until(sched.now() + sim::ms(1));
  }
};

TEST_F(HomingFixture, FiresAfterFullSequence) {
  int fired = 0;
  det.on_homed([&](sim::Tick) { ++fired; });
  EXPECT_FALSE(det.homed());
  home_axis(x);
  EXPECT_FALSE(det.homed());
  home_axis(y);
  EXPECT_FALSE(det.homed());
  home_axis(z);
  EXPECT_TRUE(det.homed());
  EXPECT_EQ(fired, 1);
  EXPECT_GT(det.homed_at(), 0u);
}

TEST_F(HomingFixture, MultipleListenersAllFire) {
  int a = 0, b = 0;
  det.on_homed([&](sim::Tick) { ++a; });
  det.on_homed([&](sim::Tick) { ++b; });
  home_axis(x);
  home_axis(y);
  home_axis(z);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST_F(HomingFixture, OutOfOrderAxisCountsAnomaly) {
  home_axis(y);  // Y before X
  EXPECT_FALSE(det.homed());
  EXPECT_GT(det.out_of_order_events(), 0u);
  // Correct order afterwards still homes.
  home_axis(x);
  home_axis(y);
  home_axis(z);
  EXPECT_TRUE(det.homed());
}

TEST_F(HomingFixture, PostHomingEndstopChatterIsAnomalous) {
  home_axis(x);
  home_axis(y);
  home_axis(z);
  const auto before = det.out_of_order_events();
  x.set(true);  // mid-print endstop hit: not expected
  EXPECT_GT(det.out_of_order_events(), before);
}

TEST_F(HomingFixture, ResetReArmsTheFsm) {
  home_axis(x);
  home_axis(y);
  home_axis(z);
  ASSERT_TRUE(det.homed());
  det.reset();
  EXPECT_FALSE(det.homed());
  int fired = 0;
  det.on_homed([&](sim::Tick) { ++fired; });
  home_axis(x);
  home_axis(y);
  home_axis(z);
  EXPECT_EQ(fired, 1);
}

TEST_F(HomingFixture, DisabledDetectorIgnoresEverything) {
  det.set_enabled(false);
  home_axis(x);
  home_axis(y);
  home_axis(z);
  EXPECT_FALSE(det.homed());
}

struct TrackerFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire step{sched, "S"}, dir{sched, "D"};
  AxisTracker tracker{sched, step, dir};

  void pulse(int n) {
    for (int i = 0; i < n; ++i) {
      step.set(true);
      step.set(false);
      sched.run_until(sched.now() + sim::us(10));
    }
  }
};

TEST_F(TrackerFixture, DoesNotCountUntilArmed) {
  pulse(5);
  EXPECT_EQ(tracker.count(), 0);
  EXPECT_FALSE(tracker.saw_step());
}

TEST_F(TrackerFixture, CountsSignedByDir) {
  tracker.arm();
  dir.set(true);
  pulse(10);
  dir.set(false);
  pulse(4);
  EXPECT_EQ(tracker.count(), 6);
}

TEST_F(TrackerFixture, FirstStepCallbackFiresOnce) {
  int first = 0;
  tracker.on_first_step([&](sim::Tick) { ++first; });
  tracker.arm();
  dir.set(true);
  sched.run_until(sim::ms(1));  // first step at a nonzero time
  pulse(3);
  EXPECT_EQ(first, 1);
  EXPECT_TRUE(tracker.saw_step());
  EXPECT_GT(tracker.first_step_at(), 0u);
}

TEST_F(TrackerFixture, ArmResetsCount) {
  tracker.arm();
  dir.set(true);
  pulse(5);
  tracker.arm();
  EXPECT_EQ(tracker.count(), 0);
  pulse(2);
  EXPECT_EQ(tracker.count(), 2);
}

TEST_F(TrackerFixture, DisarmFreezesCount) {
  tracker.arm();
  dir.set(true);
  pulse(5);
  tracker.disarm();
  pulse(5);
  EXPECT_EQ(tracker.count(), 5);
}

struct LayerFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire zstep{sched, "Z"};
  LayerMonitor monitor{sched, zstep, sim::ms(500)};

  void z_burst(int steps) {
    for (int i = 0; i < steps; ++i) {
      zstep.set(true);
      zstep.set(false);
      sched.run_until(sched.now() + sim::ms(1));
    }
  }
};

TEST_F(LayerFixture, BurstsSeparatedByQuietAreLayers) {
  std::vector<std::uint64_t> layers;
  monitor.on_layer([&](std::uint64_t n) { layers.push_back(n); });
  sched.run_until(sim::seconds(1));
  z_burst(100);
  sched.run_until(sched.now() + sim::seconds(4));
  z_burst(100);
  sched.run_until(sched.now() + sim::seconds(4));
  z_burst(100);
  EXPECT_EQ(monitor.layers_seen(), 3u);
  EXPECT_EQ(layers, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(LayerFixture, ContinuousSteppingIsOneLayer) {
  sched.run_until(sim::seconds(1));
  z_burst(500);
  EXPECT_EQ(monitor.layers_seen(), 1u);
}

TEST_F(LayerFixture, ResetClearsCount) {
  sched.run_until(sim::seconds(1));
  z_burst(10);
  monitor.reset();
  EXPECT_EQ(monitor.layers_seen(), 0u);
}

}  // namespace
}  // namespace offramps::core
