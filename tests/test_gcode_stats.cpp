// Unit tests for the g-code statistics analyzer.
#include <gtest/gtest.h>

#include "gcode/parser.hpp"
#include "gcode/stats.hpp"
#include "host/slicer.hpp"

namespace offramps::gcode {
namespace {

TEST(Stats, CountsMoveKinds) {
  const Program p = parse_program(
      "G28\n"
      "G1 X10 Y0 E1 F1200\n"   // extrusion
      "G1 E0.2 F2100\n"        // retraction
      "G0 X20 F6000\n"         // travel
      "G1 E1.0 F2100\n"        // unretract (E-only positive)
      "G1 X30 E2 F1200\n");    // extrusion
  const Statistics s = analyze(p);
  EXPECT_EQ(s.command_count, 6u);
  EXPECT_EQ(s.move_count, 5u);
  EXPECT_EQ(s.extrusion_move_count, 2u);
  EXPECT_EQ(s.travel_move_count, 1u);
  EXPECT_EQ(s.retraction_count, 1u);
}

TEST(Stats, ExtrusionTotals) {
  const Program p = parse_program(
      "G1 X10 E2 F1200\n"
      "G1 E1 F2100\n"     // retract 1
      "G1 E2 F2100\n"     // unretract 1
      "G1 X20 E4 F1200\n");
  const Statistics s = analyze(p);
  EXPECT_DOUBLE_EQ(s.extruded_mm, 5.0);   // 2 + 1 + 2
  EXPECT_DOUBLE_EQ(s.retracted_mm, 1.0);
  EXPECT_DOUBLE_EQ(s.net_e_mm(), 4.0);
}

TEST(Stats, BoundingBoxCoversExtrusionOnly) {
  const Program p = parse_program(
      "G0 X100 Y100 F6000\n"
      "G1 X110 Y100 E1 F1200\n"
      "G1 X110 Y110 E2 F1200\n"
      "G0 X0 Y0 F6000\n");  // travel back should not expand the bbox
  const Statistics s = analyze(p);
  ASSERT_TRUE(s.extrusion_bbox.valid);
  EXPECT_DOUBLE_EQ(s.extrusion_bbox.min_x, 100.0);
  EXPECT_DOUBLE_EQ(s.extrusion_bbox.max_x, 110.0);
  EXPECT_DOUBLE_EQ(s.extrusion_bbox.width(), 10.0);
  EXPECT_DOUBLE_EQ(s.extrusion_bbox.depth(), 10.0);
}

TEST(Stats, LayerDetection) {
  const Program p = parse_program(
      "G1 Z0.25 F480\nG1 X10 E1 F1200\n"
      "G1 Z0.5 F480\nG1 X0 E2 F1200\n"
      "G1 Z0.75 F480\nG1 X10 E3 F1200\n");
  const Statistics s = analyze(p);
  ASSERT_EQ(s.layer_z.size(), 3u);
  EXPECT_DOUBLE_EQ(s.layer_z[0], 0.25);
  EXPECT_DOUBLE_EQ(s.layer_z[2], 0.75);
  EXPECT_DOUBLE_EQ(s.max_z, 0.75);
}

TEST(Stats, NaiveTimeUsesFeedrate) {
  // 60 mm at 60 mm/s (F3600) = 1 s.
  const Program p = parse_program("G1 X60 F3600\n");
  const Statistics s = analyze(p);
  EXPECT_NEAR(s.naive_time_s, 1.0, 1e-9);
}

TEST(Stats, SlicedCubeHasSaneNumbers) {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 4,
                      .center_x_mm = 110, .center_y_mm = 100};
  const Statistics s = analyze(host::slice_cube(cube, profile));
  EXPECT_EQ(s.layer_z.size(), 16u);  // 4 mm / 0.25 mm
  EXPECT_GT(s.extruded_mm, 50.0);
  EXPECT_LT(s.extruded_mm, 500.0);
  // Footprint matches the requested size.
  EXPECT_NEAR(s.extrusion_bbox.width(), 10.0, 1e-6);
  EXPECT_NEAR(s.extrusion_bbox.depth(), 10.0, 1e-6);
  // More extrusion path than travel path for a solid part.
  EXPECT_GT(s.extrusion_path_mm, s.travel_path_mm);
}

}  // namespace
}  // namespace offramps::gcode
