// svc::Fleet: spec parsing, the demo matrix, detection + safe-stop on a
// small mixed fleet, the determinism contract - the fleet JSON report
// must be byte-identical at any worker count - and the supervision
// layer: chaos campaigns classify as recovered/degraded/lost with zero
// false alarms, and checkpoint/resume reproduces the full report byte
// for byte without re-simulating completed rigs.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "host/chaos.hpp"
#include "sim/error.hpp"
#include "svc/fleet.hpp"

namespace {

using offramps::host::parse_chaos;
using offramps::svc::Fleet;
using offramps::svc::FleetOptions;
using offramps::svc::FleetReport;
using offramps::svc::parse_sabotage;
using offramps::svc::RigSpec;
using offramps::svc::RigStatus;
using offramps::svc::Sabotage;

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// A fleet small enough for repeated runs but with real sabotage in it:
// two clean rigs and one Flaw3D reduction rig sharing one small object.
std::vector<RigSpec> small_fleet() {
  std::vector<RigSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "t-" + std::to_string(i);
    specs[i].seed = 500 + i;
    specs[i].cube_mm = 6.0;
    specs[i].height_mm = 1.5;
  }
  specs[1].sabotage = parse_sabotage("reduce:0.5");
  return specs;
}

TEST(Sabotage, ParseAndRoundTrip) {
  EXPECT_EQ(parse_sabotage("").kind, Sabotage::Kind::kNone);
  EXPECT_EQ(parse_sabotage("clean").kind, Sabotage::Kind::kNone);
  EXPECT_EQ(parse_sabotage("none").to_string(), "clean");

  const Sabotage red = parse_sabotage("reduce:0.85");
  EXPECT_EQ(red.kind, Sabotage::Kind::kReduction);
  EXPECT_DOUBLE_EQ(red.factor, 0.85);
  EXPECT_EQ(red.to_string(), "reduce:0.85");

  const Sabotage rel = parse_sabotage("relocate:10");
  EXPECT_EQ(rel.kind, Sabotage::Kind::kRelocation);
  EXPECT_EQ(rel.every_n, 10u);
  EXPECT_EQ(rel.to_string(), "relocate:10");
}

TEST(Sabotage, ParseRejectsMalformed) {
  EXPECT_THROW(parse_sabotage("bogus"), offramps::Error);
  EXPECT_THROW(parse_sabotage("reduce:"), offramps::Error);
  EXPECT_THROW(parse_sabotage("reduce:0"), offramps::Error);    // no-op
  EXPECT_THROW(parse_sabotage("reduce:1.0"), offramps::Error);  // no-op
  EXPECT_THROW(parse_sabotage("reduce:-0.5"), offramps::Error);
  EXPECT_THROW(parse_sabotage("relocate:0"), offramps::Error);
  EXPECT_THROW(parse_sabotage("relocate:abc"), offramps::Error);
}

TEST(Fleet, DemoSpecs) {
  const auto specs = Fleet::demo_specs(8, 3);
  ASSERT_EQ(specs.size(), 8u);
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, "rig-" + std::to_string(i));
    EXPECT_EQ(specs[i].seed, 1000 + i);
    dirty += specs[i].sabotage.kind != Sabotage::Kind::kNone ? 1 : 0;
  }
  EXPECT_EQ(dirty, 3u);
  EXPECT_THROW(Fleet::demo_specs(2, 3), offramps::Error);
}

TEST(Fleet, SpecsFromJson) {
  FleetOptions options;
  const auto specs = Fleet::specs_from_json(
      "{ \"workers\": 2, \"safe_stop\": false, \"rigs\": [\n"
      "    {\"name\": \"alpha\", \"seed\": 7, \"cube_mm\": 6,\n"
      "     \"height_mm\": 1.5, \"sabotage\": \"reduce:0.85\"},\n"
      "    {} ] }",
      options);
  EXPECT_EQ(options.workers, 2u);
  EXPECT_FALSE(options.safe_stop);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "alpha");
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_DOUBLE_EQ(specs[0].cube_mm, 6.0);
  EXPECT_EQ(specs[0].sabotage.kind, Sabotage::Kind::kReduction);
  // Defaulted rig: name filled at run time, indexed default seed, clean.
  EXPECT_TRUE(specs[1].name.empty());
  EXPECT_EQ(specs[1].seed, 1001u);
  EXPECT_DOUBLE_EQ(specs[1].cube_mm, 8.0);
  EXPECT_EQ(specs[1].sabotage.kind, Sabotage::Kind::kNone);
}

TEST(Fleet, SpecsFromJsonRejectsMalformed) {
  FleetOptions options;
  EXPECT_THROW(Fleet::specs_from_json("{ \"rigs\": \"nope\" }", options),
               offramps::Error);
  EXPECT_THROW(Fleet::specs_from_json("not json", options), offramps::Error);
  EXPECT_THROW(Fleet::specs_from_json(
                   "{ \"rigs\": [{\"sabotage\": \"bogus\"}] }", options),
               offramps::Error);
}

TEST(Fleet, DetectsSabotageAndSafeStops) {
  FleetOptions options;
  options.workers = 2;
  options.safe_stop = true;
  Fleet fleet(options);
  const FleetReport report = fleet.run(small_fleet());

  ASSERT_EQ(report.rigs.size(), 3u);
  EXPECT_EQ(report.alarmed(), 1u);
  EXPECT_EQ(report.mid_print_alarms(), 1u);

  const auto& dirty = report.rigs[1];
  EXPECT_TRUE(dirty.detector.alarmed);
  EXPECT_TRUE(dirty.detector.alarmed_mid_print);
  EXPECT_TRUE(dirty.safe_stopped);
  EXPECT_FALSE(dirty.print_finished);  // the plug was pulled mid-print
  EXPECT_FALSE(dirty.kill_reason.empty());

  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_FALSE(report.rigs[i].detector.alarmed) << "rig " << i;
    EXPECT_TRUE(report.rigs[i].print_finished) << "rig " << i;
    EXPECT_FALSE(report.rigs[i].safe_stopped) << "rig " << i;
  }

  // The JSON rendering carries the per-rig verdicts.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"true_alarms\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"false_alarms\": 0"), std::string::npos);
}

TEST(Fleet, ReportDeterministicAcrossWorkerCounts) {
  const auto specs = small_fleet();
  std::vector<std::uint64_t> digests;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    FleetOptions options;
    options.workers = workers;
    Fleet fleet(options);
    digests.push_back(fnv1a(fleet.run(specs).to_json()));
  }
  // Byte-identical report at 1, 2, and 8 workers.
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

// A chaos fleet: one sabotaged rig (must alarm), one crash-once rig
// (must recover on retry), one permanently stalled rig (must be
// quarantined), one clean rig (control).
std::vector<RigSpec> chaos_fleet() {
  std::vector<RigSpec> specs(4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "c-" + std::to_string(i);
    specs[i].seed = 700 + i;
    specs[i].cube_mm = 6.0;
    specs[i].height_mm = 1.5;
  }
  specs[1].sabotage = parse_sabotage("reduce:0.5");
  specs[2].chaos = parse_chaos("crash:1");
  specs[3].chaos = parse_chaos("stall:99");
  return specs;
}

TEST(FleetChaos, ClassifiesRecoveredAndLostWithoutFalseAlarms) {
  FleetOptions options;
  options.workers = 2;
  const FleetReport report = Fleet(options).run(chaos_fleet());

  ASSERT_EQ(report.rigs.size(), 4u);
  EXPECT_EQ(report.rigs[0].status, RigStatus::kOk);
  EXPECT_EQ(report.rigs[0].attempts, 1u);

  // The sabotaged rig still alarms under supervision.
  EXPECT_EQ(report.rigs[1].status, RigStatus::kOk);
  EXPECT_TRUE(report.rigs[1].detector.alarmed);

  // crash:1 fails the first attempt, succeeds clean on the retry.
  EXPECT_EQ(report.rigs[2].status, RigStatus::kRecovered);
  EXPECT_EQ(report.rigs[2].attempts, 2u);
  EXPECT_NE(report.rigs[2].failure_cause.find("injected rig crash"),
            std::string::npos);
  EXPECT_FALSE(report.rigs[2].detector.alarmed) << "recovered, not alarmed";

  // stall:99 wedges the capture tap on every attempt: quarantined.
  EXPECT_EQ(report.rigs[3].status, RigStatus::kLost);
  EXPECT_EQ(report.rigs[3].attempts, 3u);
  EXPECT_FALSE(report.rigs[3].failure_cause.empty());
  EXPECT_FALSE(report.rigs[3].detector.alarmed)
      << "a quarantined rig is not a detection";

  // Zero false alarms: only the sabotaged rig alarmed.
  EXPECT_EQ(report.alarmed(), 1u);
  EXPECT_EQ(report.count(RigStatus::kRecovered), 1u);
  EXPECT_EQ(report.count(RigStatus::kLost), 1u);
  EXPECT_EQ(report.campaign(), "lost");

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"false_alarms\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"recovered\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"lost\""), std::string::npos);
  EXPECT_NE(json.find("\"campaign\": \"lost\""), std::string::npos);
}

TEST(FleetChaos, PowerJamDegradesRingWedgeIsAbsorbed) {
  std::vector<RigSpec> specs(2);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "p-" + std::to_string(i);
    specs[i].seed = 800 + i;
    specs[i].cube_mm = 6.0;
    specs[i].height_mm = 1.5;
  }
  specs[0].chaos = parse_chaos("powerjam");   // every attempt
  specs[1].chaos = parse_chaos("ringwedge");  // every attempt

  FleetOptions options;
  options.workers = 2;
  const FleetReport report = Fleet(options).run(specs);

  // powerjam throws every full-fidelity attempt; the degrade ladder's
  // final attempt runs without the power channel and succeeds.
  EXPECT_EQ(report.rigs[0].status, RigStatus::kDegraded);
  EXPECT_EQ(report.rigs[0].attempts, 3u);
  EXPECT_EQ(report.rigs[0].detector.power.windows_compared, 0u);
  EXPECT_TRUE(report.rigs[0].print_finished);

  // ringwedge stops the pump draining; the ring's lossless backpressure
  // absorbs it - first-attempt success, with stalls on the books.
  EXPECT_EQ(report.rigs[1].status, RigStatus::kOk);
  EXPECT_EQ(report.rigs[1].attempts, 1u);
  EXPECT_GT(report.rigs[1].detector.backpressure_stalls, 0u);
  EXPECT_FALSE(report.rigs[1].detector.alarmed);

  EXPECT_EQ(report.alarmed(), 0u);
  EXPECT_EQ(report.campaign(), "degraded");
}

TEST(FleetChaos, ReportDeterministicAcrossWorkerCounts) {
  const auto specs = chaos_fleet();
  std::vector<std::uint64_t> digests;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    FleetOptions options;
    options.workers = workers;
    digests.push_back(fnv1a(Fleet(options).run(specs).to_json()));
  }
  // Retries, quarantines and failure causes are keyed on (rig, attempt),
  // never on wall-clock or worker interleaving.
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(FleetCheckpoint, StopResumeReproducesFullReportByteForByte) {
  const auto specs = chaos_fleet();
  const std::string ck =
      ::testing::TempDir() + "/fleet-resume-test-ck.bin";
  std::filesystem::remove(ck);

  // The uninterrupted campaign is the reference output.
  FleetOptions plain;
  plain.workers = 2;
  const std::string full_json = Fleet(plain).run(specs).to_json();

  // Kill drill: complete 2 rigs, checkpoint, stop.
  FleetOptions first = plain;
  first.checkpoint_path = ck;
  first.stop_after = 2;
  const FleetReport partial = Fleet(first).run(specs);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.campaign(), "partial");
  EXPECT_EQ(partial.count(RigStatus::kPending), 2u);
  EXPECT_NE(partial.to_json(), full_json);
  ASSERT_TRUE(std::filesystem::exists(ck));

  // Resume: the remaining rigs run; the final report is byte-identical
  // to the never-interrupted run.
  FleetOptions second = plain;
  second.resume_path = ck;
  const FleetReport resumed = Fleet(second).run(specs);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.to_json(), full_json);

  // Completed rigs were skipped, not re-simulated: the resumed process
  // only ever timed the rigs it actually ran.
  for (const auto& t : resumed.timings) {
    EXPECT_EQ(t.name.find("rig/c-0"), std::string::npos) << t.name;
    EXPECT_EQ(t.name.find("rig/c-1"), std::string::npos) << t.name;
  }
  bool timed_c3 = false;
  for (const auto& t : resumed.timings) {
    timed_c3 = timed_c3 || t.name == "rig/c-3";
  }
  EXPECT_TRUE(timed_c3);
  std::filesystem::remove(ck);
}

TEST(FleetCheckpoint, ResumeRejectsEditedSpecs) {
  auto specs = small_fleet();
  const std::string ck =
      ::testing::TempDir() + "/fleet-digest-test-ck.bin";
  std::filesystem::remove(ck);

  FleetOptions options;
  options.workers = 2;
  options.checkpoint_path = ck;
  options.stop_after = 1;
  (void)Fleet(options).run(specs);
  ASSERT_TRUE(std::filesystem::exists(ck));

  // Resuming with a different fleet must be a hard error, not skew.
  specs[2].seed += 1;
  FleetOptions resume;
  resume.workers = 2;
  resume.resume_path = ck;
  EXPECT_THROW(Fleet(resume).run(specs), offramps::Error);
  std::filesystem::remove(ck);
}

}  // namespace
