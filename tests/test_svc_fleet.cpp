// svc::Fleet: spec parsing, the demo matrix, detection + safe-stop on a
// small mixed fleet, and the determinism contract - the fleet JSON
// report must be byte-identical at any worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/error.hpp"
#include "svc/fleet.hpp"

namespace {

using offramps::svc::Fleet;
using offramps::svc::FleetOptions;
using offramps::svc::FleetReport;
using offramps::svc::parse_sabotage;
using offramps::svc::RigSpec;
using offramps::svc::Sabotage;

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// A fleet small enough for repeated runs but with real sabotage in it:
// two clean rigs and one Flaw3D reduction rig sharing one small object.
std::vector<RigSpec> small_fleet() {
  std::vector<RigSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "t-" + std::to_string(i);
    specs[i].seed = 500 + i;
    specs[i].cube_mm = 6.0;
    specs[i].height_mm = 1.5;
  }
  specs[1].sabotage = parse_sabotage("reduce:0.5");
  return specs;
}

TEST(Sabotage, ParseAndRoundTrip) {
  EXPECT_EQ(parse_sabotage("").kind, Sabotage::Kind::kNone);
  EXPECT_EQ(parse_sabotage("clean").kind, Sabotage::Kind::kNone);
  EXPECT_EQ(parse_sabotage("none").to_string(), "clean");

  const Sabotage red = parse_sabotage("reduce:0.85");
  EXPECT_EQ(red.kind, Sabotage::Kind::kReduction);
  EXPECT_DOUBLE_EQ(red.factor, 0.85);
  EXPECT_EQ(red.to_string(), "reduce:0.85");

  const Sabotage rel = parse_sabotage("relocate:10");
  EXPECT_EQ(rel.kind, Sabotage::Kind::kRelocation);
  EXPECT_EQ(rel.every_n, 10u);
  EXPECT_EQ(rel.to_string(), "relocate:10");
}

TEST(Sabotage, ParseRejectsMalformed) {
  EXPECT_THROW(parse_sabotage("bogus"), offramps::Error);
  EXPECT_THROW(parse_sabotage("reduce:"), offramps::Error);
  EXPECT_THROW(parse_sabotage("reduce:0"), offramps::Error);    // no-op
  EXPECT_THROW(parse_sabotage("reduce:1.0"), offramps::Error);  // no-op
  EXPECT_THROW(parse_sabotage("reduce:-0.5"), offramps::Error);
  EXPECT_THROW(parse_sabotage("relocate:0"), offramps::Error);
  EXPECT_THROW(parse_sabotage("relocate:abc"), offramps::Error);
}

TEST(Fleet, DemoSpecs) {
  const auto specs = Fleet::demo_specs(8, 3);
  ASSERT_EQ(specs.size(), 8u);
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, "rig-" + std::to_string(i));
    EXPECT_EQ(specs[i].seed, 1000 + i);
    dirty += specs[i].sabotage.kind != Sabotage::Kind::kNone ? 1 : 0;
  }
  EXPECT_EQ(dirty, 3u);
  EXPECT_THROW(Fleet::demo_specs(2, 3), offramps::Error);
}

TEST(Fleet, SpecsFromJson) {
  FleetOptions options;
  const auto specs = Fleet::specs_from_json(
      "{ \"workers\": 2, \"safe_stop\": false, \"rigs\": [\n"
      "    {\"name\": \"alpha\", \"seed\": 7, \"cube_mm\": 6,\n"
      "     \"height_mm\": 1.5, \"sabotage\": \"reduce:0.85\"},\n"
      "    {} ] }",
      options);
  EXPECT_EQ(options.workers, 2u);
  EXPECT_FALSE(options.safe_stop);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "alpha");
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_DOUBLE_EQ(specs[0].cube_mm, 6.0);
  EXPECT_EQ(specs[0].sabotage.kind, Sabotage::Kind::kReduction);
  // Defaulted rig: name filled at run time, indexed default seed, clean.
  EXPECT_TRUE(specs[1].name.empty());
  EXPECT_EQ(specs[1].seed, 1001u);
  EXPECT_DOUBLE_EQ(specs[1].cube_mm, 8.0);
  EXPECT_EQ(specs[1].sabotage.kind, Sabotage::Kind::kNone);
}

TEST(Fleet, SpecsFromJsonRejectsMalformed) {
  FleetOptions options;
  EXPECT_THROW(Fleet::specs_from_json("{ \"rigs\": \"nope\" }", options),
               offramps::Error);
  EXPECT_THROW(Fleet::specs_from_json("not json", options), offramps::Error);
  EXPECT_THROW(Fleet::specs_from_json(
                   "{ \"rigs\": [{\"sabotage\": \"bogus\"}] }", options),
               offramps::Error);
}

TEST(Fleet, DetectsSabotageAndSafeStops) {
  FleetOptions options;
  options.workers = 2;
  options.safe_stop = true;
  Fleet fleet(options);
  const FleetReport report = fleet.run(small_fleet());

  ASSERT_EQ(report.rigs.size(), 3u);
  EXPECT_EQ(report.alarmed(), 1u);
  EXPECT_EQ(report.mid_print_alarms(), 1u);

  const auto& dirty = report.rigs[1];
  EXPECT_TRUE(dirty.detector.alarmed);
  EXPECT_TRUE(dirty.detector.alarmed_mid_print);
  EXPECT_TRUE(dirty.safe_stopped);
  EXPECT_FALSE(dirty.print_finished);  // the plug was pulled mid-print
  EXPECT_FALSE(dirty.kill_reason.empty());

  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_FALSE(report.rigs[i].detector.alarmed) << "rig " << i;
    EXPECT_TRUE(report.rigs[i].print_finished) << "rig " << i;
    EXPECT_FALSE(report.rigs[i].safe_stopped) << "rig " << i;
  }

  // The JSON rendering carries the per-rig verdicts.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"true_alarms\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"false_alarms\": 0"), std::string::npos);
}

TEST(Fleet, ReportDeterministicAcrossWorkerCounts) {
  const auto specs = small_fleet();
  std::vector<std::uint64_t> digests;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    FleetOptions options;
    options.workers = workers;
    Fleet fleet(options);
    digests.push_back(fnv1a(fleet.run(specs).to_json()));
  }
  // Byte-identical report at 1, 2, and 8 workers.
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

}  // namespace
