// Concurrency tests for the striped obs::Counter (PR 7) and the
// sampling knobs.  Run under TSan via the `determinism` label: the
// stripes must be provably race-free while keeping totals exact.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using offramps::obs::Counter;
using offramps::obs::Gauge;
using offramps::obs::Histogram;

TEST(ObsShardedCounter, ConcurrentAddsAggregateExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(ObsShardedCounter, ConcurrentReadersSeeMonotonicProgress) {
  Counter c;
  std::atomic<bool> stop{false};
  std::uint64_t last_seen = 0;
  bool monotonic = true;
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t v = c.value();
      if (v < last_seen) monotonic = false;
      last_seen = v;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&c]() {
      for (int i = 0; i < 50'000; ++i) c.add(2);
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(c.value(), 4u * 50'000u * 2u);
}

TEST(ObsShardedCounter, WeightedAddsAndResetStayExact) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 1; t <= 4; ++t) {
    threads.emplace_back([&c, t]() {
      for (int i = 0; i < 10'000; ++i) {
        c.add(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 10'000u * (1 + 2 + 3 + 4));
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(ObsShardedCounter, RegistryAggregatesAcrossPoolWorkers) {
  auto& reg = offramps::obs::Registry::instance();
  Counter& c = reg.counter("test.sharded.pool_total");
  c.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 12; ++t) {  // more threads than stripes
    threads.emplace_back([&c]() {
      for (int i = 0; i < 25'000; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 12u * 25'000u);
}

TEST(ObsSharded, GaugeMaxSurvivesConcurrentSets) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t) {
    threads.emplace_back([&g, t]() {
      for (int i = 0; i < 20'000; ++i) {
        g.set(static_cast<std::int64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.max(), 8 * 1000 + 6);
}

TEST(ObsSharded, HistogramConcurrentObservesCountExactly) {
  Histogram h({1.0, 10.0, 100.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&h, t]() {
      for (int i = 0; i < 10'000; ++i) {
        h.observe(static_cast<double>((t * 37 + i) % 200));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), 6u * 10'000u);
  std::uint64_t bucket_total = 0;
  for (const auto n : h.counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsSampling, LatencySampleKnobClampsAndRoundTrips) {
  const auto prev = offramps::obs::latency_sample_every();
  offramps::obs::set_latency_sample_every(16);
  EXPECT_EQ(offramps::obs::latency_sample_every(), 16u);
  offramps::obs::set_latency_sample_every(0);  // clamped, never div-by-zero
  EXPECT_EQ(offramps::obs::latency_sample_every(), 1u);
  offramps::obs::set_latency_sample_every(prev);
}

TEST(ObsSampling, SpanSampleKnobClampsAndRoundTrips) {
  using offramps::obs::TraceSession;
  const auto prev = TraceSession::sample_every();
  TraceSession::set_sample_every(8);
  EXPECT_EQ(TraceSession::sample_every(), 8u);
  TraceSession::set_sample_every(0);
  EXPECT_EQ(TraceSession::sample_every(), 1u);
  TraceSession::set_sample_every(prev);
}

TEST(ObsSampling, SampledSpansRecordOneInN) {
  using offramps::obs::Span;
  using offramps::obs::TraceSession;
  TraceSession::set_sample_every(4);
  TraceSession::start();
  for (int i = 0; i < 40; ++i) {
    Span span("sampled", "test");
  }
  TraceSession::stop();
  TraceSession::set_sample_every(1);
  EXPECT_EQ(TraceSession::event_count(), 10u);
}

}  // namespace
