// Unit tests for the plant's motor, carriage axis, endstop, and extruder
// models.
#include <gtest/gtest.h>

#include "plant/axis.hpp"
#include "plant/motor.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"

namespace offramps::plant {
namespace {

struct MotorFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire step{sched, "STEP"};
  sim::Wire dir{sched, "DIR"};
  sim::Wire enable{sched, "EN", true};  // /EN idle high = disabled
  StepperMotor motor{step, dir, enable};

  void pulse(int n) {
    for (int i = 0; i < n; ++i) {
      step.set(true);
      step.set(false);
    }
  }
};

TEST_F(MotorFixture, DisabledDriverDropsSteps) {
  pulse(10);
  EXPECT_EQ(motor.position(), 0);
  EXPECT_EQ(motor.dropped_steps(), 10u);
  EXPECT_FALSE(motor.enabled());
}

TEST_F(MotorFixture, EnabledDriverCountsSigned) {
  enable.set(false);
  dir.set(true);
  pulse(7);
  dir.set(false);
  pulse(3);
  EXPECT_EQ(motor.position(), 4);
  EXPECT_EQ(motor.accepted_steps(), 10u);
  EXPECT_EQ(motor.dropped_steps(), 0u);
}

TEST_F(MotorFixture, CallbackFiresPerAcceptedStep) {
  enable.set(false);
  dir.set(true);
  int calls = 0;
  motor.on_step_accepted([&](std::int64_t, bool fwd) {
    ++calls;
    EXPECT_TRUE(fwd);
  });
  pulse(5);
  EXPECT_EQ(calls, 5);
}

TEST_F(MotorFixture, ReenablingResumesCounting) {
  enable.set(false);
  dir.set(true);
  pulse(5);
  enable.set(true);  // Trojan T8 moment
  pulse(5);
  enable.set(false);
  pulse(5);
  EXPECT_EQ(motor.position(), 10);
  EXPECT_EQ(motor.dropped_steps(), 5u);
}

struct AxisFixture : MotorFixture {
  sim::Wire endstop{sched, "X_MIN"};
  CarriageAxis axis{motor, endstop, /*steps_per_mm=*/100.0,
                    /*length_mm=*/200.0, /*initial_mm=*/50.0};

  void SetUp() override { enable.set(false); }

  void move_mm(double mm) {
    dir.set(mm > 0);
    pulse(static_cast<int>(std::abs(mm) * 100.0));
  }
};

TEST_F(AxisFixture, TracksPositionFromInitial) {
  move_mm(10.0);
  EXPECT_NEAR(axis.position_mm(), 60.0, 1e-9);
  move_mm(-20.0);
  EXPECT_NEAR(axis.position_mm(), 40.0, 1e-9);
  EXPECT_EQ(axis.ground_steps(), 0u);
}

TEST_F(AxisFixture, ClampsAndGrindsAtMinimum) {
  move_mm(-80.0);  // commanded past 0 from 50
  EXPECT_NEAR(axis.position_mm(), 0.0, 1e-9);
  EXPECT_EQ(axis.ground_steps(), 3000u);  // 30 mm * 100 steps ground away
}

TEST_F(AxisFixture, ClampsAtMaximum) {
  move_mm(175.0);  // 50 + 175 > 200
  EXPECT_NEAR(axis.position_mm(), 200.0, 1e-9);
  EXPECT_EQ(axis.ground_steps(), 2500u);
}

TEST_F(AxisFixture, EndstopAssertsOnlyNearMinimum) {
  EXPECT_FALSE(endstop.level());
  move_mm(-49.95);
  EXPECT_TRUE(endstop.level());
  move_mm(3.0);
  EXPECT_FALSE(endstop.level());
}

TEST_F(AxisFixture, GrindingRecoversCleanly) {
  move_mm(-80.0);  // grind at 0
  move_mm(10.0);   // back off
  EXPECT_NEAR(axis.position_mm(), 10.0, 1e-9);
  EXPECT_FALSE(endstop.level());
}

TEST(ExtruderDrive, ConvertsStepsToFilament) {
  sim::Scheduler sched;
  sim::Wire step(sched, "E_STEP"), dir(sched, "E_DIR"),
      en(sched, "E_EN", false);
  StepperMotor motor(step, dir, en);
  ExtruderDrive extruder(motor, 280.0);
  dir.set(true);
  for (int i = 0; i < 560; ++i) {
    step.set(true);
    step.set(false);
  }
  EXPECT_NEAR(extruder.filament_mm(), 2.0, 1e-9);
  dir.set(false);
  for (int i = 0; i < 280; ++i) {
    step.set(true);
    step.set(false);
  }
  EXPECT_NEAR(extruder.filament_mm(), 1.0, 1e-9);  // retraction
}

}  // namespace
}  // namespace offramps::plant
