// Differential property test: the pass-manager analyzer's static oracle
// must predict the runtime OFFRAMPS capture's final step counters across
// *randomized* generated programs - object geometry, slicing speeds,
// firmware jitter seed and arc facet count all drawn from a seeded PRNG.
// The old hand-picked oracle tests (test_analyze_oracle.cpp) pin a few
// known shapes; this suite sweeps the space so an analyzer/firmware
// divergence (modal handling, arc chording, clamping) cannot hide
// between the fixtures.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "analyze/analyzer.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::analyze {
namespace {

using host::CubeSpec;
using host::CylinderSpec;
using host::SliceProfile;
using host::SquareSpec;

/// splitmix64 - deterministic across platforms, so every run sweeps the
/// exact same programs (this is a regression net, not a fuzzer).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) *
                    (static_cast<double>(next() >> 11) / 9007199254740992.0);
  }
  int range(int lo, int hi) {
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(
                                             hi - lo + 1));
  }
};

SliceProfile random_profile(Rng& rng) {
  SliceProfile p;
  p.layer_height_mm = rng.uniform(0.15, 0.3);
  p.perimeter_speed_mm_s = rng.uniform(25.0, 60.0);
  p.infill_speed_mm_s = rng.uniform(30.0, 70.0);
  p.travel_speed_mm_s = rng.uniform(80.0, 150.0);
  p.retract_mm = rng.uniform(0.4, 1.5);
  return p;
}

/// One static-vs-runtime differential check.  Slack covers the homing
/// debounce (a couple of Z steps), the only stepping the static model
/// cannot see exactly.
void expect_differential_match(const gcode::Program& program,
                               std::uint64_t jitter_seed) {
  const AnalysisResult res = analyze_program(program);
  ASSERT_TRUE(res.oracle.counters_armed);

  host::RigOptions options;
  options.firmware.jitter_seed = jitter_seed;
  host::Rig rig(options);
  host::RunResult run = rig.run(program);
  ASSERT_TRUE(run.finished);
  ASSERT_TRUE(run.capture.print_completed);

  for (std::size_t axis = 0; axis < 4; ++axis) {
    EXPECT_LE(std::llabs(res.oracle.expected_counts[axis] -
                         run.capture.final_counts[axis]),
              4)
        << "axis " << "XYZE"[axis] << ": static "
        << res.oracle.expected_counts[axis] << " vs runtime "
        << run.capture.final_counts[axis];
  }
}

TEST(AnalyzeDifferential, RandomizedCubes) {
  Rng rng{0xc0ffee01ULL};
  for (int i = 0; i < 3; ++i) {
    CubeSpec cube;
    cube.size_x_mm = rng.uniform(5.0, 12.0);
    cube.size_y_mm = rng.uniform(5.0, 12.0);
    cube.height_mm = rng.uniform(1.0, 2.5);
    const gcode::Program program =
        host::slice_cube(cube, random_profile(rng));
    expect_differential_match(program, rng.next());
  }
}

TEST(AnalyzeDifferential, RandomizedSquares) {
  Rng rng{0xc0ffee02ULL};
  for (int i = 0; i < 3; ++i) {
    SquareSpec square;
    square.size_mm = rng.uniform(8.0, 18.0);
    square.height_mm = rng.uniform(1.0, 2.5);
    const gcode::Program program =
        host::slice_square(square, random_profile(rng));
    expect_differential_match(program, rng.next());
  }
}

TEST(AnalyzeDifferential, RandomizedArcCylinders) {
  // Arc programs route through the analyzer's own G2/G3 chord expansion,
  // which must agree step-for-step with the firmware's.
  Rng rng{0xc0ffee03ULL};
  for (int i = 0; i < 3; ++i) {
    CylinderSpec cyl;
    cyl.diameter_mm = rng.uniform(10.0, 18.0);
    cyl.height_mm = rng.uniform(1.0, 2.0);
    cyl.facets = rng.range(12, 48);
    const gcode::Program program =
        host::slice_cylinder_arcs(cyl, random_profile(rng));
    expect_differential_match(program, rng.next());
  }
}

TEST(AnalyzeDifferential, RandomizedProgramsStayCleanAndDeterministic) {
  // The same randomized programs must lint clean (no warning+ findings)
  // and produce an identical report on a second analysis - the
  // determinism contract the fleet relies on when hashing reports.
  Rng rng{0xc0ffee04ULL};
  for (int i = 0; i < 2; ++i) {
    CubeSpec cube;
    cube.size_x_mm = rng.uniform(5.0, 10.0);
    cube.size_y_mm = rng.uniform(5.0, 10.0);
    cube.height_mm = rng.uniform(1.0, 2.0);
    const gcode::Program program =
        host::slice_cube(cube, random_profile(rng));
    const AnalysisResult a = analyze_program(program);
    const AnalysisResult b = analyze_program(program);
    EXPECT_TRUE(a.clean());
    EXPECT_EQ(a.to_json(), b.to_json());
  }
}

}  // namespace
}  // namespace offramps::analyze
