// Unit and property tests for the NTC thermistor + ADC divider model.
#include <gtest/gtest.h>

#include "sim/thermistor.hpp"

namespace offramps::sim {
namespace {

TEST(Thermistor, NominalResistanceAt25C) {
  Thermistor t;
  EXPECT_NEAR(t.resistance(25.0), 100'000.0, 1.0);
}

TEST(Thermistor, ResistanceFallsWithTemperature) {
  Thermistor t;
  EXPECT_GT(t.resistance(25.0), t.resistance(100.0));
  EXPECT_GT(t.resistance(100.0), t.resistance(210.0));
}

TEST(Thermistor, AdcNearRailWhenCold) {
  Thermistor t;
  // 100k against a 4.7k pullup at room temperature: very close to full
  // scale.
  EXPECT_GT(t.adc_counts(25.0), 950.0);
  EXPECT_LT(t.adc_counts(25.0), 1023.0);
}

TEST(Thermistor, AdcDropsWhenHot) {
  Thermistor t;
  EXPECT_LT(t.adc_counts(210.0), 120.0);
  EXPECT_GT(t.adc_counts(210.0), 1.0);
}

TEST(Thermistor, RailReadingsMapToExtremeTemperatures) {
  Thermistor t;
  // ADC pinned low = thermistor ~0 ohm = extremely hot (fires MAXTEMP).
  EXPECT_GT(t.temperature(0.0), 400.0);
  // ADC pinned high = open sensor = extremely cold (fires MINTEMP).
  EXPECT_LT(t.temperature(1023.0), -40.0);
}

/// Round trip: temperature -> ADC -> temperature across the working range.
class ThermistorRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(ThermistorRoundTrip, InverseRecoversTemperature) {
  Thermistor t;
  const double temp = GetParam();
  const double adc = t.adc_counts(temp);
  EXPECT_NEAR(t.temperature(adc), temp, 0.5) << "at " << temp << " C";
}

INSTANTIATE_TEST_SUITE_P(WorkingRange, ThermistorRoundTrip,
                         ::testing::Values(0.0, 25.0, 60.0, 100.0, 150.0,
                                           210.0, 250.0, 275.0));

TEST(Thermistor, MonotoneAdcOverWorkingRange) {
  Thermistor t;
  double prev = t.adc_counts(-10.0);
  for (double temp = -5.0; temp <= 300.0; temp += 5.0) {
    const double adc = t.adc_counts(temp);
    EXPECT_LT(adc, prev) << "at " << temp;
    prev = adc;
  }
}

}  // namespace
}  // namespace offramps::sim
