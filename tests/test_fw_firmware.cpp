// Integration tests for the firmware facade on a directly-wired stack
// (no OFFRAMPS board): command dispatch, homing, positioning, modal
// state, safety interlocks, and end-of-print behaviour.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sim/trace.hpp"

namespace offramps::fw {
namespace {

using offramps::test::DirectStack;
using offramps::test::preamble;

TEST(Firmware, StartsIdleAndFinishesEmptyQueue) {
  DirectStack s;
  EXPECT_EQ(s.firmware.state(), FwState::kIdle);
  EXPECT_TRUE(s.run());
  EXPECT_EQ(s.firmware.state(), FwState::kFinished);
}

TEST(Firmware, DoubleStartThrows) {
  DirectStack s;
  s.firmware.start();
  EXPECT_THROW(s.firmware.start(), offramps::Error);
}

TEST(Firmware, HomingZerosAxesAndSetsFlags) {
  DirectStack s;
  s.enqueue("G28\n");
  EXPECT_TRUE(s.run());
  EXPECT_TRUE(s.firmware.all_homed());
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kX), 0.0, 0.01);
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kY), 0.0, 0.01);
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kZ), 0.0, 0.01);
  // The physical carriages really are at their minimums.
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 0.0, 0.15);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 0.0, 0.15);
}

TEST(Firmware, PartialHomingOnlyNamedAxes) {
  DirectStack s;
  s.enqueue("G28 X\n");
  EXPECT_TRUE(s.run());
  EXPECT_TRUE(s.firmware.homed(sim::Axis::kX));
  EXPECT_FALSE(s.firmware.homed(sim::Axis::kY));
  EXPECT_FALSE(s.firmware.all_homed());
}

TEST(Firmware, HomingFailsWithoutEndstopsKillsMachine) {
  // Disconnect the plant by using an absurdly long axis: the firmware's
  // bump distance never reaches the switch.
  plant::PrinterParams params;
  params.initial_position_mm = {240.0, 200.0, 200.0};
  fw::Config config;
  config.axis_length_mm = {100.0, 100.0, 100.0};  // fw believes 100 mm...
  params.axis_length_mm = {2000.0, 2000.0, 2000.0};  // ...axis is 2 m
  DirectStack s(config, params);
  s.enqueue("G28 X\n");
  EXPECT_FALSE(s.run());
  EXPECT_TRUE(s.firmware.killed());
  EXPECT_NE(s.firmware.kill_reason().find("Homing failed"),
            std::string::npos);
}

TEST(Firmware, AbsoluteMoveReachesTarget) {
  DirectStack s;
  s.enqueue("G28\nG1 X50 Y40 F4800\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kX), 50.0, 0.01);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 50.0, 0.15);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 40.0, 0.15);
}

TEST(Firmware, RelativeMoves) {
  DirectStack s;
  s.enqueue("G28\nG91\nG1 X10 F4800\nG1 X10 F4800\nG90\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kX), 20.0, 0.01);
}

TEST(Firmware, SoftEndstopsClampAfterHoming) {
  DirectStack s;  // X length 250
  s.enqueue("G28\nG1 X9999 F12000\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kX), 250.0, 0.01);
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 250.0, 0.2);
}

TEST(Firmware, G92RebasesLogicalPosition) {
  DirectStack s;
  s.enqueue("G28\nG1 X50 F4800\nG92 X0\nG1 X10 F4800\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kX), 10.0, 0.01);
  // Physically at 60 mm: 50 + 10.
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 60.0, 0.15);
}

TEST(Firmware, ColdExtrusionIsBlocked) {
  DirectStack s;
  s.enqueue("G28\nG92 E0\nG1 X20 E5 F1200\n");  // hotend never heated
  EXPECT_TRUE(s.run());
  EXPECT_EQ(s.firmware.cold_extrusion_blocks(), 1u);
  EXPECT_EQ(s.printer.motor(sim::Axis::kE).position(), 0);
  // The motion component still happened.
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 20.0, 0.15);
}

TEST(Firmware, HotExtrusionDrivesEMotor) {
  DirectStack s;
  s.enqueue(preamble() + "G1 X20 E5 F1200\n");
  EXPECT_TRUE(s.run());
  EXPECT_EQ(s.firmware.cold_extrusion_blocks(), 0u);
  EXPECT_NEAR(s.printer.extruder().filament_mm(), 5.0, 0.02);
}

TEST(Firmware, ColdExtrusionPreventionCanBeDisabled) {
  fw::Config config;
  config.prevent_cold_extrusion = false;
  DirectStack s(config);
  s.enqueue("G28\nG92 E0\nG1 X20 E5 F1200\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.extruder().filament_mm(), 5.0, 0.02);
}

TEST(Firmware, FlowMultiplierScalesE) {
  DirectStack s;
  s.enqueue(preamble() + "M221 S50\nG1 X20 E4 F1200\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.extruder().filament_mm(), 2.0, 0.02);
}

TEST(Firmware, FeedrateMultiplierChangesDuration) {
  DirectStack fast, slow;
  const std::string job = "G28\nM220 S200\nG1 X100 F3000\n";
  const std::string job_slow = "G28\nM220 S50\nG1 X100 F3000\n";
  fast.enqueue(job);
  slow.enqueue(job_slow);
  EXPECT_TRUE(fast.run());
  EXPECT_TRUE(slow.run());
  EXPECT_LT(fast.sched.now(), slow.sched.now());
}

TEST(Firmware, DwellTakesRequestedTime) {
  DirectStack s;
  s.enqueue("G4 P1500\n");
  EXPECT_TRUE(s.run());
  EXPECT_GE(s.sched.now(), sim::ms(1500));
  EXPECT_LT(s.sched.now(), sim::ms(1700));
}

TEST(Firmware, M109WaitsForTemperature) {
  DirectStack s;
  s.enqueue("M104 S210\nM109 S210\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.firmware.thermal().current(Heater::kHotend), 210.0, 5.0);
  EXPECT_GT(s.sched.now(), sim::seconds(20));  // real heat-up took time
}

TEST(Firmware, FanControlSetsDuty) {
  DirectStack s;
  s.enqueue("M106 S127\n");
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.firmware.fan_duty(), 127.0 / 255.0, 0.01);
  DirectStack off;
  off.enqueue("M106 S200\nM107\n");
  EXPECT_TRUE(off.run());
  EXPECT_DOUBLE_EQ(off.firmware.fan_duty(), 0.0);
}

TEST(Firmware, MotorsOffReleasesDrivers) {
  DirectStack s;
  s.enqueue("G28\nM84\n");
  EXPECT_TRUE(s.run());
  for (const auto a : sim::kAllAxes) {
    EXPECT_TRUE(s.bank.enable(a).level()) << sim::axis_name(a);
  }
}

TEST(Firmware, EmergencyStopKillsEverything) {
  DirectStack s;
  s.enqueue("M104 S210\nM112\nG1 X50 F4800\n");
  EXPECT_FALSE(s.run());
  EXPECT_TRUE(s.firmware.killed());
  EXPECT_EQ(s.firmware.kill_reason(), "M112 emergency stop");
  EXPECT_EQ(s.firmware.queue_depth(), 0u);  // queue flushed
  EXPECT_DOUBLE_EQ(s.firmware.thermal().target(Heater::kHotend), 0.0);
}

TEST(Firmware, UnknownCommandsAreCountedAndSkipped) {
  DirectStack s;
  s.enqueue("M999\nG123\nT0\nG28 X\n");
  EXPECT_TRUE(s.run());
  EXPECT_EQ(s.firmware.unknown_commands(), 3u);
  EXPECT_TRUE(s.firmware.homed(sim::Axis::kX));
}

TEST(Firmware, ReportsTemperatureAndPosition) {
  DirectStack s;
  std::vector<std::string> reports;
  s.firmware.on_report([&](const std::string& r) { reports.push_back(r); });
  s.enqueue("G28\nM105\nM114\n");
  EXPECT_TRUE(s.run());
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_NE(reports[0].find("T:"), std::string::npos);
  EXPECT_NE(reports[1].find("X:0.00"), std::string::npos);
}

TEST(Firmware, StreamingModeWaitsForMoreInput) {
  DirectStack s;
  s.firmware.set_stream_open(true);
  s.firmware.enqueue_line("G28 X");
  s.firmware.on_finished([&] { s.sched.request_stop(); });
  s.firmware.start();
  s.sched.run_until(sim::seconds(30));
  // Queue drained but stream open: still running.
  EXPECT_EQ(s.firmware.state(), FwState::kRunning);
  s.firmware.enqueue_line("G1 X10 F4800");
  s.firmware.set_stream_open(false);
  s.sched.run_until(sim::seconds(60));
  EXPECT_TRUE(s.firmware.finished());
  EXPECT_NEAR(s.firmware.logical_mm(sim::Axis::kX), 10.0, 0.01);
}

TEST(Firmware, StepSignalsStayInPaperEnvelope) {
  // All control signals the paper measured ran below 20 kHz with >= 1 us
  // pulses; verify on a representative print move mix.
  DirectStack s;
  sim::TraceRecorder x(s.bank.step(sim::Axis::kX), false);
  sim::TraceRecorder e(s.bank.step(sim::Axis::kE), false);
  s.enqueue(preamble() +
            "G1 X100 Y50 E8 F4800\nG1 X10 F10800\nG1 E6 F2100\n");
  EXPECT_TRUE(s.run());
  EXPECT_LT(x.max_frequency_hz(), 20'000.0);
  EXPECT_LT(e.max_frequency_hz(), 20'000.0);
  EXPECT_GE(x.min_high_pulse(), sim::us(1));
  EXPECT_GE(e.min_high_pulse(), sim::us(1));
}

}  // namespace
}  // namespace offramps::fw
