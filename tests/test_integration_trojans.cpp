// End-to-end Trojan tests: each Table I Trojan run against a real print,
// verifying the physical effect the paper demonstrates with photographs.
#include <gtest/gtest.h>

#include "detect/compare.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::host {
namespace {

gcode::Program test_cube() {
  SliceProfile profile;
  CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2.5,
                .center_x_mm = 110, .center_y_mm = 100};
  return slice_cube(cube, profile);
}

RunResult run_with(const core::TrojanSuiteConfig& trojans,
                   gcode::Program program = test_cube()) {
  RigOptions options;
  options.trojans = trojans;
  Rig rig(options);
  return rig.run(program);
}

TEST(TrojanT1, InjectsStepsAndShiftsLayers) {
  core::TrojanSuiteConfig cfg;
  cfg.t1 = core::T1Config{.period = sim::seconds(10),
                          .pulses_per_burst = 100};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);  // part completes (PM Trojan, not DoS)
  // Extra steps reached the motors beyond what the firmware commanded.
  EXPECT_NE(r.motor_steps[0] + r.motor_steps[1],
            r.commanded_steps[0] + r.commanded_steps[1]);
  // The part shows a visible XY shift (paper: "extensive shift along
  // both axes").
  EXPECT_GT(r.part.max_layer_shift_mm, 0.4);
}

TEST(TrojanT2, HalvesExtrusionFlow) {
  core::TrojanSuiteConfig cfg;
  cfg.t2 = core::T2Config{.keep_ratio = 0.5};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_NEAR(r.flow_ratio(), 0.5, 0.05);
  // Geometry (XY motion) untouched.
  EXPECT_EQ(r.motor_steps[0], r.commanded_steps[0]);
  EXPECT_LT(r.part.max_layer_shift_mm, 0.2);
}

TEST(TrojanT2, ArbitraryMaskRatio) {
  core::TrojanSuiteConfig cfg;
  cfg.t2 = core::T2Config{.keep_ratio = 0.8};
  const RunResult r = run_with(cfg);
  EXPECT_NEAR(r.flow_ratio(), 0.8, 0.05);
}

TEST(TrojanT3, OverExtrudesDuringYMoves) {
  core::TrojanSuiteConfig cfg;
  cfg.t3 = core::T3Config{.over_extrude = true, .y_steps_per_injection = 8};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.flow_ratio(), 1.02);  // extra material deposited
}

TEST(TrojanT3, UnderExtrudesDuringYMoves) {
  core::TrojanSuiteConfig cfg;
  cfg.t3 = core::T3Config{.over_extrude = false, .drop_fraction = 0.8};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_LT(r.flow_ratio(), 0.95);
}

TEST(TrojanT4, ShiftsRandomLayers) {
  core::TrojanSuiteConfig cfg;
  cfg.t4 = core::T4Config{.layer_probability = 0.5, .shift_steps = 50};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.part.max_layer_shift_mm, 0.2);
  // Shifts accumulate randomly rather than uniformly: footprint drifts.
  EXPECT_GT(r.part.footprint_drift_mm, 0.1);
}

TEST(TrojanT5, OpensZGapsBetweenLayers) {
  core::TrojanSuiteConfig cfg;
  cfg.t5 = core::T5Config{.mode = core::T5Config::Mode::kEveryNLayers,
                          .every_n_layers = 3,
                          .shift_steps = 120};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);
  // Nominal spacing is 0.25 mm; the Trojan adds 0.3 mm on some layers.
  EXPECT_GT(r.part.max_z_spacing_mm, 0.4);
  // Z motor saw more steps than commanded.
  EXPECT_GT(r.motor_steps[2], r.commanded_steps[2]);
}

TEST(TrojanT5, AtStartCausesAdhesionFailure) {
  core::TrojanSuiteConfig cfg;
  // Lift shortly after homing settles (during heat-up, well before any
  // material): firing at the exact homed instant no longer works -- see
  // AtHomedInstantIsAbsorbedByEndstopDebounce below.
  cfg.t5 = core::T5Config{.mode = core::T5Config::Mode::kAtStart,
                          .shift_steps = 400,  // a full millimeter up
                          .delay_after_homing_s = 1.0};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);
  // First material lands ~1 mm above the nominal first layer.
  EXPECT_GT(r.part.first_layer_z_mm, 1.0);
}

TEST(TrojanT5, AtHomedInstantIsAbsorbedByEndstopDebounce) {
  // A Z lift injected at the very instant the homing detector fires races
  // the firmware's Z re-bump: the lift pulls the head off the switch
  // inside the debounce confirmation window, the firmware rejects the
  // trigger as a bounce and keeps homing, and the whole lift is re-zeroed
  // away.  The first layer lands at its nominal height.
  core::TrojanSuiteConfig cfg;
  cfg.t5 = core::T5Config{.mode = core::T5Config::Mode::kAtStart,
                          .shift_steps = 400,
                          .delay_after_homing_s = 0.0};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_LT(r.part.first_layer_z_mm, 0.5);
  EXPECT_GE(r.endstop_bounces_rejected, 1u);
}

TEST(TrojanT6, HeaterDosEndsPrintInThermalError) {
  core::TrojanSuiteConfig cfg;
  cfg.t6 = core::T6Config{.hotend = true, .bed = false,
                          .delay_after_homing_s = 15.0};
  // A taller part: the runaway watch (hysteresis + 40 s protection
  // period) needs the print still running when it trips.
  SliceProfile profile;
  CubeSpec tall{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 7,
                .center_x_mm = 110, .center_y_mm = 100};
  const RunResult r = run_with(cfg, slice_cube(tall, profile));
  EXPECT_FALSE(r.finished);
  EXPECT_TRUE(r.killed);
  EXPECT_NE(r.kill_reason.find("thermal"), std::string::npos);
  EXPECT_FALSE(r.capture.print_completed);
  // The part is incomplete: less material than a golden print deposits.
  const RunResult golden = run_with({}, slice_cube(tall, profile));
  EXPECT_LT(r.part.total_filament_mm, golden.part.total_filament_mm * 0.9);
}

TEST(TrojanT7, ForcedHeatingIgnoresFirmwarePanic) {
  core::TrojanSuiteConfig cfg;
  cfg.t7 = core::T7Config{.hotend = true, .delay_after_homing_s = 5.0};
  RigOptions options;
  options.trojans = cfg;
  options.post_kill_observation_s = 120.0;
  Rig rig(options);
  const RunResult r = rig.run(test_cube());
  // The firmware noticed (MAXTEMP kill)...
  EXPECT_TRUE(r.killed);
  // ...but the hotend kept heating far past the 275 C firmware limit,
  // toward physical destruction (paper: "heating the element past the
  // working specification").
  EXPECT_GT(r.hotend_peak_c, 300.0);
}

TEST(TrojanT8, DisablingDriversLosesSteps) {
  core::TrojanSuiteConfig cfg;
  cfg.t8 = core::T8Config{.axes = {true, true, false, true},
                          .period_s = 8.0,
                          .off_duration_s = 0.5,
                          .delay_after_homing_s = 2.0};
  const RunResult r = run_with(cfg);
  EXPECT_TRUE(r.finished);  // firmware never notices (open loop)
  const auto dropped = r.motor_dropped_steps[0] + r.motor_dropped_steps[1] +
                       r.motor_dropped_steps[3];
  EXPECT_GT(dropped, 100u);
  // Lost steps displace everything printed afterwards.
  EXPECT_NE(r.motor_steps[0], r.commanded_steps[0]);
}

TEST(TrojanT9, FanTamperUnderCools) {
  core::TrojanSuiteConfig cfg;
  cfg.t9 = core::T9Config{.duty_scale = 0.2};
  const RunResult tampered = run_with(cfg);
  const RunResult golden = run_with({});
  EXPECT_TRUE(tampered.finished);
  EXPECT_LT(tampered.mean_fan_rpm, golden.mean_fan_rpm * 0.5);
}

TEST(TrojanT9, FanTamperOverCools) {
  core::TrojanSuiteConfig cfg;
  // Force full cooling from the first layer regardless of the slicer's
  // first-layer fan-off rule.
  cfg.t9 = core::T9Config{.duty_scale = 1.0, .duty_offset = 1.0};
  const RunResult tampered = run_with(cfg);
  const RunResult golden = run_with({});
  EXPECT_GT(tampered.mean_fan_rpm, golden.mean_fan_rpm * 1.2);
}

TEST(TrojanT0, GoldenRunHasNoTrojanArtifacts) {
  const RunResult r = run_with({});
  EXPECT_TRUE(r.finished);
  EXPECT_NEAR(r.flow_ratio(), 1.0, 1e-9);
  EXPECT_LT(r.part.max_layer_shift_mm, 0.15);
  EXPECT_LT(r.part.max_z_spacing_mm, 0.3);
  EXPECT_NEAR(r.part.first_layer_z_mm, 0.35, 0.15);
}

TEST(TrojanT10, ThermistorSpoofOverheatsSilently) {
  core::TrojanSuiteConfig cfg;
  cfg.t10 = core::T10Config{.hotend = true, .understate_c = 25.0,
                            .delay_after_homing_s = 0.0};
  const RunResult r = run_with(cfg);
  // The print completes: the firmware never saw anything wrong...
  EXPECT_TRUE(r.finished);
  EXPECT_FALSE(r.killed);
  // ...while the hotend physically ran ~25 C past its setpoint.
  EXPECT_GT(r.hotend_peak_c, 230.0);
  EXPECT_LT(r.hotend_peak_c, 260.0);
  // And the capture is indistinguishable from golden: this Trojan class
  // is invisible to step-count detection (the paper's stated limitation
  // for heater Trojans).
  const RunResult golden = run_with({});
  const detect::Report rep = detect::compare(golden.capture, r.capture);
  EXPECT_FALSE(rep.trojan_likely);
}

TEST(TrojanT10, InactiveInRecordMode) {
  core::TrojanSuiteConfig cfg;
  cfg.t10 = core::T10Config{.hotend = true, .understate_c = 25.0};
  RigOptions options;
  options.trojans = cfg;
  options.route = core::RouteMode::kFpgaRecord;  // analog path untouched
  Rig rig(options);
  const RunResult r = rig.run(test_cube());
  EXPECT_TRUE(r.finished);
  EXPECT_LT(r.hotend_peak_c, 225.0);  // normal overshoot only
}

TEST(TrojanControl, DynamicDisableRestoresCleanOperation) {
  // Enable T2, then disable it mid-print: flow recovers for the rest.
  core::TrojanSuiteConfig cfg;
  cfg.t2 = core::T2Config{.keep_ratio = 0.5};
  RigOptions options;
  options.trojans = cfg;
  Rig rig(options);
  // Disable once half the layers have printed (a purely signal-level
  // trigger, as the multiplexer select would be driven in hardware).
  rig.board().fpga().layers().on_layer([&rig](std::uint64_t layer) {
    if (layer == 5) {
      if (auto* t = rig.board().trojans().find(core::TrojanId::kT2)) {
        t->set_enabled(false);
      }
    }
  });
  const RunResult r = rig.run(test_cube());  // 10 layers
  EXPECT_TRUE(r.finished);
  // Overall flow between the fully-masked 0.5 and clean 1.0.
  EXPECT_GT(r.flow_ratio(), 0.55);
  EXPECT_LT(r.flow_ratio(), 0.99);
}

}  // namespace
}  // namespace offramps::host
