// Unit tests for the stepper engine: pulse counts, Bresenham following,
// direction lines, enable management, trapezoid timing, and aborts.
#include <gtest/gtest.h>

#include <cmath>

#include "fw/planner.hpp"
#include "fw/stepper.hpp"
#include "sim/error.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace offramps::fw {
namespace {

struct StepperFixture : ::testing::Test {
  sim::Scheduler sched;
  Config config;
  sim::PinBank bank{sched, "t."};
  StepperEngine engine{sched, bank, config};
  Planner planner{config};

  /// Runs a segment to completion; returns the executed steps.
  std::array<std::int64_t, 4> run(const Segment& seg,
                                  bool* aborted_out = nullptr) {
    std::array<std::int64_t, 4> result{};
    bool done = false;
    engine.start(seg, [&](bool aborted, std::array<std::int64_t, 4> ex) {
      result = ex;
      done = true;
      if (aborted_out != nullptr) *aborted_out = aborted;
    });
    sched.run_all();
    EXPECT_TRUE(done);
    return result;
  }
};

TEST_F(StepperFixture, EmitsExactPulseCount) {
  sim::TraceRecorder x(bank.step(sim::Axis::kX), false);
  const auto executed = run(planner.plan({500, 0, 0, 0}, 40.0));
  EXPECT_EQ(x.rising_edges(), 500u);
  EXPECT_EQ(x.falling_edges(), 500u);
  EXPECT_EQ(executed[0], 500);
}

TEST_F(StepperFixture, NegativeMoveSetsDirLow) {
  const auto executed = run(planner.plan({-200, 0, 0, 0}, 40.0));
  EXPECT_FALSE(bank.dir(sim::Axis::kX).level());
  EXPECT_EQ(executed[0], -200);
}

TEST_F(StepperFixture, PositiveMoveSetsDirHigh) {
  run(planner.plan({200, 0, 0, 0}, 40.0));
  EXPECT_TRUE(bank.dir(sim::Axis::kX).level());
}

TEST_F(StepperFixture, AutoEnablesMovingAxes) {
  EXPECT_TRUE(bank.enable(sim::Axis::kX).level());  // /EN idle high
  run(planner.plan({100, 0, 0, 20}, 40.0));
  EXPECT_FALSE(bank.enable(sim::Axis::kX).level());  // enabled
  EXPECT_FALSE(bank.enable(sim::Axis::kE).level());
  EXPECT_TRUE(bank.enable(sim::Axis::kY).level());   // untouched
}

TEST_F(StepperFixture, SetAllEnabled) {
  engine.set_all_enabled(true);
  for (const auto a : sim::kAllAxes) {
    EXPECT_FALSE(bank.enable(a).level());
  }
  engine.set_all_enabled(false);
  for (const auto a : sim::kAllAxes) {
    EXPECT_TRUE(bank.enable(a).level());
  }
}

TEST_F(StepperFixture, BresenhamDeliversMinorAxisExactly) {
  sim::TraceRecorder x(bank.step(sim::Axis::kX), false);
  sim::TraceRecorder e(bank.step(sim::Axis::kE), false);
  const auto executed = run(planner.plan({1000, 0, 0, 137}, 40.0));
  EXPECT_EQ(x.rising_edges(), 1000u);
  EXPECT_EQ(e.rising_edges(), 137u);
  EXPECT_EQ(executed[3], 137);
}

TEST_F(StepperFixture, MixedSignsFollowCorrectly) {
  const auto executed = run(planner.plan({800, -600, 0, 0}, 40.0));
  EXPECT_EQ(executed[0], 800);
  EXPECT_EQ(executed[1], -600);
  EXPECT_TRUE(bank.dir(sim::Axis::kX).level());
  EXPECT_FALSE(bank.dir(sim::Axis::kY).level());
}

TEST_F(StepperFixture, PulseWidthRespectsConfig) {
  sim::TraceRecorder x(bank.step(sim::Axis::kX), true);
  run(planner.plan({50, 0, 0, 0}, 40.0));
  EXPECT_EQ(x.min_high_pulse(), config.step_pulse_width);
  EXPECT_GE(x.min_low_pulse(), config.step_pulse_gap);
}

TEST_F(StepperFixture, TrapezoidTakesLongerThanCruiseOnly) {
  // 4000 steps at 40 mm/s cruise with accel ramps: the move must take at
  // least the ideal cruise time and include ramp overhead.
  const sim::Tick start = sched.now();
  run(planner.plan({4000, 0, 0, 0}, 40.0));
  const double elapsed = sim::to_seconds(sched.now() - start);
  const double cruise_only = 4000.0 / (40.0 * 100.0);
  EXPECT_GT(elapsed, cruise_only);
  EXPECT_LT(elapsed, cruise_only * 2.0);
}

TEST_F(StepperFixture, ShortMoveStillCompletes) {
  const auto executed = run(planner.plan({1, 0, 0, 0}, 40.0));
  EXPECT_EQ(executed[0], 1);
}

TEST_F(StepperFixture, EmptySegmentCompletesAsynchronously) {
  bool done = false;
  engine.start(Segment{}, [&](bool aborted, auto) {
    EXPECT_FALSE(aborted);
    done = true;
  });
  EXPECT_FALSE(done);  // not synchronous
  sched.run_all();
  EXPECT_TRUE(done);
}

TEST_F(StepperFixture, StartWhileBusyThrows) {
  engine.start(planner.plan({1000, 0, 0, 0}, 40.0), [](bool, auto) {});
  EXPECT_THROW(
      engine.start(planner.plan({10, 0, 0, 0}, 40.0), [](bool, auto) {}),
      offramps::Error);
  sched.run_all();
}

TEST_F(StepperFixture, AbortStopsMidSegment) {
  bool aborted = false;
  std::array<std::int64_t, 4> executed{};
  engine.start(planner.plan({100000, 0, 0, 0}, 40.0),
               [&](bool a, std::array<std::int64_t, 4> ex) {
                 aborted = a;
                 executed = ex;
               });
  sched.schedule_at(sim::ms(50), [&] { engine.abort(); });
  sched.run_all();
  EXPECT_TRUE(aborted);
  EXPECT_GT(executed[0], 0);
  EXPECT_LT(executed[0], 100000);
  EXPECT_FALSE(engine.busy());
}

TEST_F(StepperFixture, EndstopAbortsHomingSegment) {
  Segment seg = planner.plan({-5000, 0, 0, 0}, 40.0);
  seg.abort_on_endstop = true;
  seg.endstop_axis = sim::Axis::kX;
  // Trip the endstop 20 ms in.
  sched.schedule_at(sim::ms(20),
                    [&] { bank.min_endstop(sim::Axis::kX).set(true); });
  bool aborted = false;
  const auto executed = run(seg, &aborted);
  EXPECT_TRUE(aborted);
  EXPECT_LT(executed[0], 0);
  EXPECT_GT(executed[0], -5000);
}

TEST_F(StepperFixture, AlreadyTriggeredEndstopAbortsImmediately) {
  bank.min_endstop(sim::Axis::kX).set(true);
  Segment seg = planner.plan({-5000, 0, 0, 0}, 40.0);
  seg.abort_on_endstop = true;
  seg.endstop_axis = sim::Axis::kX;
  bool aborted = false;
  const auto executed = run(seg, &aborted);
  EXPECT_TRUE(aborted);
  EXPECT_EQ(executed[0], 0);
}

TEST_F(StepperFixture, LifetimeStepsAccumulateAcrossSegments) {
  run(planner.plan({100, 50, 0, 0}, 40.0));
  run(planner.plan({-40, 0, 0, 10}, 40.0));
  const auto& life = engine.lifetime_steps();
  EXPECT_EQ(life[0], 60);
  EXPECT_EQ(life[1], 50);
  EXPECT_EQ(life[3], 10);
}

TEST_F(StepperFixture, StepRateStaysUnderTwentyKilohertz) {
  // The paper measured all Arduino->RAMPS signals below 20 kHz; verify a
  // fast travel move respects that envelope (X at 120 mm/s = 12 kHz).
  sim::TraceRecorder x(bank.step(sim::Axis::kX), false);
  run(planner.plan({12000, 0, 0, 0}, 120.0));
  EXPECT_LT(x.max_frequency_hz(), 20'000.0);
}

}  // namespace
}  // namespace offramps::fw
