// Unit tests for the golden-capture comparison (the paper's detection
// script, Figure 4c).
#include <gtest/gtest.h>

#include "detect/compare.hpp"

namespace offramps::detect {
namespace {

core::Capture make_capture(std::initializer_list<std::array<int, 4>> rows,
                           bool completed = true) {
  core::Capture cap;
  std::uint32_t i = 0;
  for (const auto& row : rows) {
    core::Transaction t;
    t.index = i++;
    for (std::size_t c = 0; c < 4; ++c) t.counts[c] = row[c];
    cap.transactions.push_back(t);
  }
  if (!cap.transactions.empty()) {
    for (std::size_t c = 0; c < 4; ++c) {
      cap.final_counts[c] = cap.transactions.back().counts[c];
    }
  }
  cap.print_completed = completed;
  return cap;
}

TEST(Compare, IdenticalCapturesAreClean) {
  const auto golden = make_capture({{100, 200, 30, 400}, {200, 400, 30, 800}});
  const Report rep = compare(golden, golden);
  EXPECT_FALSE(rep.trojan_likely);
  EXPECT_EQ(rep.mismatch_count(), 0u);
  EXPECT_TRUE(rep.final_counts_match);
  EXPECT_EQ(rep.transactions_compared, 2u);
}

TEST(Compare, DriftWithinMarginIsTolerated) {
  const auto golden =
      make_capture({{1000, 2000, 300, 4000}, {2000, 4000, 300, 8000}});
  // 3% off everywhere, same finals.
  auto observed =
      make_capture({{1030, 2060, 309, 4120}, {2060, 4120, 309, 8240}});
  observed.final_counts = golden.final_counts;
  const Report rep = compare(golden, observed);
  EXPECT_EQ(rep.mismatch_count(), 0u);
  EXPECT_FALSE(rep.trojan_likely);
}

TEST(Compare, BeyondMarginIsMismatch) {
  const auto golden = make_capture({{1000, 2000, 300, 4000}});
  const auto observed = make_capture({{1100, 2000, 300, 4000}});  // 10% X
  const Report rep = compare(golden, observed);
  ASSERT_EQ(rep.mismatch_count(), 1u);
  EXPECT_EQ(rep.mismatches[0].column, 0u);
  EXPECT_NEAR(rep.mismatches[0].percent, 10.0, 0.01);
  EXPECT_TRUE(rep.trojan_likely);
}

TEST(Compare, TinyCountsAreExemptFromPercentageTest) {
  // 3 vs 6 steps is 100% but far below min_count_for_margin.
  const auto golden = make_capture({{3, 0, 0, 0}});
  auto observed = make_capture({{6, 0, 0, 0}});
  observed.final_counts = golden.final_counts;
  const Report rep = compare(golden, observed);
  EXPECT_EQ(rep.mismatch_count(), 0u);
}

TEST(Compare, FinalCheckHasZeroMargin) {
  const auto golden = make_capture({{1000, 2000, 300, 4000}});
  auto observed = golden;
  observed.final_counts[3] += 1;  // one step short at print end
  const Report rep = compare(golden, observed);
  EXPECT_EQ(rep.mismatch_count(), 0u);
  EXPECT_FALSE(rep.final_counts_match);
  EXPECT_TRUE(rep.trojan_likely);
}

TEST(Compare, FinalCheckCanBeDisabled) {
  const auto golden = make_capture({{1000, 2000, 300, 4000}});
  auto observed = golden;
  observed.final_counts[3] += 1;
  CompareOptions opt;
  opt.final_check = false;
  const Report rep = compare(golden, observed, opt);
  EXPECT_FALSE(rep.trojan_likely);
}

TEST(Compare, LengthAnomalyFlagsTruncatedPrints) {
  const auto golden = make_capture(
      {{100, 0, 0, 0}, {200, 0, 0, 0}, {300, 0, 0, 0}, {400, 0, 0, 0}});
  const auto observed = make_capture({{100, 0, 0, 0}, {200, 0, 0, 0}});
  const Report rep = compare(golden, observed);
  EXPECT_TRUE(rep.length_anomaly);
  EXPECT_TRUE(rep.trojan_likely);
}

TEST(Compare, MarginIsConfigurable) {
  const auto golden = make_capture({{1000, 0, 0, 0}});
  auto observed = make_capture({{1030, 0, 0, 0}});  // 3%
  observed.final_counts = golden.final_counts;
  CompareOptions tight;
  tight.margin_pct = 1.0;
  EXPECT_TRUE(compare(golden, observed, tight).trojan_likely);
  CompareOptions loose;
  loose.margin_pct = 5.0;
  EXPECT_FALSE(compare(golden, observed, loose).trojan_likely);
}

TEST(Compare, LargestPercentIsTracked) {
  const auto golden = make_capture({{1000, 2000, 300, 4000}});
  const auto observed = make_capture({{1100, 3000, 300, 4000}});
  const Report rep = compare(golden, observed);
  EXPECT_NEAR(rep.largest_percent, 50.0, 0.01);  // the Y column
}

TEST(Compare, ReportRendersPaperStyleOutput) {
  const auto golden = make_capture({{7218, 8285, 960, 52856}});
  const auto observed = make_capture({{6489, 8285, 960, 52856}});
  const Report rep = compare(golden, observed);
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("Index: 0, Column: X, Values: 7218, 6489"),
            std::string::npos);
  EXPECT_NE(text.find("Largest percent difference found:"),
            std::string::npos);
  EXPECT_NE(text.find("Number of transactions compared: 1"),
            std::string::npos);
  EXPECT_NE(text.find("Trojan likely!"), std::string::npos);
}

TEST(Compare, CleanReportSaysNoTrojan) {
  const auto golden = make_capture({{100, 200, 30, 400}});
  const std::string text = compare(golden, golden).to_string();
  EXPECT_NE(text.find("No Trojan suspected."), std::string::npos);
}

TEST(Compare, EmptyCapturesCompareClean) {
  const core::Capture empty;
  const Report rep = compare(empty, empty);
  EXPECT_FALSE(rep.trojan_likely);
  EXPECT_EQ(rep.transactions_compared, 0u);
}

TEST(Compare, ColumnNames) {
  EXPECT_STREQ(column_name(0), "X");
  EXPECT_STREQ(column_name(3), "E");
  EXPECT_STREQ(column_name(9), "?");
}

// Property sweep: deviations strictly above the margin are flagged, at or
// below are not (boundary behaviour of the margin test).
class MarginSweep : public ::testing::TestWithParam<double> {};

TEST_P(MarginSweep, BoundaryBehaviour) {
  const double margin = GetParam();
  CompareOptions opt;
  opt.margin_pct = margin;
  opt.final_check = false;
  const auto golden = make_capture({{10000, 0, 0, 0}});
  const auto delta =
      static_cast<int>(10000.0 * margin / 100.0);
  auto at_margin = make_capture({{10000 + delta, 0, 0, 0}});
  EXPECT_FALSE(compare(golden, at_margin, opt).trojan_likely)
      << "at margin " << margin;
  auto above = make_capture({{10000 + delta + 100, 0, 0, 0}});
  EXPECT_TRUE(compare(golden, above, opt).trojan_likely)
      << "above margin " << margin;
}

INSTANTIATE_TEST_SUITE_P(Margins, MarginSweep,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace offramps::detect
