// Pass-framework tests: registry contents, pass subset selection,
// per-pass severity overrides, the two new flow-sensitive checks
// (post-abort reachability, M220/M221/M104 override taint), third-party
// pass registration, and the --json schema's pass field.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/pass.hpp"
#include "gcode/parser.hpp"
#include "sim/error.hpp"

namespace offramps::analyze {
namespace {

gcode::Program parse(const std::string& text) {
  return gcode::parse_program(text);
}

/// A minimal homed preamble: arms the counters and heats the hotend.
const char* kPreamble =
    "G21\nG90\nM83\nG28\nM109 S200\n"
    "G1 X10 Y10 F3000 E2\n";  // printing starts here

// --- registry ----------------------------------------------------------------

TEST(PassRegistry, ListsBuiltinPassesInEmissionOrder) {
  const std::vector<PassInfo> infos = PassRegistry::global().list();
  std::vector<std::string> ids;
  ids.reserve(infos.size());
  for (const auto& info : infos) ids.push_back(info.id);
  const std::vector<std::string> builtin = {
      "thermal",       "kinematics-limits", "extrusion", "structure",
      "reachability",  "taint",             "oracle",    "baseline-compare"};
  // Third-party passes may have been appended by other tests; the
  // builtin prefix and its order are the contract.
  ASSERT_GE(ids.size(), builtin.size());
  for (std::size_t i = 0; i < builtin.size(); ++i) {
    EXPECT_EQ(ids[i], builtin[i]);
  }
}

TEST(PassRegistry, RejectsDuplicateIds) {
  EXPECT_FALSE(PassRegistry::global().add(
      PassInfo{"thermal", "impostor"},
      [] { return std::unique_ptr<Pass>(); }));
}

TEST(PassRegistry, MakeUnknownIdReturnsNull) {
  EXPECT_EQ(PassRegistry::global().make("no-such-pass"), nullptr);
}

// --- pass selection ----------------------------------------------------------

TEST(PassSelection, SubsetRunsOnlyThosePasses) {
  // A program with both an unknown command (structure) and a cold
  // extrusion (thermal): enabling only "structure" must keep the
  // thermal finding out.
  const gcode::Program program = parse("G28\nM999\nG1 X5 E1 F3000\n");
  AnalyzeOptions options;
  options.passes = {"structure"};
  const AnalysisResult res = analyze_program(program, {}, options);
  EXPECT_TRUE(res.has(FindingCode::kUnknownCommand));
  EXPECT_FALSE(res.has(FindingCode::kColdExtrusion));
  for (const Finding& f : res.findings) EXPECT_EQ(f.pass, "structure");
}

TEST(PassSelection, DisablingOracleSkipsItsNotes) {
  const gcode::Program program = parse("G1 X5 F3000\n");  // never homes
  AnalyzeOptions options;
  options.passes = {"structure"};
  const AnalysisResult res = analyze_program(program, {}, options);
  EXPECT_FALSE(res.has(FindingCode::kCountersNotArmed));
}

TEST(PassSelection, UnknownPassIdThrows) {
  AnalyzeOptions options;
  options.passes = {"bogus-pass"};
  EXPECT_THROW(analyze_program(parse("G28\n"), {}, options), Error);
}

TEST(PassSelection, UnknownSeverityPassIdThrows) {
  AnalyzeOptions options;
  options.pass_severity.emplace_back("bogus-pass", Severity::kNote);
  EXPECT_THROW(analyze_program(parse("G28\n"), {}, options), Error);
}

TEST(PassSelection, SelectionDoesNotChangeSharedState) {
  // The oracle must be identical whether or not other passes run: passes
  // observe the walk, they never steer it.
  const gcode::Program program =
      parse(std::string(kPreamble) + "G1 X20 Y15 E1.5\nG1 E-1 F1800\n");
  const AnalysisResult all = analyze_program(program);
  AnalyzeOptions only_oracle;
  only_oracle.passes = {"oracle"};
  const AnalysisResult one = analyze_program(program, {}, only_oracle);
  EXPECT_EQ(all.oracle.expected_counts, one.oracle.expected_counts);
  EXPECT_EQ(all.oracle.segments.size(), one.oracle.segments.size());
  EXPECT_EQ(all.oracle.extruded_mm, one.oracle.extruded_mm);
}

// --- severity overrides ------------------------------------------------------

TEST(PassSeverity, OverrideDemotesFindingsToNote) {
  const gcode::Program program = parse("G28\nM999\n");
  AnalyzeOptions options;
  options.pass_severity.emplace_back("structure", Severity::kNote);
  const AnalysisResult res = analyze_program(program, {}, options);
  ASSERT_TRUE(res.has(FindingCode::kUnknownCommand));
  for (const Finding& f : res.findings) {
    if (f.code == FindingCode::kUnknownCommand) {
      EXPECT_EQ(f.severity, Severity::kNote);
    }
  }
  // Demoted to note = clean exit for the CLI.
  EXPECT_TRUE(res.clean());
}

TEST(PassSeverity, OverridePromotesNotesToError) {
  const gcode::Program program = parse("G1 X5 F3000\n");  // never homes
  AnalyzeOptions options;
  options.pass_severity.emplace_back("oracle", Severity::kError);
  const AnalysisResult res = analyze_program(program, {}, options);
  ASSERT_TRUE(res.has(FindingCode::kCountersNotArmed));
  EXPECT_FALSE(res.clean());
}

TEST(PassSeverity, SeverityNamesRoundTrip) {
  Severity s{};
  EXPECT_TRUE(severity_from_name("note", s));
  EXPECT_EQ(s, Severity::kNote);
  EXPECT_TRUE(severity_from_name("warning", s));
  EXPECT_EQ(s, Severity::kWarning);
  EXPECT_TRUE(severity_from_name("error", s));
  EXPECT_EQ(s, Severity::kError);
  EXPECT_FALSE(severity_from_name("fatal", s));
}

// --- reachability: post-abort motion ----------------------------------------

TEST(ReachabilityPass, FlagsMotionAfterAbort) {
  const gcode::Program program =
      parse(std::string(kPreamble) + "M112\nG1 X50 Y50 E5\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kUnreachableCommands));
  EXPECT_TRUE(res.has(FindingCode::kPostAbortMotion)) << res.to_string();
}

TEST(ReachabilityPass, FlagsHeaterAfterAbort) {
  const gcode::Program program =
      parse(std::string(kPreamble) + "M112\nM104 S250\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kPostAbortMotion));
}

TEST(ReachabilityPass, QuietForHousekeepingTail) {
  // M107/M84 after M112 is a normal end sequence, not smuggled motion.
  const gcode::Program program =
      parse(std::string(kPreamble) + "M112\nM107\nM84\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kUnreachableCommands));
  EXPECT_FALSE(res.has(FindingCode::kPostAbortMotion));
}

TEST(ReachabilityPass, ReportsPostAbortMotionOnce) {
  const gcode::Program program =
      parse(std::string(kPreamble) + "M112\nG1 X50\nG1 X60\nG1 X70\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_EQ(res.count(FindingCode::kPostAbortMotion), 1u);
  EXPECT_EQ(res.count(FindingCode::kUnreachableCommands), 1u);
}

// --- taint: mid-print M220/M221/M104 ----------------------------------------

TEST(TaintPass, FlagsMidPrintFlowOverride) {
  // M221 S50 after printing started: the modal spelling of a FLAW3D
  // reduction - every later extrusion is silently halved.
  const gcode::Program program = parse(std::string(kPreamble) +
                                       "M221 S50\nG1 X20 Y10 E1\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kFlowOverrideTaint)) << res.to_string();
  EXPECT_FALSE(res.clean());
}

TEST(TaintPass, FlagsMidPrintFeedrateOverride) {
  const gcode::Program program = parse(std::string(kPreamble) +
                                       "M220 S40\nG1 X20 Y10 E1\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kFeedrateOverrideTaint));
}

TEST(TaintPass, FlagsUnwaitedMidPrintTempChange) {
  const gcode::Program program = parse(std::string(kPreamble) +
                                       "M104 S180\nG1 X20 Y10 E1\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_TRUE(res.has(FindingCode::kTempOverrideTaint)) << res.to_string();
}

TEST(TaintPass, WaitedTempChangeIsNotTaint) {
  // M109 blocks until the new setpoint is reached: the legitimate way to
  // change temperature mid-print.
  const gcode::Program program = parse(std::string(kPreamble) +
                                       "M109 S190\nG1 X20 Y10 E1\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_FALSE(res.has(FindingCode::kTempOverrideTaint));
}

TEST(TaintPass, RestoredOverrideClearsTaint) {
  // M221 back at 100% before the next extrusion: nothing tainted runs.
  const gcode::Program program = parse(std::string(kPreamble) +
                                       "M221 S50\nM221 S100\n"
                                       "G1 X20 Y10 E1\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_FALSE(res.has(FindingCode::kFlowOverrideTaint));
}

TEST(TaintPass, PrePrintOverridesAreNotTaint) {
  // An operator M221 before any extrusion is tuning, not tampering.
  const gcode::Program program =
      parse("G21\nG90\nM83\nM221 S95\nG28\nM109 S200\nG1 X10 Y10 E2 F3000\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_FALSE(res.has(FindingCode::kFlowOverrideTaint));
}

TEST(TaintPass, ReportsEachOverrideSiteOnce) {
  const gcode::Program program = parse(std::string(kPreamble) +
                                       "M221 S50\nG1 X20 E1\nG1 X30 E1\n"
                                       "M221 S60\nG1 X40 E1\n");
  const AnalysisResult res = analyze_program(program);
  EXPECT_EQ(res.count(FindingCode::kFlowOverrideTaint), 2u)
      << res.to_string();
}

// --- third-party pass registration -------------------------------------------

class CountingPass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"test-counting", "counts moves (test-only pass)"};
  }
  void on_move(PassContext& ctx, const gcode::Command&,
               const fw::ResolvedMove&, std::size_t index) override {
    ++moves_;
    if (moves_ == 1) {
      ctx.emit(FindingCode::kUnknownCommand, Severity::kNote, index, 0.0,
               0.0, "first move (test pass)");
    }
  }

 private:
  int moves_ = 0;
};

TEST(ThirdPartyPass, RegistersAndRidesTheWalk) {
  static const bool registered = PassRegistry::global().add(
      PassInfo{"test-counting", "counts moves (test-only pass)"},
      [] { return std::make_unique<CountingPass>(); });
  ASSERT_TRUE(registered);

  AnalyzeOptions options;
  options.passes = {"test-counting"};
  const AnalysisResult res =
      analyze_program(parse("G28\nG1 X5 F3000\nG1 X6\n"), {}, options);
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].pass, "test-counting");
  EXPECT_EQ(res.findings[0].message, "first move (test pass)");
}

// --- schema ------------------------------------------------------------------

TEST(PassSchema, JsonCarriesPassIdAndSeverity) {
  const AnalysisResult res = analyze_program(parse("G28\nM999\n"));
  const std::string json = res.to_json();
  EXPECT_NE(json.find("\"code\": \"unknown-command\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"structure\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
}

TEST(PassSchema, EveryFindingIsAttributedToItsPass) {
  const gcode::Program program = parse(
      "M999\n"                    // structure
      "M104 S999\n"               // thermal (overtemp)
      "G1 X500 F99999 E1\n");     // kinematics (axis/feedrate) + thermal
  const AnalysisResult res = analyze_program(program);
  ASSERT_FALSE(res.findings.empty());
  for (const Finding& f : res.findings) {
    EXPECT_FALSE(f.pass.empty())
        << finding_code_name(f.code) << " finding lacks a pass id";
  }
}

}  // namespace
}  // namespace offramps::analyze
