// Unit tests for the g-code parser.
#include <gtest/gtest.h>

#include "gcode/parser.hpp"
#include "sim/error.hpp"

namespace offramps::gcode {
namespace {

TEST(Parser, ParsesSimpleMove) {
  const auto cmd = parse_line("G1 X10.5 Y-3 E0.42 F1800");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->is('G', 1));
  EXPECT_DOUBLE_EQ(*cmd->get('X'), 10.5);
  EXPECT_DOUBLE_EQ(*cmd->get('Y'), -3.0);
  EXPECT_DOUBLE_EQ(*cmd->get('E'), 0.42);
  EXPECT_DOUBLE_EQ(*cmd->get('F'), 1800.0);
}

TEST(Parser, LowercaseIsAccepted) {
  const auto cmd = parse_line("g1 x5 y6");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->is('G', 1));
  EXPECT_DOUBLE_EQ(*cmd->get('X'), 5.0);
}

TEST(Parser, ValuelessFlagsAreKept) {
  const auto cmd = parse_line("G28 X Y");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->has('X'));
  EXPECT_TRUE(cmd->has('Y'));
  EXPECT_FALSE(cmd->has('Z'));
  EXPECT_FALSE(cmd->get('X').has_value());  // flag, not a value
}

TEST(Parser, SemicolonCommentsAreStripped) {
  const auto cmd = parse_line("M104 S210 ; heat the hotend");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->is('M', 104));
  EXPECT_EQ(cmd->comment, "heat the hotend");
}

TEST(Parser, ParenCommentsAreStripped) {
  const auto cmd = parse_line("G1 (move fast) X5");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_DOUBLE_EQ(*cmd->get('X'), 5.0);
}

TEST(Parser, UnterminatedParenCommentThrows) {
  EXPECT_THROW(parse_line("G1 (oops X5"), Error);
}

TEST(Parser, CommentOnlyAndBlankLinesAreNullopt) {
  EXPECT_FALSE(parse_line("; just a comment").has_value());
  EXPECT_FALSE(parse_line("").has_value());
  EXPECT_FALSE(parse_line("   \t  ").has_value());
}

TEST(Parser, LineNumbersAreSkipped) {
  const auto cmd = parse_line("N42 G1 X5");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->is('G', 1));
  EXPECT_FALSE(cmd->has('N'));
}

TEST(Parser, ValidChecksumAccepted) {
  const std::string body = "N3 G1 X7 ";
  const unsigned char cs = reprap_checksum(body);
  const auto cmd = parse_line(body + "*" + std::to_string(cs));
  ASSERT_TRUE(cmd.has_value());
  EXPECT_DOUBLE_EQ(*cmd->get('X'), 7.0);
}

TEST(Parser, BadChecksumThrows) {
  EXPECT_THROW(parse_line("N3 G1 X7 *1"), Error);
}

TEST(Parser, MalformedNumberThrows) {
  EXPECT_THROW(parse_line("G1 X1.2.3"), Error);
  EXPECT_THROW(parse_line("G"), Error);
}

TEST(Parser, ParametersWithoutCommandThrow) {
  EXPECT_THROW(parse_line("X10 Y20"), Error);
}

TEST(Parser, NegativeAndDecimalCodes) {
  const auto cmd = parse_line("M109 S210.5");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_DOUBLE_EQ(*cmd->get('S'), 210.5);
}

TEST(Parser, ProgramSplitsOnNewlines) {
  const Program p = parse_program("G28\n; comment\nG1 X1\n\nG1 X2\n");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_TRUE(p[0].is('G', 28));
  EXPECT_DOUBLE_EQ(*p[2].get('X'), 2.0);
}

TEST(Parser, WindowsLineEndings) {
  const Program p = parse_program("G28\r\nG1 X1\r\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(p[1].is('G', 1));
}

TEST(Command, SetAndEraseParams) {
  Command c;
  c.letter = 'G';
  c.code = 1;
  c.set('X', 5.0);
  c.set('X', 6.0);
  EXPECT_DOUBLE_EQ(*c.get('X'), 6.0);
  EXPECT_EQ(c.params.size(), 1u);
  c.erase('X');
  EXPECT_FALSE(c.has('X'));
}

TEST(Command, ValueOrFallsBack) {
  Command c;
  c.letter = 'M';
  c.code = 106;
  EXPECT_DOUBLE_EQ(c.value_or('S', 255.0), 255.0);
  c.set('S', 128.0);
  EXPECT_DOUBLE_EQ(c.value_or('S', 255.0), 128.0);
}

TEST(Command, MakeLinearMoveBuilder) {
  const Command c = make_linear_move(1.0, std::nullopt, 3.0, std::nullopt,
                                     1200.0, /*rapid=*/true);
  EXPECT_TRUE(c.is('G', 0));
  EXPECT_DOUBLE_EQ(*c.get('X'), 1.0);
  EXPECT_FALSE(c.has('Y'));
  EXPECT_DOUBLE_EQ(*c.get('Z'), 3.0);
  EXPECT_DOUBLE_EQ(*c.get('F'), 1200.0);
}

}  // namespace
}  // namespace offramps::gcode
