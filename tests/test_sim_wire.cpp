// Unit tests for wires, connections, trace recording, and duty metering.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"

namespace offramps::sim {
namespace {

TEST(Wire, SetTriggersListenersOnChangeOnly) {
  Scheduler s;
  Wire w(s, "w");
  int edges = 0;
  w.on_edge([&](Edge, Tick) { ++edges; });
  w.set(true);
  w.set(true);  // no-op
  w.set(false);
  w.set(false);  // no-op
  EXPECT_EQ(edges, 2);
  EXPECT_EQ(w.rising_count(), 1u);
  EXPECT_EQ(w.falling_count(), 1u);
}

TEST(Wire, RisingAndFallingFilters) {
  Scheduler s;
  Wire w(s, "w");
  int rises = 0, falls = 0;
  w.on_rising([&](Tick) { ++rises; });
  w.on_falling([&](Tick) { ++falls; });
  w.set(true);
  w.set(false);
  w.set(true);
  EXPECT_EQ(rises, 2);
  EXPECT_EQ(falls, 1);
}

TEST(Wire, PulseEmitsBothEdges) {
  Scheduler s;
  Wire w(s, "w");
  std::vector<std::pair<bool, Tick>> log;
  w.on_edge([&](Edge e, Tick t) { log.push_back({e == Edge::kRising, t}); });
  w.pulse(us(2));
  s.run_all();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].first);
  EXPECT_FALSE(log[1].first);
  EXPECT_EQ(log[1].second - log[0].second, us(2));
}

TEST(Wire, RemoveListenerStopsDelivery) {
  Scheduler s;
  Wire w(s, "w");
  int edges = 0;
  const auto id = w.on_edge([&](Edge, Tick) { ++edges; });
  w.set(true);
  w.remove_listener(id);
  w.set(false);
  EXPECT_EQ(edges, 1);
}

TEST(Wire, ListenerAddedDuringCallbackMissesCurrentEdge) {
  Scheduler s;
  Wire w(s, "w");
  int inner = 0;
  w.on_edge([&](Edge, Tick) {
    w.on_edge([&](Edge, Tick) { ++inner; });
  });
  w.set(true);
  EXPECT_EQ(inner, 0);
  w.set(false);
  EXPECT_EQ(inner, 1);  // one listener added on the first edge sees this one
}

TEST(Connect, ZeroDelayCopiesImmediately) {
  Scheduler s;
  Wire a(s, "a"), b(s, "b");
  auto conn = connect(a, b);
  a.set(true);
  EXPECT_TRUE(b.level());
  a.set(false);
  EXPECT_FALSE(b.level());
}

TEST(Connect, SynchronizesInitialLevel) {
  Scheduler s;
  Wire a(s, "a", true), b(s, "b", false);
  auto conn = connect(a, b);
  EXPECT_TRUE(b.level());
}

TEST(Connect, DelayDefersPropagation) {
  Scheduler s;
  Wire a(s, "a"), b(s, "b");
  auto conn = connect(a, b, ns(13));
  a.set(true);
  EXPECT_FALSE(b.level());
  s.run_until(12);
  EXPECT_FALSE(b.level());
  s.run_until(13);
  EXPECT_TRUE(b.level());
}

TEST(Connect, DisconnectStopsForwarding) {
  Scheduler s;
  Wire a(s, "a"), b(s, "b");
  auto conn = connect(a, b);
  a.set(true);
  conn.disconnect();
  a.set(false);
  EXPECT_TRUE(b.level());  // b keeps its last level
}

TEST(Connect, ConnectionDestructorDisconnects) {
  Scheduler s;
  Wire a(s, "a"), b(s, "b");
  {
    auto conn = connect(a, b);
    a.set(true);
  }
  a.set(false);
  EXPECT_TRUE(b.level());
}

TEST(AnalogChannel, DeliversEveryUpdate) {
  Scheduler s;
  AnalogChannel c(s, "adc", 1.0);
  std::vector<double> seen;
  c.on_change([&](double v, Tick) { seen.push_back(v); });
  c.set(2.0);
  c.set(2.0);  // analog updates always notify (sampled semantics)
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(c.value(), 2.0);
}

TEST(TraceRecorder, CountsEdgesAndMeasuresPulses) {
  Scheduler s;
  Wire w(s, "w");
  TraceRecorder trace(w);
  // Two pulses: 1 us wide, 5 us apart.
  s.schedule_at(us(10), [&] { w.set(true); });
  s.schedule_at(us(11), [&] { w.set(false); });
  s.schedule_at(us(15), [&] { w.set(true); });
  s.schedule_at(us(16), [&] { w.set(false); });
  s.run_all();
  EXPECT_EQ(trace.rising_edges(), 2u);
  EXPECT_EQ(trace.falling_edges(), 2u);
  EXPECT_EQ(trace.min_high_pulse(), us(1));
  EXPECT_EQ(trace.min_low_pulse(), us(4));
  EXPECT_EQ(trace.min_period(), us(5));
  EXPECT_DOUBLE_EQ(trace.max_frequency_hz(), 200'000.0);
  EXPECT_EQ(trace.transitions().size(), 4u);
}

TEST(TraceRecorder, StatisticsOnlyModeKeepsNoLog) {
  Scheduler s;
  Wire w(s, "w");
  TraceRecorder trace(w, /*keep_transitions=*/false);
  w.set(true);
  w.set(false);
  EXPECT_TRUE(trace.transitions().empty());
  EXPECT_EQ(trace.rising_edges(), 1u);
}

TEST(DutyMeter, MeasuresFiftyPercent) {
  Scheduler s;
  Wire w(s, "pwm");
  DutyMeter meter(w);
  // 10 ms window: high for 5 ms.
  s.schedule_at(ms(0) + 1, [&] { w.set(true); });
  s.schedule_at(ms(5) + 1, [&] { w.set(false); });
  s.run_until(ms(10));
  EXPECT_NEAR(meter.sample(), 0.5, 0.01);
}

TEST(DutyMeter, HandlesAlwaysHighAndAlwaysLow) {
  Scheduler s;
  Wire w(s, "pwm");
  DutyMeter meter(w);
  s.run_until(ms(10));
  EXPECT_DOUBLE_EQ(meter.sample(), 0.0);
  w.set(true);
  s.run_until(ms(20));
  EXPECT_NEAR(meter.sample(), 1.0, 1e-9);
}

TEST(DutyMeter, ResetsBetweenSamples) {
  Scheduler s;
  Wire w(s, "pwm");
  DutyMeter meter(w);
  w.set(true);
  s.run_until(ms(10));
  (void)meter.sample();  // reset the window
  w.set(false);
  s.run_until(ms(20));
  EXPECT_NEAR(meter.sample(), 0.0, 0.01);
}

// --- Listener compaction --------------------------------------------------

TEST(WireCompaction, RepeatedConnectDisconnectKeepsStorageBounded) {
  Scheduler s;
  Wire src(s, "src");
  Wire dst(s, "dst");
  // Jumper re-routing in a long session: thousands of connect/disconnect
  // cycles must not grow the listener vector (or the per-edge scan)
  // without bound.
  for (int i = 0; i < 10'000; ++i) {
    Connection c = connect(src, dst);
    c.disconnect();
  }
  EXPECT_LE(src.listener_slots(), 2u);
  EXPECT_EQ(src.live_listeners(), 0u);

  // The wire still delivers edges to a fresh connection afterwards.
  Connection c = connect(src, dst);
  src.set(true);
  EXPECT_TRUE(dst.level());
}

TEST(WireCompaction, MixedLiveAndDeadListenersStayNearLiveCount) {
  Scheduler s;
  Wire w(s, "w");
  int persistent_edges = 0;
  w.on_edge([&](Edge, Tick) { ++persistent_edges; });
  for (int i = 0; i < 1'000; ++i) {
    const Wire::ListenerId id = w.on_edge([](Edge, Tick) {});
    w.remove_listener(id);
  }
  // Dead slots are erased once they outnumber the live ones, so storage
  // is bounded by ~2x the live count, not by churn history.
  EXPECT_LE(w.listener_slots(), 3u);
  EXPECT_EQ(w.live_listeners(), 1u);
  w.set(true);
  EXPECT_EQ(persistent_edges, 1);
}

TEST(WireCompaction, RemovalInsideCallbackIsDeferredButApplied) {
  Scheduler s;
  Wire w(s, "w");
  int first_calls = 0, second_calls = 0;
  Wire::ListenerId second_id = 0;
  w.on_edge([&](Edge, Tick) {
    ++first_calls;
    // Remove the *other* listener mid-delivery: its slot is nulled
    // immediately but compaction waits until the edge finishes.
    w.remove_listener(second_id);
  });
  second_id = w.on_edge([&](Edge, Tick) { ++second_calls; });
  w.set(true);
  EXPECT_EQ(first_calls, 1);
  EXPECT_EQ(second_calls, 0);  // nulled before its turn in the same edge
  w.set(false);
  EXPECT_EQ(first_calls, 2);
  EXPECT_EQ(second_calls, 0);
  EXPECT_EQ(w.live_listeners(), 1u);
}

TEST(WireCompaction, SelfRemovalInsideCallbackIsSafe) {
  Scheduler s;
  Wire w(s, "w");
  int one_shot_calls = 0, other_calls = 0;
  Wire::ListenerId self_id = 0;
  self_id = w.on_edge([&](Edge, Tick) {
    ++one_shot_calls;
    w.remove_listener(self_id);
  });
  w.on_edge([&](Edge, Tick) { ++other_calls; });
  w.set(true);
  w.set(false);
  w.set(true);
  EXPECT_EQ(one_shot_calls, 1);
  EXPECT_EQ(other_calls, 3);
}

TEST(WireCompaction, ThrowingListenerDoesNotDisableCompaction) {
  Scheduler s;
  Wire w(s, "w");
  // Regression: an exception escaping a listener used to skip the
  // delivery-depth decrement, leaving compaction disabled forever.
  w.on_edge([](Edge, Tick) { throw std::runtime_error("listener boom"); });
  EXPECT_THROW(w.set(true), std::runtime_error);
  for (int i = 0; i < 1'000; ++i) {
    const Wire::ListenerId id = w.on_edge([](Edge, Tick) {});
    w.remove_listener(id);
  }
  EXPECT_LE(w.listener_slots(), 3u);
  EXPECT_EQ(w.live_listeners(), 1u);
}

TEST(WireCompaction, RemoveListenerIsIdempotent) {
  Scheduler s;
  Wire w(s, "w");
  const Wire::ListenerId id = w.on_edge([](Edge, Tick) {});
  w.remove_listener(id);
  w.remove_listener(id);          // double-remove: no double counting
  w.remove_listener(id + 1000);   // unknown id: no-op
  EXPECT_EQ(w.live_listeners(), 0u);
}

}  // namespace
}  // namespace offramps::sim
