// Scalability smoke: a realistically sized print (not the miniature
// experiment cubes) must simulate quickly, with bounded capture memory
// and all invariants intact - the property that makes this library
// usable for real studies.
#include <gtest/gtest.h>

#include <chrono>

#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::host {
namespace {

TEST(Scalability, TwentyMillimetreCubePrintsInSeconds) {
  SliceProfile profile;
  profile.skirt_loops = 1;
  CubeSpec cube{.size_x_mm = 20, .size_y_mm = 20, .height_mm = 10,
                .center_x_mm = 110, .center_y_mm = 100};
  const gcode::Program program = slice_cube(cube, profile);

  const auto wall_start = std::chrono::steady_clock::now();
  Rig rig;
  const RunResult r = rig.run(program);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ASSERT_TRUE(r.finished);
  // A print of several simulated minutes...
  EXPECT_GT(r.sim_seconds, 300.0);
  // ...simulates in single-digit wall seconds.
  EXPECT_LT(wall_s, 10.0);
  // Millions of events processed.
  EXPECT_GT(r.events_executed, 3'000'000u);
  // Capture memory stays proportional to print time (16 B per 0.1 s).
  EXPECT_LT(r.capture.size(), 10'000u);
  // And the physics still adds up (20 mm part + 3 mm skirt per side).
  EXPECT_NEAR(r.part.bbox_width_mm, 26.0, 0.5);
  EXPECT_EQ(r.part.layer_count, 40u);
  EXPECT_NEAR(r.flow_ratio(), 1.0, 1e-9);
  EXPECT_LT(r.part.max_layer_shift_mm, 0.2);
}

}  // namespace
}  // namespace offramps::host
