// Shared test fixtures: a directly-wired firmware + plant stack (no
// OFFRAMPS board in between) for firmware-level tests, and small g-code
// builders.
#pragma once

#include <string>

#include "fw/firmware.hpp"
#include "gcode/parser.hpp"
#include "plant/printer.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"

namespace offramps::test {

/// Firmware and printer sharing one pin bank - the stock Arduino+RAMPS
/// stack with no intermediary.
struct DirectStack {
  sim::Scheduler sched;
  sim::PinBank bank;
  plant::Printer printer;
  fw::Firmware firmware;

  explicit DirectStack(fw::Config config = {},
                       plant::PrinterParams plant_params = {})
      : bank(sched, "io."),
        printer(sched, bank, plant_params),
        firmware(sched, config, bank) {}

  /// Enqueues a newline-separated script.
  void enqueue(const std::string& program_text) {
    firmware.enqueue_program(gcode::parse_program(program_text));
  }

  /// Starts the firmware and runs the simulation to completion (or until
  /// `max_seconds`).  Returns true if the firmware finished cleanly.
  bool run(double max_seconds = 600.0) {
    firmware.on_finished([this] { sched.request_stop(); });
    firmware.on_killed([this](const std::string&) {
      // Drain shortly after a kill so tests can inspect the aftermath.
      sched.schedule_in(sim::seconds(2), [this] { sched.request_stop(); });
    });
    firmware.start();
    const sim::Tick deadline = sim::from_seconds(max_seconds);
    while (!sched.stop_requested() && !sched.idle() &&
           sched.now() < deadline) {
      sched.run_until(std::min<sim::Tick>(sched.now() + sim::seconds(1),
                                          deadline));
    }
    return firmware.finished();
  }
};

/// A script that heats (fast), homes, and is ready to print.  Keeping the
/// hotend target modest shortens heat-up in thermal-gated tests.
inline std::string preamble(double hotend_c = 210.0) {
  return "G21\nG90\nM82\nM104 S" + std::to_string(hotend_c) +
         "\nM109 S" + std::to_string(hotend_c) + "\nG28\nG92 E0\n";
}

}  // namespace offramps::test
