// Tests for the host-free in-fabric guard (extension addressing the
// paper's standalone-printing limitation).
#include <gtest/gtest.h>

#include "core/fabric_guard.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::core {
namespace {

gcode::Program object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

Capture golden_capture() {
  host::RigOptions options;
  options.firmware.jitter_seed = 1;
  host::Rig rig(options);
  return rig.run(object()).capture;
}

TEST(FabricGuard, CleanPrintNeverAlarms) {
  const Capture golden = golden_capture();
  host::RigOptions options;
  options.firmware.jitter_seed = 777;  // a different physical run
  host::Rig rig(options);
  FabricGuard guard(rig.board().fpga(), golden);
  const host::RunResult r = rig.run(object());
  EXPECT_TRUE(r.finished);
  EXPECT_FALSE(guard.alarmed());
  EXPECT_FALSE(guard.alarm_line().level());
  EXPECT_FALSE(guard.safe_stop_engaged());
  EXPECT_NEAR(r.flow_ratio(), 1.0, 1e-9);
}

TEST(FabricGuard, SafeStopsASabotagedPrintWithNoHost) {
  const Capture golden = golden_capture();
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.85});
  host::RigOptions options;
  options.firmware.jitter_seed = 9;
  host::Rig rig(options);
  FabricGuard guard(rig.board().fpga(), golden);
  const host::RunResult r = rig.run(mutated);

  EXPECT_TRUE(guard.alarmed());
  EXPECT_TRUE(guard.alarm_line().level());
  EXPECT_TRUE(guard.safe_stop_engaged());
  // The alarm fired early in the print.
  EXPECT_LT(guard.alarm_at_index(), golden.size() / 4);
  // Downstream of the stop, commanded steps were dropped at the freed
  // drivers and the part stayed a stub.
  const auto dropped = r.motor_dropped_steps[0] + r.motor_dropped_steps[1] +
                       r.motor_dropped_steps[3];
  EXPECT_GT(dropped, 10'000u);
  EXPECT_LT(r.part.total_filament_mm, 10.0);
  // Heaters were cut: the hotend fell away from its 210 C setpoint while
  // the oblivious firmware kept "printing".
  EXPECT_LT(rig.printer().hotend().temperature_c(), 195.0);
  EXPECT_GT(rig.printer().hotend().temperature_c(), 25.0);
}

TEST(FabricGuard, RecordModeAlarmsButCannotStop) {
  const Capture golden = golden_capture();
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.5});
  host::RigOptions options;
  options.firmware.jitter_seed = 9;
  options.route = core::RouteMode::kFpgaRecord;
  host::Rig rig(options);
  FabricGuard guard(rig.board().fpga(), golden);
  const host::RunResult r = rig.run(mutated);
  EXPECT_TRUE(guard.alarmed());
  EXPECT_TRUE(guard.alarm_line().level());
  EXPECT_FALSE(guard.safe_stop_engaged());  // tap cannot modify
  EXPECT_TRUE(r.finished);                  // the print sailed on
}

TEST(FabricGuard, AlarmOnlyModeLeavesMachineRunning) {
  const Capture golden = golden_capture();
  const auto mutated =
      gcode::flaw3d::apply_reduction(object(), {.factor = 0.5});
  host::RigOptions options;
  options.firmware.jitter_seed = 9;
  host::Rig rig(options);
  FabricGuardOptions gopt;
  gopt.safe_stop = false;
  FabricGuard guard(rig.board().fpga(), golden, gopt);
  const host::RunResult r = rig.run(mutated);
  EXPECT_TRUE(guard.alarmed());
  EXPECT_FALSE(guard.safe_stop_engaged());
  // The machine kept running to the end: a full-height (if starved)
  // part emerged.  Note flow_ratio stays 1.0 - the sabotage is in the
  // g-code, upstream of the signals this ratio measures.
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.part.layer_count, 8u);
  EXPECT_NEAR(r.flow_ratio(), 1.0, 1e-9);
}

TEST(FabricGuard, OutrunningGoldenAlarms) {
  // Guard loaded with a truncated golden model: a longer print
  // eventually outruns it and that alone is anomalous.
  Capture golden = golden_capture();
  golden.transactions.resize(golden.transactions.size() / 2);
  host::RigOptions options;
  options.firmware.jitter_seed = 5;
  host::Rig rig(options);
  FabricGuard guard(rig.board().fpga(), golden);
  rig.run(object());
  EXPECT_TRUE(guard.alarmed());
}

}  // namespace
}  // namespace offramps::core
