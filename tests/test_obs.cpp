// obs:: observability layer: metrics registry semantics, the
// enabled/disabled gate, chrome-trace export, instrumentation of the
// scheduler/detector paths, and the fleet-report byte-identity contract
// (enabling metrics must not change a single byte of the deterministic
// report).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "svc/fleet.hpp"
#include "svc/json.hpp"

namespace offramps {
namespace {

/// Every test leaves the process-wide obs state as it found it:
/// disabled, registry zeroed, no trace session.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    if (obs::TraceSession::active()) obs::TraceSession::stop();
  }
};

TEST_F(ObsTest, CounterGaugeHistogramBasics) {
  obs::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 7);

  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1005.5);
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST_F(ObsTest, RegistryHandlesAreStableAndNamed) {
  obs::Counter& a = obs::Registry::instance().counter("test.stable");
  obs::Counter& b = obs::Registry::instance().counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  // First registration fixes the bounds; later calls return it unchanged.
  obs::Histogram& h1 =
      obs::Registry::instance().histogram("test.h", {1.0, 2.0});
  obs::Histogram& h2 =
      obs::Registry::instance().histogram("test.h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(ObsTest, RegistryJsonIsValidAndDeterministic) {
  obs::Registry::instance().counter("zz.last").add(2);
  obs::Registry::instance().counter("aa.first").add(1);
  obs::Registry::instance().gauge("mid.gauge").set(-5);
  obs::Registry::instance().histogram("mid.hist", {1.0}).observe(0.5);

  const std::string text = obs::Registry::instance().to_json();
  const svc::json::Value doc = svc::json::parse(text);
  ASSERT_TRUE(doc.is_object());
  const svc::json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  // Sorted iteration: aa.first renders before zz.last.
  EXPECT_LT(text.find("aa.first"), text.find("zz.last"));
  EXPECT_EQ(counters->number_or("aa.first", -1.0), 1.0);
  EXPECT_EQ(counters->number_or("zz.last", -1.0), 2.0);

  const svc::json::Value* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const svc::json::Value* mid = gauges->find("mid.gauge");
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->number_or("value", 0.0), -5.0);

  const svc::json::Value* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const svc::json::Value* h = hists->find("mid.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->number_or("count", 0.0), 1.0);

  // Same registrations, same document.
  EXPECT_EQ(obs::Registry::instance().to_json(), text);
}

TEST_F(ObsTest, DisabledGateSuppressesSchedulerInstrumentation) {
  ASSERT_FALSE(obs::enabled());
  sim::Scheduler sched;
  for (int i = 0; i < 32; ++i) {
    sched.schedule_in(sim::Tick(i + 1), [] {});
  }
  sched.run_all();
  // The counter may not even exist yet; if it does it must read zero.
  EXPECT_EQ(obs::Registry::instance().counter("sim.scheduler.events").value(),
            0u);
}

TEST_F(ObsTest, EnabledSchedulerRecordsEventsDepthAndLatency) {
  obs::set_enabled(true);
  ASSERT_TRUE(obs::enabled());
  // Time every callback for this test (the production default samples
  // the wall-clock histogram 1-in-64; counts and depth are always exact).
  const auto prev_sample = obs::latency_sample_every();
  obs::set_latency_sample_every(1);
  sim::Scheduler sched;
  for (int i = 0; i < 100; ++i) {
    sched.schedule_in(sim::Tick(i + 1), [] {});
  }
  sched.run_all();
  obs::set_latency_sample_every(prev_sample);
  obs::set_enabled(false);

  EXPECT_EQ(obs::Registry::instance().counter("sim.scheduler.events").value(),
            100u);
  // All 100 events were queued up-front, so the depth high-water saw them.
  EXPECT_EQ(obs::Registry::instance().gauge("sim.scheduler.queue_depth").max(),
            100);
  EXPECT_EQ(obs::Registry::instance()
                .histogram("sim.scheduler.callback_us",
                           obs::latency_buckets_us())
                .count(),
            100u);
}

TEST_F(ObsTest, LatencySamplingThinsHistogramButNotCounters) {
  obs::set_enabled(true);
  const auto prev_sample = obs::latency_sample_every();
  obs::set_latency_sample_every(10);
  sim::Scheduler sched;
  for (int i = 0; i < 100; ++i) {
    sched.schedule_in(sim::Tick(i + 1), [] {});
  }
  sched.run_all();
  obs::set_latency_sample_every(prev_sample);
  obs::set_enabled(false);

  // Counter stays exact under sampling; the wall-clock histogram takes
  // 1-in-10 observations (the first event is always sampled).
  EXPECT_EQ(obs::Registry::instance().counter("sim.scheduler.events").value(),
            100u);
  EXPECT_EQ(obs::Registry::instance()
                .histogram("sim.scheduler.callback_us",
                           obs::latency_buckets_us())
                .count(),
            10u);
}

TEST_F(ObsTest, SpansAreInertWithoutASession) {
  const std::size_t before = obs::TraceSession::event_count();
  {
    obs::Span span("ignored", "test");
  }
  EXPECT_EQ(obs::TraceSession::event_count(), before);
}

TEST_F(ObsTest, TraceSessionEmitsValidTraceEventFormat) {
  obs::TraceSession::start();
  {
    obs::Span outer("phase-a", "test");
    obs::Span inner("phase-b", "test");
  }
  obs::TraceSession::stop();
  {
    // Recorded after stop()? No: spans constructed after stop are inert,
    // and these two were armed before it fired at destruction order.
    obs::Span late("late", "test");
  }
  EXPECT_EQ(obs::TraceSession::event_count(), 2u);

  const std::string text = obs::TraceSession::to_json();
  const svc::json::Value doc = svc::json::parse(text);
  ASSERT_TRUE(doc.is_object());
  const svc::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata event plus the two spans.
  ASSERT_GE(events->items.size(), 3u);
  bool saw_a = false;
  bool saw_b = false;
  for (const svc::json::Value& ev : events->items) {
    ASSERT_TRUE(ev.is_object());
    const std::string ph = ev.string_or("ph", "");
    EXPECT_TRUE(ph == "X" || ph == "M") << ph;
    if (ev.string_or("name", "") == "phase-a") {
      saw_a = true;
      EXPECT_EQ(ph, "X");
      EXPECT_GE(ev.number_or("dur", -1.0), 0.0);
      EXPECT_GE(ev.number_or("ts", -1.0), 0.0);
      EXPECT_EQ(ev.string_or("cat", ""), "test");
    }
    if (ev.string_or("name", "") == "phase-b") saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(ObsTest, TraceNamesAreEscaped) {
  obs::TraceSession::start();
  {
    obs::Span span("quote\"back\\slash", "test");
  }
  obs::TraceSession::stop();
  const std::string text = obs::TraceSession::to_json();
  EXPECT_NO_THROW(svc::json::parse(text));
  EXPECT_NE(text.find("quote\\\"back\\\\slash"), std::string::npos);
}

/// A fleet small enough for a unit test: two rigs, one sabotaged.
std::vector<svc::RigSpec> tiny_fleet() {
  std::vector<svc::RigSpec> specs = svc::Fleet::demo_specs(2, 1);
  for (auto& s : specs) {
    s.cube_mm = 6.0;
    s.height_mm = 2.0;
  }
  return specs;
}

svc::FleetOptions tiny_options(std::size_t workers) {
  svc::FleetOptions options;
  options.workers = workers;
  options.channels = svc::ChannelSet{}.counts_only();  // keeps the tiny fleet fast
  return options;
}

TEST_F(ObsTest, FleetReportByteIdenticalWithMetricsEnabled) {
  const std::vector<svc::RigSpec> specs = tiny_fleet();

  svc::Fleet plain(tiny_options(1));
  const std::string baseline = plain.run(specs).to_json();

  obs::set_enabled(true);
  svc::Fleet instrumented1(tiny_options(1));
  const svc::FleetReport r1 = instrumented1.run(specs);
  svc::Fleet instrumented4(tiny_options(4));
  const svc::FleetReport r4 = instrumented4.run(specs);
  obs::set_enabled(false);

  EXPECT_EQ(r1.to_json(), baseline);
  EXPECT_EQ(r4.to_json(), baseline);

  // The metrics ride in a separate section; an empty section is the
  // plain document byte for byte.
  EXPECT_EQ(r4.to_json_with_metrics(""), baseline);
  const std::string with = r4.to_json_with_metrics(r4.metrics_json());
  EXPECT_NE(with, baseline);
  const svc::json::Value doc = svc::json::parse(with);
  ASSERT_TRUE(doc.is_object());
  const svc::json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  const svc::json::Value* phases = metrics->find("phases");
  ASSERT_NE(phases, nullptr);
  // Deterministic phase keys: one reference object, rigs by name.
  EXPECT_NE(phases->find("reference/0"), nullptr);
  EXPECT_NE(phases->find("rig/rig-0"), nullptr);
  EXPECT_NE(phases->find("rig/rig-1"), nullptr);
  const svc::json::Value* registry = metrics->find("registry");
  ASSERT_NE(registry, nullptr);
  const svc::json::Value* counters = registry->find("counters");
  ASSERT_NE(counters, nullptr);
  // The instrumented run drove the scheduler and detector counters.
  EXPECT_GT(counters->number_or("sim.scheduler.events", 0.0), 0.0);
  EXPECT_GT(counters->number_or("svc.detector.windows", 0.0), 0.0);
}

TEST_F(ObsTest, FleetTimingsCoverEveryPhaseEvenWhenDisabled) {
  ASSERT_FALSE(obs::enabled());
  svc::Fleet fleet(tiny_options(2));
  const svc::FleetReport report = fleet.run(tiny_fleet());
  ASSERT_EQ(report.timings.size(), 3u);  // 1 object + 2 rigs
  EXPECT_EQ(report.timings[0].name, "reference/0");
  EXPECT_EQ(report.timings[1].name, "rig/rig-0");
  EXPECT_EQ(report.timings[2].name, "rig/rig-1");
  for (const auto& t : report.timings) {
    EXPECT_GE(t.seconds, 0.0) << t.name;
  }
}

}  // namespace
}  // namespace offramps
