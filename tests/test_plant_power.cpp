// Tests for the power-delivery model and brown-out behaviour (the attack
// class the paper's Limitations section names but does not explore).
#include <gtest/gtest.h>

#include "detect/compare.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "plant/power.hpp"

namespace offramps::plant {
namespace {

TEST(PowerRail, TracksVoltageAndMinimum) {
  PowerRail rail("24V", 24.0);
  EXPECT_DOUBLE_EQ(rail.volts(), 24.0);
  EXPECT_DOUBLE_EQ(rail.level(), 1.0);
  rail.set_volts(18.0);
  EXPECT_DOUBLE_EQ(rail.level(), 0.75);
  rail.restore();
  EXPECT_DOUBLE_EQ(rail.volts(), 24.0);
  EXPECT_DOUBLE_EQ(rail.min_seen_v(), 18.0);
}

TEST(PowerRail, ListenersFireOnChange) {
  PowerRail rail("5V", 5.0);
  double seen = 0.0;
  rail.on_change([&](double v) { seen = v; });
  rail.set_volts(3.0);
  EXPECT_DOUBLE_EQ(seen, 3.0);
}

struct IntegrityFixture : ::testing::Test {
  PowerRail motor{"24V", 24.0};
  PowerRail logic{"5V", 5.0};
  PowerIntegrity power{motor, logic};
};

TEST_F(IntegrityFixture, HealthyRailNeverSkips) {
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(power.step_lost());
  EXPECT_DOUBLE_EQ(power.heater_derate(), 1.0);
  EXPECT_FALSE(power.mcu_brownout());
}

TEST_F(IntegrityFixture, HeaterDeratesQuadratically) {
  motor.set_volts(12.0);  // half voltage
  EXPECT_NEAR(power.heater_derate(), 0.25, 1e-9);
}

TEST_F(IntegrityFixture, DeepSagStallsCompletely) {
  motor.set_volts(24.0 * 0.4);  // below stall level (0.5)
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(power.step_lost());
}

TEST_F(IntegrityFixture, PartialSagSkipsFractionally) {
  motor.set_volts(24.0 * 0.625);  // midway between skip and stall
  int lost = 0;
  for (int i = 0; i < 2000; ++i) lost += power.step_lost() ? 1 : 0;
  EXPECT_GT(lost, 700);   // ~50% expected
  EXPECT_LT(lost, 1300);
}

TEST_F(IntegrityFixture, LogicBrownoutThreshold) {
  logic.set_volts(4.0);  // 80%: fine
  EXPECT_FALSE(power.mcu_brownout());
  logic.set_volts(3.0);  // 60%: reset territory
  EXPECT_TRUE(power.mcu_brownout());
}

// --- End to end through the rig ----------------------------------------------

gcode::Program object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2.5,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

TEST(Brownout, MotorRailSagSkipsStepsAndShiftsPart) {
  host::RigOptions options;
  options.brownout = host::BrownoutScenario{
      .rail = host::BrownoutScenario::Rail::kMotor,
      .start_s = 70.0,  // mid-print (after heat-up + homing)
      .duration_s = 3.0,
      .sag_to_fraction = 0.6};
  host::Rig rig(options);
  const host::RunResult r = rig.run(object());
  EXPECT_TRUE(r.finished);  // open loop: the firmware never knows
  const auto skips = r.undervolt_skips[0] + r.undervolt_skips[1] +
                     r.undervolt_skips[2] + r.undervolt_skips[3];
  EXPECT_GT(skips, 100u);
  // Physical displacement: the motors fell behind the commanded counts.
  EXPECT_NE(r.motor_steps[0] + r.motor_steps[1],
            r.commanded_steps[0] + r.commanded_steps[1]);
  // The step-count capture is firmware-side: it looks PERFECT.  This is
  // the paper's acknowledged detection gap for power attacks.
  host::Rig golden_rig;
  const host::RunResult golden = golden_rig.run(object());
  EXPECT_FALSE(
      detect::compare(golden.capture, r.capture).trojan_likely);
}

TEST(Brownout, LogicRailSagKillsTheController) {
  host::RigOptions options;
  options.brownout = host::BrownoutScenario{
      .rail = host::BrownoutScenario::Rail::kLogic,
      .start_s = 70.0,
      .duration_s = 1.0,
      .sag_to_fraction = 0.5};
  host::Rig rig(options);
  const host::RunResult r = rig.run(object());
  EXPECT_FALSE(r.finished);
  EXPECT_TRUE(r.killed);
  EXPECT_NE(r.kill_reason.find("brown-out"), std::string::npos);
}

TEST(Brownout, HealthyRunIsUnaffectedByPowerModel) {
  // The power model must be inert at nominal voltage: identical finals
  // with and without a (non-firing) brownout hook.
  host::Rig a, b;
  const host::RunResult ra = a.run(object());
  const host::RunResult rb = b.run(object());
  EXPECT_EQ(ra.capture.final_counts, rb.capture.final_counts);
  EXPECT_EQ(ra.undervolt_skips[0], 0u);
}

TEST(Brownout, UndervoltSlowsHeating) {
  // Sag the motor/heater rail during heat-up: the PID fights a weaker
  // heater, delaying (or failing) temperature arrival.
  host::RigOptions sag_opts;
  sag_opts.brownout = host::BrownoutScenario{
      .rail = host::BrownoutScenario::Rail::kMotor,
      .start_s = 5.0,
      .duration_s = 25.0,
      .sag_to_fraction = 0.7};  // 49% heater power
  host::Rig sagged(sag_opts);
  const host::RunResult rs = sagged.run(object());

  host::Rig healthy;
  const host::RunResult rh = healthy.run(object());
  // Both eventually finish, but the sagged run took longer in total.
  EXPECT_TRUE(rh.finished);
  EXPECT_TRUE(rs.finished);
  EXPECT_GT(rs.sim_seconds, rh.sim_seconds + 5.0);
}

}  // namespace
}  // namespace offramps::plant
