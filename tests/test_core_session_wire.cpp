// core::wire: the rig-session stream format.  Round-trips every frame
// type through the recorder and the incremental bounded reader, pins the
// concatenated-stream split contract (short feed() return exactly at
// kEnd), and drives the damage paths: outer-framing corruption must
// resync and be counted, inner-CRC damage must drop just that
// transaction, truncation must classify as a disconnect, and a lying
// length prefix must never cause an allocation or an over-read.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "core/session_wire.hpp"
#include "sim/error.hpp"

namespace {

using offramps::Error;
using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::core::wire::Frame;
using offramps::core::wire::FrameReader;
using offramps::core::wire::FrameType;
using offramps::core::wire::list_corpus_files;
using offramps::core::wire::list_session_corpus;
using offramps::core::wire::SessionHello;
using offramps::core::wire::SessionMeta;
using offramps::core::wire::SessionRecorder;

Transaction sample_txn(std::uint32_t i) {
  Transaction t;
  t.index = i;
  t.counts = {static_cast<std::int32_t>(3 * i), static_cast<std::int32_t>(i),
              0, static_cast<std::int32_t>(2 * i)};
  t.time_ns = 1'000'000ull * (i + 1);
  return t;
}

Capture sample_capture(std::size_t n) {
  Capture cap;
  cap.label = "wire-test";
  cap.print_completed = true;
  for (std::size_t i = 0; i < n; ++i) {
    cap.transactions.push_back(sample_txn(static_cast<std::uint32_t>(i)));
  }
  cap.final_counts = {30, 10, 0, 20};
  return cap;
}

/// One full session: hello, 4 txns with slots, 2 power samples, finish,
/// end - the exact event mix a live rig records.
std::vector<std::uint8_t> sample_stream() {
  SessionRecorder rec;
  rec.hello({.rig_index = 3,
             .seed = 77,
             .cube_mm = 6.0,
             .height_mm = 1.5,
             .name = "wire-rig",
             .sabotage = "reduce:0.5",
             .chaos = "none"});
  for (std::uint32_t i = 0; i < 4; ++i) {
    rec.txn(sample_txn(i));
    rec.slot();
  }
  rec.power(0.5, 11.25);
  rec.power(1.0, 12.5);
  rec.finish(sample_capture(4));
  rec.end({.print_finished = true,
           .safe_stopped = false,
           .sim_seconds = 12.75,
           .final_counts = {9, 3, 0, 6}});
  return rec.bytes();
}

/// Collects every decoded frame for structural assertions.
std::vector<Frame> parse_all(FrameReader& reader,
                             const std::vector<std::uint8_t>& bytes,
                             std::size_t* used_out = nullptr) {
  std::vector<Frame> frames;
  const std::size_t used = reader.feed(
      bytes.data(), bytes.size(), [&](const Frame& f) { frames.push_back(f); });
  if (used_out != nullptr) *used_out = used;
  return frames;
}

TEST(SessionWire, RoundTripWholeBuffer) {
  const std::vector<std::uint8_t> bytes = sample_stream();
  FrameReader reader;
  std::size_t used = 0;
  const std::vector<Frame> frames = parse_all(reader, bytes, &used);

  EXPECT_EQ(used, bytes.size());
  EXPECT_TRUE(reader.ended());
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.resyncs(), 0u);
  EXPECT_EQ(reader.corrupt_txns(), 0u);

  // hello, (txn, slot) x 4, power x 2, finish, end.
  ASSERT_EQ(frames.size(), 13u);
  ASSERT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].hello.rig_index, 3u);
  EXPECT_EQ(frames[0].hello.seed, 77u);
  EXPECT_DOUBLE_EQ(frames[0].hello.cube_mm, 6.0);
  EXPECT_DOUBLE_EQ(frames[0].hello.height_mm, 1.5);
  EXPECT_EQ(frames[0].hello.name, "wire-rig");
  EXPECT_EQ(frames[0].hello.sabotage, "reduce:0.5");
  EXPECT_EQ(frames[0].hello.chaos, "none");

  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(frames[1 + 2 * i].type, FrameType::kTxn);
    const Transaction& txn = frames[1 + 2 * i].txn;
    EXPECT_EQ(txn.index, i);
    EXPECT_EQ(txn.counts, sample_txn(i).counts);
    EXPECT_EQ(txn.time_ns, sample_txn(i).time_ns);
    EXPECT_EQ(frames[2 + 2 * i].type, FrameType::kSlot);
  }

  ASSERT_EQ(frames[9].type, FrameType::kPower);
  EXPECT_DOUBLE_EQ(frames[9].power_t_s, 0.5);
  EXPECT_DOUBLE_EQ(frames[9].power_watts, 11.25);
  ASSERT_EQ(frames[10].type, FrameType::kPower);
  EXPECT_DOUBLE_EQ(frames[10].power_t_s, 1.0);

  ASSERT_EQ(frames[11].type, FrameType::kFinish);
  const Capture finish =
      Capture::from_binary(frames[11].finish.data(), frames[11].finish.size());
  EXPECT_EQ(finish.size(), 4u);
  EXPECT_EQ(finish.final_counts, sample_capture(4).final_counts);

  ASSERT_EQ(frames[12].type, FrameType::kEnd);
  EXPECT_TRUE(frames[12].end.print_finished);
  EXPECT_FALSE(frames[12].end.safe_stopped);
  EXPECT_DOUBLE_EQ(frames[12].end.sim_seconds, 12.75);
  EXPECT_EQ(frames[12].end.final_counts,
            (std::array<std::int64_t, 4>{9, 3, 0, 6}));
}

TEST(SessionWire, ByteAtATimeFeedMatchesWholeBuffer) {
  const std::vector<std::uint8_t> bytes = sample_stream();
  FrameReader reader;
  std::vector<FrameType> types;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t used = reader.feed(
        bytes.data() + off, 1, [&](const Frame& f) { types.push_back(f.type); });
    if (used == 0) break;  // ended: leftover belongs to a later stream
    off += used;
  }
  EXPECT_EQ(off, bytes.size());
  EXPECT_TRUE(reader.ended());
  ASSERT_EQ(types.size(), 13u);
  EXPECT_EQ(types.front(), FrameType::kHello);
  EXPECT_EQ(types.back(), FrameType::kEnd);
}

TEST(SessionWire, ConcatenatedStreamsSplitExactlyAtEnd) {
  const std::vector<std::uint8_t> one = sample_stream();
  std::vector<std::uint8_t> two = one;
  two.insert(two.end(), one.begin(), one.end());

  FrameReader first;
  std::size_t frames_a = 0;
  const std::size_t used_a =
      first.feed(two.data(), two.size(), [&](const Frame&) { ++frames_a; });
  EXPECT_EQ(used_a, one.size()) << "must stop consuming at the first kEnd";
  EXPECT_TRUE(first.ended());
  EXPECT_EQ(frames_a, 13u);

  // An ended reader consumes nothing further.
  EXPECT_EQ(first.feed(two.data() + used_a, two.size() - used_a,
                       [](const Frame&) { FAIL() << "ended reader emitted"; }),
            0u);

  // The leftover is a complete second session for a fresh reader.
  FrameReader second;
  std::size_t frames_b = 0;
  const std::size_t used_b = second.feed(
      two.data() + used_a, two.size() - used_a, [&](const Frame&) { ++frames_b; });
  EXPECT_EQ(used_b, one.size());
  EXPECT_TRUE(second.ended());
  EXPECT_EQ(frames_b, 13u);
}

TEST(SessionWire, CloseBeforeEndIsDisconnect) {
  std::vector<std::uint8_t> bytes = sample_stream();
  bytes.resize(bytes.size() / 2);
  FrameReader reader;
  const std::size_t used =
      reader.feed(bytes.data(), bytes.size(), [](const Frame&) {});
  EXPECT_EQ(used, bytes.size()) << "a live reader buffers partial frames";
  EXPECT_FALSE(reader.ended());
  reader.close();
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("disconnected"), std::string::npos)
      << reader.error();
}

TEST(SessionWire, BadStreamHeaderFailsNotResyncs) {
  std::vector<std::uint8_t> bytes = sample_stream();
  bytes[0] = 'X';
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size(),
              [](const Frame&) { FAIL() << "no frames from a bad header"; });
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("magic"), std::string::npos) << reader.error();
}

TEST(SessionWire, VersionSkewIsRejected) {
  std::vector<std::uint8_t> bytes = sample_stream();
  bytes[4] ^= 0x01;  // u16 version, little endian
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size(), [](const Frame&) {});
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("version"), std::string::npos)
      << reader.error();
}

/// Byte offset where the frame after the hello starts, computed by
/// recording the same hello sample_stream() uses.
std::size_t offset_after_hello() {
  SessionRecorder rec;
  rec.hello({.rig_index = 3,
             .seed = 77,
             .cube_mm = 6.0,
             .height_mm = 1.5,
             .name = "wire-rig",
             .sabotage = "reduce:0.5",
             .chaos = "none"});
  return rec.bytes().size();
}

TEST(SessionWire, OuterFramingDamageResyncsAndIsCounted) {
  std::vector<std::uint8_t> bytes = sample_stream();
  // Smash the outer magic of the second frame (the first kTxn).
  const std::size_t second_frame = offset_after_hello();
  ASSERT_LT(second_frame + 1, bytes.size());
  ASSERT_EQ(bytes[second_frame], 0xA7);  // kFrameMagic, little endian
  ASSERT_EQ(bytes[second_frame + 1], 0xF5);
  bytes[second_frame] = 0x00;
  bytes[second_frame + 1] = 0x00;

  FrameReader reader;
  std::size_t txns = 0;
  reader.feed(bytes.data(), bytes.size(), [&](const Frame& f) {
    if (f.type == FrameType::kTxn) ++txns;
  });
  EXPECT_TRUE(reader.ended()) << "the hunt must find the next frame";
  EXPECT_FALSE(reader.failed());
  EXPECT_GE(reader.resyncs(), 1u);
  EXPECT_LT(txns, 4u) << "the frame under the damaged header is gone";
}

TEST(SessionWire, InnerCrcDamageDropsJustThatTransaction) {
  std::vector<std::uint8_t> bytes = sample_stream();
  // Flip a counts byte inside the first kTxn's embedded Transaction
  // frame: outer framing stays valid, the inner CRC rejects it.
  const std::size_t payload = offset_after_hello() + 7;
  bytes[payload + 8] ^= 0xFF;

  FrameReader reader;
  std::size_t txns = 0;
  std::size_t used = 0;
  used = reader.feed(bytes.data(), bytes.size(), [&](const Frame& f) {
    if (f.type == FrameType::kTxn) ++txns;
  });
  EXPECT_EQ(used, bytes.size());
  EXPECT_TRUE(reader.ended());
  EXPECT_EQ(reader.corrupt_txns(), 1u);
  EXPECT_EQ(reader.resyncs(), 0u) << "outer framing was intact";
  EXPECT_EQ(txns, 3u);
}

TEST(SessionWire, LyingLengthPrefixIsBoundedNotAllocated) {
  // A hand-built frame claiming a ~1 GiB hello payload: the per-type cap
  // must reject it (resync hunt) before any allocation happens.
  std::vector<std::uint8_t> bytes;
  offramps::core::wire::append_stream_header(bytes);
  bytes.push_back(0xA7);
  bytes.push_back(0xF5);
  bytes.push_back(static_cast<std::uint8_t>(FrameType::kHello));
  const std::uint32_t lie = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>((lie >> (8 * i)) & 0xFF));
  }
  for (int i = 0; i < 64; ++i) bytes.push_back(0xEE);
  // Then a valid end frame the hunt can land on.
  offramps::core::wire::append_end(bytes, SessionMeta{});

  FrameReader reader;
  std::size_t ends = 0;
  reader.feed(bytes.data(), bytes.size(), [&](const Frame& f) {
    if (f.type == FrameType::kEnd) ++ends;
  });
  EXPECT_TRUE(reader.ended());
  EXPECT_GE(reader.resyncs(), 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(SessionWire, SaveWritesReloadableStream) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "wire_save.ofs").string();
  SessionRecorder rec;
  rec.hello({.rig_index = 0,
             .seed = 1,
             .cube_mm = 8.0,
             .height_mm = 3.0,
             .name = "saved",
             .sabotage = "clean",
             .chaos = "none"});
  rec.end(SessionMeta{});
  rec.save(path);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, rec.bytes());
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size(), [](const Frame&) {});
  EXPECT_TRUE(reader.ended());
  std::filesystem::remove(path);
}

TEST(SessionWire, ListCorpusFilesSortsAndFilters) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "wire_corpus_ls";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const char* name : {"bravo.ofs", "alpha.ofs", "notes.txt"}) {
    std::ofstream(dir / name) << "x";
  }
  std::filesystem::create_directories(dir / "sub.ofs");  // not a file

  const std::vector<std::string> files = list_session_corpus(dir.string());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("alpha.ofs"), std::string::npos);
  EXPECT_NE(files[1].find("bravo.ofs"), std::string::npos);

  EXPECT_THROW(list_corpus_files((dir / "missing").string(), ".ofs"), Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
