// Unit tests for the slicer-lite g-code generators.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gcode/stats.hpp"
#include "host/slicer.hpp"
#include "sim/error.hpp"

namespace offramps::host {
namespace {

using gcode::analyze;
using gcode::Statistics;

TEST(SliceProfile, EPerMmMatchesGeometry) {
  SliceProfile p;
  // 0.25 * 0.45 / (pi * 0.875^2) ~= 0.0468
  EXPECT_NEAR(p.e_per_mm(), 0.0468, 0.001);
}

TEST(StartSequence, HeatsHomesAndPrimes) {
  SliceProfile p;
  const auto program = start_sequence(p);
  bool saw_m109 = false, saw_g28 = false, saw_prime = false;
  bool m109_before_g28 = false;
  for (const auto& cmd : program) {
    if (cmd.is('M', 109)) {
      saw_m109 = true;
      m109_before_g28 = !saw_g28;
    }
    if (cmd.is('G', 28)) saw_g28 = true;
    if (cmd.is('G', 1) && cmd.has('E') && !cmd.has('X')) saw_prime = true;
  }
  EXPECT_TRUE(saw_m109);
  EXPECT_TRUE(saw_g28);
  EXPECT_TRUE(saw_prime);
  EXPECT_TRUE(m109_before_g28);
}

TEST(StartSequence, BedCommandsOnlyWhenBedEnabled) {
  SliceProfile cold;
  cold.bed_temp_c = 0.0;
  for (const auto& cmd : start_sequence(cold)) {
    EXPECT_FALSE(cmd.is('M', 190));
  }
  SliceProfile warm;
  warm.bed_temp_c = 60.0;
  bool saw_m190 = false;
  for (const auto& cmd : start_sequence(warm)) {
    if (cmd.is('M', 190)) saw_m190 = true;
  }
  EXPECT_TRUE(saw_m190);
}

TEST(EndSequence, ShutsEverythingDown) {
  SliceProfile p;
  const auto program = end_sequence(p);
  bool hotend_off = false, fan_off = false, motors_off = false;
  for (const auto& cmd : program) {
    if (cmd.is('M', 104) && cmd.value_or('S', -1.0) == 0.0) {
      hotend_off = true;
    }
    if (cmd.is('M', 107)) fan_off = true;
    if (cmd.is('M', 84)) motors_off = true;
  }
  EXPECT_TRUE(hotend_off);
  EXPECT_TRUE(fan_off);
  EXPECT_TRUE(motors_off);
}

TEST(SliceCube, FootprintAndLayersMatchSpec) {
  SliceProfile p;
  CubeSpec cube{.size_x_mm = 12, .size_y_mm = 8, .height_mm = 3,
                .center_x_mm = 100, .center_y_mm = 90};
  const Statistics s = analyze(slice_cube(cube, p));
  EXPECT_NEAR(s.extrusion_bbox.width(), 12.0, 1e-6);
  EXPECT_NEAR(s.extrusion_bbox.depth(), 8.0, 1e-6);
  EXPECT_NEAR(s.extrusion_bbox.min_x, 94.0, 1e-6);
  EXPECT_EQ(s.layer_z.size(), 12u);  // 3 / 0.25
  EXPECT_NEAR(s.max_z, 8.0, 1e-6);  // includes the end-sequence lift
}

TEST(SliceCube, ExtrusionMatchesPathGeometry) {
  SliceProfile p;
  CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 2,
                .center_x_mm = 100, .center_y_mm = 90};
  const Statistics s = analyze(slice_cube(cube, p));
  // Total filament tracks extrusion path length times e_per_mm (plus
  // prime, minus nothing else).
  EXPECT_NEAR(s.extruded_mm,
              s.extrusion_path_mm * p.e_per_mm() + p.prime_e_mm +
                  s.retracted_mm,
              s.extruded_mm * 0.05);
}

TEST(SliceCube, FanTurnsOnAtConfiguredLayer) {
  SliceProfile p;
  p.fan_from_layer = 2;
  CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 2,
                .center_x_mm = 100, .center_y_mm = 90};
  const auto program = slice_cube(cube, p);
  // The M106 must appear after the first layer's Z move (0.25) and before
  // the third layer's (0.75).
  double z_at_fan_on = -1.0;
  double current_z = 0.0;
  for (const auto& cmd : program) {
    if (cmd.is('G', 1) && cmd.has('Z')) current_z = *cmd.get('Z');
    if (cmd.is('M', 106) && cmd.value_or('S', 0.0) > 0.0 &&
        z_at_fan_on < 0.0) {
      z_at_fan_on = current_z;
    }
  }
  EXPECT_NEAR(z_at_fan_on, 0.5, 1e-6);
}

TEST(SliceCube, DegenerateSpecThrows) {
  SliceProfile p;
  CubeSpec bad{.size_x_mm = 0, .size_y_mm = 10, .height_mm = 2,
               .center_x_mm = 100, .center_y_mm = 90};
  EXPECT_THROW(slice_cube(bad, p), offramps::Error);
}

TEST(SliceSquare, SingleWallHasNoInfill) {
  SliceProfile p;
  SquareSpec spec{.size_mm = 20, .height_mm = 2, .center_x_mm = 100,
                  .center_y_mm = 90};
  const Statistics s = analyze(slice_square(spec, p));
  // Per layer: one 80 mm loop.
  const double per_layer = s.extrusion_path_mm / 8.0;  // 8 layers
  EXPECT_NEAR(per_layer, 80.0, 1.0);
}

TEST(SliceCylinder, PolygonPerimeterApproximatesCircle) {
  SliceProfile p;
  CylinderSpec spec{.diameter_mm = 20, .height_mm = 1, .facets = 64,
                    .center_x_mm = 100, .center_y_mm = 90};
  const Statistics s = analyze(slice_cylinder(spec, p));
  const double per_layer = s.extrusion_path_mm / 4.0;  // 4 layers
  EXPECT_NEAR(per_layer, std::numbers::pi * 20.0, 0.5);
  EXPECT_NEAR(s.extrusion_bbox.width(), 20.0, 0.1);
}

TEST(SliceCylinder, TooFewFacetsThrows) {
  SliceProfile p;
  CylinderSpec spec{.diameter_mm = 20, .height_mm = 1, .facets = 2,
                    .center_x_mm = 100, .center_y_mm = 90};
  EXPECT_THROW(slice_cylinder(spec, p), offramps::Error);
}

TEST(SliceCube, SkirtDrawsOutlinesAroundThePart) {
  SliceProfile with_skirt;
  with_skirt.skirt_loops = 2;
  with_skirt.skirt_gap_mm = 3.0;
  CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 2,
                .center_x_mm = 100, .center_y_mm = 90};
  const Statistics skirted = analyze(slice_cube(cube, with_skirt));
  SliceProfile plain;
  const Statistics bare = analyze(slice_cube(cube, plain));
  // The bounding box grows by the skirt gap on each side...
  EXPECT_NEAR(skirted.extrusion_bbox.width(), 10.0 + 2.0 * 3.45, 0.2);
  // ...and extrusion grows by roughly two outlines' worth.
  EXPECT_GT(skirted.extruded_mm, bare.extruded_mm + 4.0);
  // Zero loops reproduces the original program exactly.
  SliceProfile zero = with_skirt;
  zero.skirt_loops = 0;
  EXPECT_EQ(slice_cube(cube, zero), slice_cube(cube, plain));
}

TEST(Slicer, RetractionsAppearAtLayerChanges) {
  SliceProfile p;
  CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 2,
                .center_x_mm = 100, .center_y_mm = 90};
  const Statistics s = analyze(slice_cube(cube, p));
  // One retract per layer change plus one in the end sequence.
  EXPECT_GE(s.retraction_count, 8u);
  EXPECT_LE(s.retraction_count, 10u);
}

}  // namespace
}  // namespace offramps::host
