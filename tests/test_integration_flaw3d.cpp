// End-to-end Flaw3D detection tests (paper section V-D, Table II): print
// golden, print mutated, compare captures - every Trojan must be
// detected; known-good reprints must not be.
#include <gtest/gtest.h>

#include "detect/compare.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::host {
namespace {

gcode::Program test_object() {
  SliceProfile profile;
  CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                .center_x_mm = 110, .center_y_mm = 100};
  return slice_cube(cube, profile);
}

core::Capture print_capture(const gcode::Program& program,
                            std::uint64_t seed) {
  RigOptions options;
  options.firmware.jitter_seed = seed;
  Rig rig(options);
  RunResult r = rig.run(program);
  EXPECT_TRUE(r.finished);
  return std::move(r.capture);
}

struct Flaw3dFixture : ::testing::Test {
  static core::Capture* golden;  // shared across cases: one golden print

  static void SetUpTestSuite() {
    golden = new core::Capture(print_capture(test_object(), /*seed=*/1));
  }
  static void TearDownTestSuite() {
    delete golden;
    golden = nullptr;
  }
};

core::Capture* Flaw3dFixture::golden = nullptr;

TEST_F(Flaw3dFixture, KnownGoodReprintIsNotFlagged) {
  const core::Capture reprint = print_capture(test_object(), /*seed=*/424242);
  const detect::Report rep = detect::compare(*golden, reprint);
  EXPECT_FALSE(rep.trojan_likely) << rep.to_string();
}

TEST_F(Flaw3dFixture, ReductionHalfIsDetected) {
  const auto mutated =
      gcode::flaw3d::apply_reduction(test_object(), {.factor = 0.5});
  const detect::Report rep =
      detect::compare(*golden, print_capture(mutated, 7));
  EXPECT_TRUE(rep.trojan_likely);
  EXPECT_FALSE(rep.mismatches.empty());
}

TEST_F(Flaw3dFixture, StealthiestReductionIsDetected) {
  // Table II case 4: only 2% reduction - structurally invisible, still
  // caught (by the exact final-count check if nothing else).
  const auto mutated =
      gcode::flaw3d::apply_reduction(test_object(), {.factor = 0.98});
  const detect::Report rep =
      detect::compare(*golden, print_capture(mutated, 7));
  EXPECT_TRUE(rep.trojan_likely) << rep.to_string();
}

TEST_F(Flaw3dFixture, RelocationIsDetected) {
  const auto mutated = gcode::flaw3d::apply_relocation(
      test_object(), {.every_n_moves = 20, .take_fraction = 0.15});
  const detect::Report rep =
      detect::compare(*golden, print_capture(mutated, 7));
  EXPECT_TRUE(rep.trojan_likely);
}

TEST_F(Flaw3dFixture, StealthiestRelocationIsDetected) {
  // Table II case 8: relocate every 100 moves.
  const auto mutated = gcode::flaw3d::apply_relocation(
      test_object(), {.every_n_moves = 100, .take_fraction = 0.15});
  const detect::Report rep =
      detect::compare(*golden, print_capture(mutated, 7));
  EXPECT_TRUE(rep.trojan_likely) << rep.to_string();
}

TEST_F(Flaw3dFixture, RealtimeMonitorHaltsAHeavyTrojanEarly) {
  const auto mutated =
      gcode::flaw3d::apply_reduction(test_object(), {.factor = 0.5});
  RigOptions options;
  options.firmware.jitter_seed = 9;
  Rig rig(options);
  const RunResult r = rig.run_monitored(mutated, *golden, {},
                                        /*abort_on_alarm=*/true);
  EXPECT_TRUE(r.monitor_alarmed);
  EXPECT_TRUE(r.aborted_by_monitor);
  EXPECT_TRUE(r.killed);
  // Halted early: material (and machine time) was saved.
  const double golden_e = static_cast<double>((*golden).final_counts[3]);
  EXPECT_LT(static_cast<double>(r.capture.final_counts[3]),
            golden_e * 0.9);
}

TEST_F(Flaw3dFixture, RealtimeMonitorLetsCleanPrintRun) {
  RigOptions options;
  options.firmware.jitter_seed = 31337;
  Rig rig(options);
  const RunResult r = rig.run_monitored(test_object(), *golden, {},
                                        /*abort_on_alarm=*/true);
  EXPECT_FALSE(r.monitor_alarmed);
  EXPECT_TRUE(r.finished);
}

}  // namespace
}  // namespace offramps::host
