// core::strict_parse and every surface that now routes through it: the
// sabotage-spec grammar, the OFFRAMPS_JOBS contract, and the
// locale-independence regression (std::strtod honored LC_NUMERIC, so a
// de_DE process read "0.5" as 0 and stopped at the period).
#include <gtest/gtest.h>

#include <clocale>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/strict_parse.hpp"
#include "host/parallel_runner.hpp"
#include "sim/error.hpp"
#include "svc/fleet.hpp"

namespace offramps {
namespace {

TEST(StrictParse, DoubleAcceptsPlainNumbers) {
  EXPECT_EQ(core::parse_double("0.5"), 0.5);
  EXPECT_EQ(core::parse_double("1"), 1.0);
  EXPECT_EQ(core::parse_double("-2.25"), -2.25);
  EXPECT_EQ(core::parse_double("1e-3"), 1e-3);
  EXPECT_EQ(core::parse_double("2.5E2"), 250.0);
}

TEST(StrictParse, DoubleRejectsGarbageWhitespaceAndNonFinite) {
  EXPECT_FALSE(core::parse_double(""));
  EXPECT_FALSE(core::parse_double("0.5junk"));   // the old atof bug
  EXPECT_FALSE(core::parse_double("0.5 "));
  EXPECT_FALSE(core::parse_double(" 0.5"));
  EXPECT_FALSE(core::parse_double("0,5"));       // locale-styled comma
  EXPECT_FALSE(core::parse_double("0x1p3"));
  EXPECT_FALSE(core::parse_double("nan"));       // passes any range check
  EXPECT_FALSE(core::parse_double("inf"));
  EXPECT_FALSE(core::parse_double("1e999"));     // overflows to infinity
}

TEST(StrictParse, LongAcceptsWholeIntegers) {
  EXPECT_EQ(core::parse_long("8"), 8);
  EXPECT_EQ(core::parse_long("-3"), -3);
  EXPECT_EQ(core::parse_long("007"), 7);
}

TEST(StrictParse, LongRejectsGarbage) {
  EXPECT_FALSE(core::parse_long(""));
  EXPECT_FALSE(core::parse_long("8x"));          // the old strtol bug
  EXPECT_FALSE(core::parse_long("8 "));
  EXPECT_FALSE(core::parse_long(" 8"));
  EXPECT_FALSE(core::parse_long("2.5"));
  EXPECT_FALSE(core::parse_long("0b101"));
  EXPECT_FALSE(core::parse_long("99999999999999999999"));  // out of range
}

TEST(StrictParse, SabotageGrammarAcceptsTheDocumentedForms) {
  EXPECT_EQ(svc::parse_sabotage("").kind, svc::Sabotage::Kind::kNone);
  EXPECT_EQ(svc::parse_sabotage("clean").kind, svc::Sabotage::Kind::kNone);
  EXPECT_EQ(svc::parse_sabotage("none").kind, svc::Sabotage::Kind::kNone);

  const svc::Sabotage reduce = svc::parse_sabotage("reduce:0.85");
  EXPECT_EQ(reduce.kind, svc::Sabotage::Kind::kReduction);
  EXPECT_DOUBLE_EQ(reduce.factor, 0.85);

  const svc::Sabotage relocate = svc::parse_sabotage("relocate:10");
  EXPECT_EQ(relocate.kind, svc::Sabotage::Kind::kRelocation);
  EXPECT_EQ(relocate.every_n, 10u);
}

TEST(StrictParse, SabotageGrammarRejectsMalformedSpecs) {
  EXPECT_THROW(svc::parse_sabotage("bogus"), Error);
  EXPECT_THROW(svc::parse_sabotage("reduce:"), Error);
  EXPECT_THROW(svc::parse_sabotage("reduce:0.5junk"), Error);
  EXPECT_THROW(svc::parse_sabotage("reduce:nan"), Error);
  EXPECT_THROW(svc::parse_sabotage("reduce:0"), Error);
  EXPECT_THROW(svc::parse_sabotage("reduce:1"), Error);
  EXPECT_THROW(svc::parse_sabotage("reduce:1.5"), Error);
  EXPECT_THROW(svc::parse_sabotage("relocate:"), Error);
  EXPECT_THROW(svc::parse_sabotage("relocate:0"), Error);
  EXPECT_THROW(svc::parse_sabotage("relocate:-5"), Error);
  EXPECT_THROW(svc::parse_sabotage("relocate:8x"), Error);
  EXPECT_THROW(svc::parse_sabotage("relocate:2.5"), Error);
}

TEST(StrictParse, JobsEnvContractFallsBackToCores) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;

  ::setenv("OFFRAMPS_JOBS", "3", 1);
  EXPECT_EQ(host::ParallelRunner::default_workers(), 3u);
  // Malformed or non-positive values must not silently degrade to one
  // worker (the old behavior); they warn once and use the cores default.
  for (const char* bad : {"8x", "0", "-2", "", " 4", "4 ", "2.5", "junk"}) {
    ::setenv("OFFRAMPS_JOBS", bad, 1);
    EXPECT_EQ(host::ParallelRunner::default_workers(), cores)
        << "OFFRAMPS_JOBS='" << bad << "'";
  }
  ::unsetenv("OFFRAMPS_JOBS");
  EXPECT_EQ(host::ParallelRunner::default_workers(), cores);
}

/// The regression that motivated from_chars: under an LC_NUMERIC whose
/// decimal separator is ',', strtod("0.5") stops at the period.  Skipped
/// (not failed) when the container has no such locale installed.
TEST(StrictParse, LocaleIndependentUnderCommaDecimalLocale) {
  const char* names[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR",
                         "nl_NL.UTF-8"};
  const char* previous = nullptr;
  for (const char* name : names) {
    previous = std::setlocale(LC_NUMERIC, name);
    if (previous != nullptr) break;
  }
  if (previous == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }

  EXPECT_EQ(core::parse_double("0.5"), 0.5);
  EXPECT_FALSE(core::parse_double("0,5"));
  const svc::Sabotage s = svc::parse_sabotage("reduce:0.5");
  EXPECT_DOUBLE_EQ(s.factor, 0.5);

  std::setlocale(LC_NUMERIC, "C");
}

}  // namespace
}  // namespace offramps
