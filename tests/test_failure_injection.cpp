// Failure-injection tests: non-Trojan faults the stack must survive (or
// fail safely under) - stuck endstops, dying sensors mid-print, stalled
// hosts, and live jumper changes.
#include <gtest/gtest.h>

#include "detect/compare.hpp"
#include "helpers.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "host/streamer.hpp"

namespace offramps {
namespace {

using offramps::test::DirectStack;

gcode::Program object() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

TEST(FailureInjection, EndstopStuckClosedBeforeHoming) {
  // A shorted X endstop: homing "succeeds" instantly without motion, so
  // the firmware believes X=0 while the carriage sits at its power-on
  // position.  The print completes but the part lands displaced - a
  // classic silent mechanical fault.
  DirectStack s;
  auto& x_stop = s.bank.min_endstop(sim::Axis::kX);
  x_stop.set(true);  // stuck switch...
  x_stop.on_falling([&x_stop](sim::Tick) {
    x_stop.set(true);  // ...that no amount of carriage motion releases
  });
  s.enqueue("G28 X\nG28 Y\n");
  EXPECT_TRUE(s.run());
  EXPECT_TRUE(s.firmware.homed(sim::Axis::kX));
  // The carriage never travelled to the real minimum: only the back-off
  // bump moved it (+3 mm from the 60 mm power-on position).
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 63.0, 0.5);
  // Y homed normally.
  EXPECT_NEAR(s.printer.axis(sim::Axis::kY).position_mm(), 0.0, 0.2);
}

TEST(FailureInjection, ThermistorOpensMidPrint) {
  // The hotend thermistor wire breaks mid-print: the ADC rails and the
  // firmware must kill with MINTEMP immediately (Marlin behaviour).
  host::Rig rig;
  // The plant republishes the ADC every 10 ms, so a broken wire must be
  // re-asserted persistently, like the real open circuit it is.
  std::function<void()> open_circuit = [&rig, &open_circuit] {
    rig.board().ramps_side().analog(sim::APin::kThermHotend).set(1023.0);
    if (!rig.firmware().killed()) {
      rig.scheduler().schedule_in(sim::ms(5), open_circuit);
    }
  };
  rig.scheduler().schedule_at(sim::seconds(80), open_circuit);
  const host::RunResult r = rig.run(object());
  EXPECT_TRUE(r.killed);
  EXPECT_NE(r.kill_reason.find("MINTEMP"), std::string::npos);
  EXPECT_FALSE(r.capture.print_completed);
}

TEST(FailureInjection, HeaterCartridgeFallsOutDuringHeatup) {
  // Zero heater power from the start: "Heating failed" within the watch
  // period, long before any motion.
  host::RigOptions options;
  options.printer.hotend.power_w = 0.0;
  host::Rig rig(options);
  const host::RunResult r = rig.run(object());
  EXPECT_TRUE(r.killed);
  EXPECT_NE(r.kill_reason.find("Heating failed"), std::string::npos);
  EXPECT_FALSE(r.part.any_material);
}

TEST(FailureInjection, HostStallsMidPrintThenResumes) {
  // A streaming host freezes for 30 simulated seconds mid-print.  The
  // firmware idles at the last commanded position and resumes cleanly;
  // final geometry is unaffected.
  const gcode::Program program = object();
  host::Rig reference_rig;
  const host::RunResult ref = reference_rig.run(program);

  host::Rig rig;
  // A tiny window plus an enormous poll period mimics the stall.
  host::Streamer stalling(rig.scheduler(), rig.firmware(), program,
                          /*window=*/4, /*poll_period=*/sim::ms(20));
  stalling.start();
  // Inject the stall by pausing the scheduler-driven pump: freeze the
  // firmware's queue by consuming nothing - simplest faithful stall is a
  // long dwell injected at the front mid-print.
  rig.scheduler().schedule_at(sim::seconds(75), [&rig] {
    rig.firmware().enqueue(*gcode::parse_line("G4 S30"));
  });
  const host::RunResult r = rig.run({});
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.capture.final_counts, ref.capture.final_counts);
  EXPECT_GT(r.sim_seconds, ref.sim_seconds + 25.0);
}

TEST(FailureInjection, RouteSwitchToDirectMidPrintFreezesCounts) {
  // Pulling the jumpers to bypass mid-print (a tamper-with-the-defense
  // scenario): the print continues unharmed, but the FPGA loses its
  // signal taps - the reporter keeps transmitting frozen counts, which
  // the golden comparison flags immediately.
  host::Rig golden_rig;
  const host::RunResult golden = golden_rig.run(object());

  host::Rig rig;
  rig.scheduler().schedule_at(sim::seconds(80), [&rig] {
    rig.board().set_route(core::RouteMode::kDirect);
  });
  const host::RunResult r = rig.run(object());
  EXPECT_TRUE(r.finished);
  // Counts froze at the moment of the switch...
  EXPECT_LT(r.capture.final_counts[3], golden.capture.final_counts[3]);
  // ...and the detector notices the divergence.
  const detect::Report rep = detect::compare(golden.capture, r.capture);
  EXPECT_TRUE(rep.trojan_likely);
  EXPECT_GT(rep.mismatch_count(), 0u);
}

TEST(FailureInjection, EmptyProgramFinishesImmediately) {
  host::Rig rig;
  const host::RunResult r = rig.run({});
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(r.capture.empty());
  EXPECT_FALSE(r.part.any_material);
}

TEST(FailureInjection, CommentsAndBlankLinesOnlyProgram) {
  host::Rig rig;
  const host::RunResult r = rig.run(gcode::parse_program(
      "; header comment\n\n; another comment\n   \n"));
  EXPECT_TRUE(r.finished);
}

TEST(FailureInjection, MovesWithoutHomingStayInImaginaryCoordinates) {
  // Hosts sometimes send moves before G28: the firmware executes them
  // relative to the power-on position (no soft endstops yet).
  DirectStack s;
  s.enqueue("G1 X10 F4800\n");  // logical 0 -> 10: +10 mm physical
  EXPECT_TRUE(s.run());
  EXPECT_NEAR(s.printer.axis(sim::Axis::kX).position_mm(), 70.0, 0.2);
}

TEST(FailureInjection, CounterfeitDriverMicrostepMismatch) {
  // The paper's §III-A warns about counterfeit RAMPS clones with
  // "undesirable changes".  A classic one: drivers shipped with the
  // wrong microstep default.  The plant really moves at 8x while the
  // firmware believes 16x - every dimension doubles.
  host::RigOptions options;
  options.printer.steps_per_mm = {50.0, 50.0, 200.0, 140.0};  // 8x
  // Larger frame so the doubled part still fits (the soft endstops
  // clamp in firmware coordinates, which are oblivious to the scale).
  options.printer.axis_length_mm = {500.0, 420.0, 420.0};
  host::Rig rig(options);
  const host::RunResult r = rig.run(object());
  EXPECT_TRUE(r.finished);
  // The 8 mm cube came out 16 mm.
  EXPECT_NEAR(r.part.bbox_width_mm, 16.0, 0.6);
  EXPECT_NEAR(r.part.bbox_depth_mm, 16.0, 0.6);
  // And the capture is clean: commanded counts match golden exactly, so
  // step-count detection cannot see a counterfeit *driver board* - only
  // physical inspection of the part can.
  host::Rig golden_rig;
  const host::RunResult golden = golden_rig.run(object());
  EXPECT_EQ(r.capture.final_counts, golden.capture.final_counts);
}

TEST(FailureInjection, KillDuringHomingIsClean) {
  DirectStack s;
  s.enqueue("G28\n");
  s.sched.schedule_at(sim::ms(500), [&s] { s.firmware.kill("test kill"); });
  EXPECT_FALSE(s.run());
  EXPECT_TRUE(s.firmware.killed());
  EXPECT_FALSE(s.firmware.stepper().busy());
  for (const auto a : sim::kAllAxes) {
    EXPECT_TRUE(s.bank.enable(a).level()) << "driver left enabled";
  }
}

}  // namespace
}  // namespace offramps
