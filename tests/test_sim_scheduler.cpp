// Unit tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "sim/error.hpp"
#include "sim/scheduler.hpp"

namespace offramps::sim {
namespace {

TEST(Scheduler, StartsAtTimeZeroAndIdle) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SimultaneousEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NowIsEventTimeInsideCallback) {
  Scheduler s;
  Tick seen = 0;
  s.schedule_at(42, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 42u);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  Tick seen = 0;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { seen = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(seen, 150u);
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(50, [] {}), Error);
}

TEST(Scheduler, CallbacksMayScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) s.schedule_in(10, chain);
  };
  s.schedule_at(0, chain);
  s.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), 990u);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWithoutEvents) {
  Scheduler s;
  s.run_until(12345);
  EXPECT_EQ(s.now(), 12345u);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(100, [&] { ++ran; });
  s.schedule_at(101, [&] { ++ran; });
  s.run_until(100);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), 100u);
  s.run_until(200);
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, RequestStopBreaksRunLoop) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(10, [&] {
    ++ran;
    s.request_stop();
  });
  s.schedule_at(20, [&] { ++ran; });
  s.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(s.stop_requested());
  s.clear_stop();
  s.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, RunAllEventLimitThrows) {
  Scheduler s;
  std::function<void()> forever = [&] { s.schedule_in(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run_all(1000), Error);
}

TEST(Scheduler, ExecutedCounterAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(static_cast<Tick>(i), [] {});
  s.run_all();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(TimeHelpers, ConversionsAreExact) {
  EXPECT_EQ(ns(7), 7u);
  EXPECT_EQ(us(3), 3'000u);
  EXPECT_EQ(ms(2), 2'000'000u);
  EXPECT_EQ(seconds(1), kTicksPerSecond);
  EXPECT_DOUBLE_EQ(to_seconds(kTicksPerSecond), 1.0);
  EXPECT_EQ(from_seconds(0.5), kTicksPerSecond / 2);
}

TEST(TimeHelpers, FpgaClockAlignment) {
  EXPECT_EQ(align_to_fpga_clock(0), 0u);
  EXPECT_EQ(align_to_fpga_clock(10), 10u);
  EXPECT_EQ(align_to_fpga_clock(11), 20u);
  EXPECT_EQ(align_to_fpga_clock(19), 20u);
  EXPECT_EQ(kFpgaClockTicks, 10u);  // 100 MHz on the 1 ns grid
}

}  // namespace
}  // namespace offramps::sim
