// Unit tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/error.hpp"
#include "sim/scheduler.hpp"

namespace offramps::sim {
namespace {

TEST(Scheduler, StartsAtTimeZeroAndIdle) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SimultaneousEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NowIsEventTimeInsideCallback) {
  Scheduler s;
  Tick seen = 0;
  s.schedule_at(42, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 42u);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  Tick seen = 0;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { seen = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(seen, 150u);
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(50, [] {}), Error);
}

TEST(Scheduler, CallbacksMayScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) s.schedule_in(10, chain);
  };
  s.schedule_at(0, chain);
  s.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), 990u);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWithoutEvents) {
  Scheduler s;
  s.run_until(12345);
  EXPECT_EQ(s.now(), 12345u);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(100, [&] { ++ran; });
  s.schedule_at(101, [&] { ++ran; });
  s.run_until(100);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), 100u);
  s.run_until(200);
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, RequestStopBreaksRunLoop) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(10, [&] {
    ++ran;
    s.request_stop();
  });
  s.schedule_at(20, [&] { ++ran; });
  s.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(s.stop_requested());
  s.clear_stop();
  s.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, RunAllEventLimitThrows) {
  Scheduler s;
  std::function<void()> forever = [&] { s.schedule_in(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run_all(1000), Error);
}

TEST(Scheduler, ExecutedCounterAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(static_cast<Tick>(i), [] {});
  s.run_all();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, StepIfBeforeRespectsDeadline) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(10, [&] { ++ran; });
  s.schedule_at(20, [&] { ++ran; });
  EXPECT_FALSE(s.step_if_before(9));   // earliest event is later
  EXPECT_EQ(ran, 0);
  EXPECT_TRUE(s.step_if_before(10));   // boundary is inclusive
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_FALSE(s.step_if_before(19));
  EXPECT_TRUE(s.step_if_before(20));
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(s.step_if_before(1000));  // idle
}

TEST(Scheduler, StepIfBeforeDoesNotAdvanceTimeOnRefusal) {
  Scheduler s;
  s.schedule_at(50, [] {});
  EXPECT_FALSE(s.step_if_before(40));
  EXPECT_EQ(s.now(), 0u);       // refusal leaves time untouched...
  EXPECT_EQ(s.pending(), 1u);   // ...and the event queued
}

TEST(Scheduler, CallbackSchedulingDuringStepIsSafe) {
  // A callback that schedules more events mutates the heap while its own
  // event is executing; the event must have fully left the container.
  Scheduler s;
  std::vector<Tick> fired;
  s.schedule_at(1, [&] {
    fired.push_back(s.now());
    for (Tick t = 2; t <= 64; ++t) {
      s.schedule_at(t, [&] { fired.push_back(s.now()); });
    }
  });
  s.run_until(100);
  ASSERT_EQ(fired.size(), 64u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], i + 1);
  }
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, HeavyInterleavedTrafficStaysOrdered) {
  // Stress the vector-heap ordering: interleaved pushes and pops with
  // colliding timestamps must still come out in (time, seq) order.
  Scheduler s;
  std::vector<std::pair<Tick, int>> fired;
  int n = 0;
  for (int round = 0; round < 50; ++round) {
    for (const Tick t : {Tick{300}, Tick{100}, Tick{200}, Tick{100}}) {
      s.schedule_at(t, [&fired, &s, id = n++] {
        fired.emplace_back(s.now(), id);
      });
    }
  }
  s.run_all();
  ASSERT_EQ(fired.size(), 200u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      // FIFO among simultaneous events == ascending insertion id.
      EXPECT_LT(fired[i - 1].second, fired[i].second);
    }
  }
}

TEST(Scheduler, NonTrivialCallbacksFallBackToHeapStorage) {
  // Callables too big (or not trivially copyable) for SmallFn's inline
  // buffer must still work through the heap fallback.
  Scheduler s;
  std::string log;
  const std::string big(256, 'x');
  s.schedule_at(5, [&log, big, copy = big] {
    log = "big:" + std::to_string(big.size() + copy.size());
  });
  s.run_all();
  EXPECT_EQ(log, "big:512");
}

TEST(TimeHelpers, ConversionsAreExact) {
  EXPECT_EQ(ns(7), 7u);
  EXPECT_EQ(us(3), 3'000u);
  EXPECT_EQ(ms(2), 2'000'000u);
  EXPECT_EQ(seconds(1), kTicksPerSecond);
  EXPECT_DOUBLE_EQ(to_seconds(kTicksPerSecond), 1.0);
  EXPECT_EQ(from_seconds(0.5), kTicksPerSecond / 2);
}

TEST(TimeHelpers, FpgaClockAlignment) {
  EXPECT_EQ(align_to_fpga_clock(0), 0u);
  EXPECT_EQ(align_to_fpga_clock(10), 10u);
  EXPECT_EQ(align_to_fpga_clock(11), 20u);
  EXPECT_EQ(align_to_fpga_clock(19), 20u);
  EXPECT_EQ(kFpgaClockTicks, 10u);  // 100 MHz on the 1 ns grid
}

}  // namespace
}  // namespace offramps::sim
