// Unit tests for the deposition recorder and part-quality metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "plant/axis.hpp"
#include "plant/deposition.hpp"
#include "plant/motor.hpp"
#include "sim/scheduler.hpp"

namespace offramps::plant {
namespace {

/// Hand-driven mini printer: X/Y/Z carriages and an extruder whose wires
/// the test toggles directly.
struct DepoFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire xs{sched, "XS"}, xd{sched, "XD"}, xe{sched, "XE", false};
  sim::Wire ys{sched, "YS"}, yd{sched, "YD"}, ye{sched, "YE", false};
  sim::Wire zs{sched, "ZS"}, zd{sched, "ZD"}, ze{sched, "ZE", false};
  sim::Wire es{sched, "ES"}, ed{sched, "ED"}, ee{sched, "EE", false};
  sim::Wire xstop{sched, "XM"}, ystop{sched, "YM"}, zstop{sched, "ZM"};
  StepperMotor mx{xs, xd, xe}, my{ys, yd, ye}, mz{zs, zd, ze},
      me{es, ed, ee};
  CarriageAxis ax{mx, xstop, 100.0, 200.0, 0.0};
  CarriageAxis ay{my, ystop, 100.0, 200.0, 0.0};
  CarriageAxis az{mz, zstop, 400.0, 200.0, 0.0};
  DepositionRecorder depo{me, ax, ay, az, 280.0, /*sample_every=*/1,
                          /*z_ignore_mm=*/0.05};

  void steps(sim::Wire& w, sim::Wire& dir, bool fwd, int n) {
    dir.set(fwd);
    for (int i = 0; i < n; ++i) {
      w.set(true);
      w.set(false);
    }
  }
  void move_x(double mm) { steps(xs, xd, mm > 0, int(std::abs(mm) * 100)); }
  void move_y(double mm) { steps(ys, yd, mm > 0, int(std::abs(mm) * 100)); }
  void move_z(double mm) { steps(zs, zd, mm > 0, int(std::abs(mm) * 400)); }
  void extrude(double mm) { steps(es, ed, mm > 0, int(std::abs(mm) * 280)); }

  /// Lays one straight X line at the current z, extruding as it goes.
  void lay_line(double length_mm, double e_mm) {
    const int xsteps = static_cast<int>(length_mm * 100);
    const int esteps = static_cast<int>(e_mm * 280);
    xd.set(true);
    ed.set(true);
    for (int i = 0, ei = 0; i < xsteps; ++i) {
      xs.set(true);
      xs.set(false);
      while (ei * xsteps < i * esteps) {
        es.set(true);
        es.set(false);
        ++ei;
      }
    }
  }
};

TEST_F(DepoFixture, RetractionRecordsNothing) {
  move_z(0.3);
  extrude(-2.0);
  EXPECT_TRUE(depo.samples().empty());
  EXPECT_FALSE(depo.report().any_material);
}

TEST_F(DepoFixture, BedLevelPrimingIsIgnored) {
  extrude(3.0);  // z = 0
  EXPECT_TRUE(depo.samples().empty());
  EXPECT_NEAR(depo.prime_filament_mm(), 3.0, 0.01);
}

TEST_F(DepoFixture, StationaryExtrusionIsABlobNotALayer) {
  move_z(0.3);
  extrude(2.0);  // nozzle parked: piles up at the tip
  // At most the very first step can be attributed to motion (the recorder
  // cannot see "before power-on"); everything after is blob material.
  EXPECT_LE(depo.samples().size(), 1u);
  EXPECT_NEAR(depo.blob_filament_mm(), 2.0, 0.01);
}

TEST_F(DepoFixture, RecordsPositionsOfExtrusion) {
  move_z(0.3);
  lay_line(10.0, 1.0);
  ASSERT_FALSE(depo.samples().empty());
  EXPECT_NEAR(depo.samples().back().x_mm, 10.0, 0.1);
  EXPECT_NEAR(depo.samples().back().z_mm, 0.3, 1e-6);
}

TEST_F(DepoFixture, ReportGroupsLayers) {
  for (int layer = 1; layer <= 3; ++layer) {
    move_z(0.25);
    lay_line(10.0, 1.0);
    move_x(-10.0);
  }
  const PartReport rep = depo.report();
  EXPECT_TRUE(rep.any_material);
  EXPECT_EQ(rep.layer_count, 3u);
  EXPECT_NEAR(rep.first_layer_z_mm, 0.25, 0.05);
  EXPECT_NEAR(rep.max_z_spacing_mm, 0.25, 0.06);
  EXPECT_NEAR(rep.total_filament_mm, 3.0, 0.1);
}

TEST_F(DepoFixture, LayerShiftIsMeasured) {
  // Layer 1 line from x=0..10; layer 2 same line shifted +2 mm in Y.
  move_z(0.25);
  lay_line(10.0, 1.0);
  move_z(0.25);
  move_y(2.0);
  move_x(-10.0);
  lay_line(10.0, 1.0);
  const PartReport rep = depo.report();
  ASSERT_EQ(rep.layer_count, 2u);
  EXPECT_NEAR(rep.max_layer_shift_mm, 2.0, 0.3);
  EXPECT_NEAR(rep.footprint_drift_mm, 2.0, 0.3);
}

TEST_F(DepoFixture, AlignedLayersShowNoShift) {
  for (int layer = 0; layer < 4; ++layer) {
    move_z(0.25);
    lay_line(10.0, 1.0);
    move_x(-10.0);
  }
  const PartReport rep = depo.report();
  EXPECT_LT(rep.max_layer_shift_mm, 0.2);
}

TEST_F(DepoFixture, ZSpacingDetectsDelamination) {
  move_z(0.25);
  lay_line(10.0, 1.0);
  move_x(-10.0);
  move_z(0.55);  // Trojan-style extra Z lift
  lay_line(10.0, 1.0);
  const PartReport rep = depo.report();
  EXPECT_GT(rep.max_z_spacing_mm, 0.5);
}

TEST_F(DepoFixture, SamplingDecimationBoundsMemory) {
  sim::Wire es2{sched, "ES2"}, ed2{sched, "ED2"}, ee2{sched, "EE2", false};
  StepperMotor me2{es2, ed2, ee2};
  DepositionRecorder sparse{me2, ax, ay, az, 280.0, /*sample_every=*/16,
                            0.05};
  move_z(0.3);
  ed2.set(true);
  xd.set(true);
  for (int i = 0; i < 1600; ++i) {
    xs.set(true);  // keep the carriage moving while extruding
    xs.set(false);
    es2.set(true);
    es2.set(false);
  }
  EXPECT_EQ(sparse.samples().size(), 100u);
}

TEST_F(DepoFixture, EmptyReportIsSafe) {
  const PartReport rep = depo.report();
  EXPECT_FALSE(rep.any_material);
  EXPECT_EQ(rep.layer_count, 0u);
  EXPECT_DOUBLE_EQ(rep.total_filament_mm, 0.0);
}

}  // namespace
}  // namespace offramps::plant
