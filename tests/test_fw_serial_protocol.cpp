// Tests for the Marlin-style host protocol: checksums, sequencing,
// resend, duplicates, buffer throttling, M110 - plus the end-to-end
// guarantee that a noisy link still produces a bit-identical print.
#include <gtest/gtest.h>

#include "fw/serial_protocol.hpp"
#include "gcode/parser.hpp"
#include "helpers.hpp"
#include "host/reliable_streamer.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::fw {
namespace {

using offramps::test::DirectStack;

std::string framed(std::uint32_t n, const std::string& body) {
  const std::string line = "N" + std::to_string(n) + " " + body + " ";
  return line + "*" + std::to_string(gcode::reprap_checksum(line));
}

struct ProtocolFixture : ::testing::Test {
  DirectStack stack;
  SerialProtocol protocol{stack.firmware, /*buffer_limit=*/4};
  std::uint32_t resend_from = 0;

  LineStatus rx(const std::string& raw) {
    return protocol.receive(raw, &resend_from);
  }
};

TEST_F(ProtocolFixture, AcceptsSequencedChecksummedLines) {
  EXPECT_EQ(rx(framed(1, "G28 X")), LineStatus::kOk);
  EXPECT_EQ(rx(framed(2, "G1 X10 F4800")), LineStatus::kOk);
  EXPECT_EQ(protocol.expected_line(), 3u);
  EXPECT_EQ(stack.firmware.queue_depth(), 2u);
  EXPECT_EQ(protocol.accepted(), 2u);
}

TEST_F(ProtocolFixture, BadChecksumRequestsResend) {
  EXPECT_EQ(rx("N1 G28 X *99"), LineStatus::kResend);
  EXPECT_EQ(resend_from, 1u);
  EXPECT_EQ(protocol.checksum_errors(), 1u);
  EXPECT_EQ(stack.firmware.queue_depth(), 0u);
}

TEST_F(ProtocolFixture, SequenceGapRequestsResend) {
  EXPECT_EQ(rx(framed(1, "G28 X")), LineStatus::kOk);
  EXPECT_EQ(rx(framed(5, "G1 X10")), LineStatus::kResend);
  EXPECT_EQ(resend_from, 2u);
  EXPECT_EQ(protocol.sequence_errors(), 1u);
}

TEST_F(ProtocolFixture, DuplicatesAreDroppedSilently) {
  EXPECT_EQ(rx(framed(1, "G28 X")), LineStatus::kOk);
  EXPECT_EQ(rx(framed(2, "G1 X10 F4800")), LineStatus::kOk);
  EXPECT_EQ(rx(framed(1, "G28 X")), LineStatus::kDuplicate);
  EXPECT_EQ(stack.firmware.queue_depth(), 2u);  // not enqueued again
  EXPECT_EQ(protocol.duplicates(), 1u);
}

TEST_F(ProtocolFixture, BufferFullReportsBusy) {
  for (std::uint32_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(rx(framed(i, "G4 P100")), LineStatus::kOk);
  }
  EXPECT_EQ(rx(framed(5, "G4 P100")), LineStatus::kBusy);
  EXPECT_EQ(protocol.expected_line(), 5u);  // busy does not consume
}

TEST_F(ProtocolFixture, M110ResetsLineNumberBypassingSequence) {
  EXPECT_EQ(rx(framed(1, "G28 X")), LineStatus::kOk);
  EXPECT_EQ(rx(framed(2, "G4 P10")), LineStatus::kOk);
  // Renumber backwards: M110 ignores sequencing entirely.
  EXPECT_EQ(rx(framed(0, "M110")), LineStatus::kOk);
  EXPECT_EQ(protocol.expected_line(), 1u);
  EXPECT_EQ(rx(framed(1, "G4 P10")), LineStatus::kOk);
  // The M110 itself was never enqueued as a command.
  EXPECT_EQ(stack.firmware.queue_depth(), 3u);
}

TEST_F(ProtocolFixture, UnnumberedDebugLinesPassThrough) {
  EXPECT_EQ(rx("M105"), LineStatus::kOk);
  EXPECT_EQ(protocol.expected_line(), 1u);  // sequence untouched
}

TEST(ReliableLink, CleanLinkDeliversEverything) {
  host::Rig rig;
  SerialProtocol protocol(rig.firmware());
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  const auto program = host::slice_cube(cube, profile);
  host::ReliableStreamer streamer(rig.scheduler(), rig.firmware(), protocol,
                                  program);
  streamer.start();
  const host::RunResult r = rig.run({});
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(streamer.done());
  EXPECT_EQ(streamer.corrupted_lines(), 0u);
  EXPECT_EQ(streamer.resends_honored(), 0u);
  EXPECT_EQ(protocol.accepted(), program.size() + 1);  // + M110
}

TEST(ReliableLink, NoisyLinkStillPrintsIdentically) {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  const auto program = host::slice_cube(cube, profile);

  // Reference: clean link.
  host::RigOptions opts;
  opts.firmware.jitter_seed = 3;
  host::Rig clean_rig(opts);
  const host::RunResult clean = clean_rig.run(program);

  // 5% of lines arrive corrupted.
  host::Rig noisy_rig(opts);
  SerialProtocol protocol(noisy_rig.firmware());
  host::ReliableStreamerOptions sopt;
  sopt.corruption_probability = 0.05;
  host::ReliableStreamer streamer(noisy_rig.scheduler(),
                                  noisy_rig.firmware(), protocol, program,
                                  sopt);
  streamer.start();
  const host::RunResult noisy = noisy_rig.run({});

  EXPECT_TRUE(noisy.finished);
  EXPECT_GT(streamer.corrupted_lines(), 5u);
  // Every resend traces back to a detected checksum/sequence error.
  EXPECT_EQ(streamer.resends_honored(),
            protocol.checksum_errors() + protocol.sequence_errors());
  EXPECT_GT(protocol.checksum_errors(), 0u);
  // The corruption never reached the motion system: identical outcome.
  EXPECT_EQ(noisy.capture.final_counts, clean.capture.final_counts);
  EXPECT_EQ(noisy.motor_steps, clean.motor_steps);
}

TEST(ReliableLink, DeadFirmwareFailsTheRunWithADiagnostic) {
  // Kill the firmware mid-stream: the streamer must stop polling the
  // corpse and record why, instead of spinning until the hard deadline.
  host::Rig rig;
  SerialProtocol protocol(rig.firmware());
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                      .center_x_mm = 110, .center_y_mm = 100};
  host::ReliableStreamer streamer(rig.scheduler(), rig.firmware(), protocol,
                                  host::slice_cube(cube, profile));
  streamer.start();
  rig.scheduler().schedule_at(sim::seconds(10), [&rig] {
    rig.firmware().kill("bench power fault");
  });
  const host::RunResult r = rig.run({});
  EXPECT_TRUE(r.killed);
  EXPECT_TRUE(streamer.failed());
  EXPECT_FALSE(streamer.done());
  EXPECT_NE(streamer.failure_reason().find("killed mid-stream"),
            std::string::npos);
  EXPECT_NE(streamer.failure_reason().find("bench power fault"),
            std::string::npos);
}

TEST(ReliableLink, WedgedFirmwareTripsTheNoProgressWatchdog) {
  // The firmware is alive but never drains its queue (a 200 s dwell with
  // a tiny buffer): after `no_progress_timeout` of nothing but Busy, the
  // streamer gives up with a diagnostic that names the stuck line.
  DirectStack stack;
  SerialProtocol protocol(stack.firmware, /*buffer_limit=*/2);
  gcode::Program program = gcode::parse_program(
      "G4 P200000\nG4 P100\nG4 P100\nG4 P100\nG4 P100\n");
  host::ReliableStreamerOptions sopt;
  sopt.no_progress_timeout = sim::seconds(5);
  host::ReliableStreamer streamer(stack.sched, stack.firmware, protocol,
                                  program, sopt);
  streamer.start();
  stack.run(400.0);
  EXPECT_TRUE(streamer.failed());
  EXPECT_FALSE(streamer.done());
  EXPECT_NE(streamer.failure_reason().find("no line accepted"),
            std::string::npos);
}

TEST(ReliableLink, BusyBackoffGrowsExponentiallyUpToTheCap) {
  // A long dwell holds the queue full; the poll must settle at the cap
  // instead of hammering the protocol every 20 ms for the whole wait.
  DirectStack stack;
  SerialProtocol protocol(stack.firmware, /*buffer_limit=*/2);
  gcode::Program program = gcode::parse_program(
      "G4 P30000\nG4 P100\nG4 P100\nG4 P100\nG4 P100\n");
  host::ReliableStreamerOptions sopt;
  sopt.no_progress_timeout = 0;  // watchdog off: observe pure backoff
  host::ReliableStreamer streamer(stack.sched, stack.firmware, protocol,
                                  program, sopt);
  streamer.start();
  stack.sched.run_until(sim::seconds(20));
  EXPECT_EQ(streamer.current_backoff(), sopt.max_poll_period);
  stack.run(120.0);
  EXPECT_TRUE(streamer.done());
  EXPECT_FALSE(streamer.failed());
  // ~30 s of Busy at a 2 s cap is ~20 polls; naive 20 ms polling would
  // have been ~1500.
  EXPECT_LT(streamer.busy_backoffs(), 60u);
}

TEST(ReliableLink, HopelesslyLossyLinkThrows) {
  host::Rig rig;
  SerialProtocol protocol(rig.firmware());
  host::ReliableStreamerOptions sopt;
  sopt.corruption_probability = 1.0;  // every line corrupted
  gcode::Program tiny = gcode::parse_program("G28 X\n");
  host::ReliableStreamer streamer(rig.scheduler(), rig.firmware(), protocol,
                                  tiny, sopt);
  EXPECT_THROW(streamer.start(), offramps::Error);
}

}  // namespace
}  // namespace offramps::fw
