// Unit tests for the FPGA signal path: pass-through delay, forcing,
// pulse filtering, and pulse injection.
#include <gtest/gtest.h>

#include "core/signal_path.hpp"
#include "sim/trace.hpp"

namespace offramps::core {
namespace {

struct PathFixture : ::testing::Test {
  sim::Scheduler sched;
  sim::Wire in{sched, "in"};
  sim::Wire out{sched, "out"};
  SignalPath path{sched, in, out, sim::ns(13)};

  void SetUp() override { path.set_active(true); }

  void pulse_in(sim::Tick width = sim::us(1)) {
    in.set(true);
    sched.schedule_in(width, [this] { in.set(false); });
    sched.run_until(sched.now() + width + sim::us(1));
  }
};

TEST_F(PathFixture, PassthroughForwardsWithDelay) {
  in.set(true);
  EXPECT_FALSE(out.level());
  sched.run_until(sim::ns(12));
  EXPECT_FALSE(out.level());
  sched.run_until(sim::ns(13));
  EXPECT_TRUE(out.level());
  in.set(false);
  sched.run_until(sim::ns(26));
  EXPECT_FALSE(out.level());
}

TEST_F(PathFixture, InactivePathDoesNotDrive) {
  path.set_active(false);
  in.set(true);
  sched.run_until(sim::us(1));
  EXPECT_FALSE(out.level());
}

TEST_F(PathFixture, ActivationSyncsToInputLevel) {
  path.set_active(false);
  in.set(true);
  sched.run_until(sim::us(1));
  path.set_active(true);
  EXPECT_TRUE(out.level());
}

TEST_F(PathFixture, PulseCountsPreservedByPassthrough) {
  sim::TraceRecorder trace(out, false);
  for (int i = 0; i < 20; ++i) pulse_in();
  sched.run_until(sched.now() + sim::us(10));
  EXPECT_EQ(trace.rising_edges(), 20u);
  EXPECT_EQ(path.passed_pulses(), 20u);
  EXPECT_EQ(path.dropped_pulses(), 0u);
}

TEST_F(PathFixture, ForceHighOverridesInput) {
  path.force(true);
  EXPECT_TRUE(out.level());
  pulse_in();
  EXPECT_TRUE(out.level());  // input pulses invisible
  path.force(std::nullopt);
  sched.run_until(sched.now() + sim::us(1));
  EXPECT_FALSE(out.level());  // released to pass-through level
}

TEST_F(PathFixture, ForceLowBlocksPulses) {
  sim::TraceRecorder trace(out, false);
  path.force(false);
  for (int i = 0; i < 5; ++i) pulse_in();
  EXPECT_EQ(trace.rising_edges(), 0u);
}

TEST_F(PathFixture, FilterDropsWholePulses) {
  sim::TraceRecorder trace(out, false);
  int n = 0;
  path.set_pulse_filter([&n] { return (n++ % 2) == 0; });  // keep evens
  for (int i = 0; i < 10; ++i) pulse_in();
  sched.run_until(sched.now() + sim::us(10));
  EXPECT_EQ(trace.rising_edges(), 5u);
  EXPECT_EQ(trace.falling_edges(), 5u);  // no dangling half-pulses
  EXPECT_EQ(path.dropped_pulses(), 5u);
  EXPECT_EQ(path.passed_pulses(), 5u);
}

TEST_F(PathFixture, ClearingFilterRestoresAll) {
  int n = 0;
  path.set_pulse_filter([&n] { return (n++ % 2) == 0; });
  pulse_in();
  pulse_in();
  path.set_pulse_filter(nullptr);
  sim::TraceRecorder trace(out, false);
  for (int i = 0; i < 4; ++i) pulse_in();
  sched.run_until(sched.now() + sim::us(10));
  EXPECT_EQ(trace.rising_edges(), 4u);
}

TEST_F(PathFixture, InjectionAddsPulses) {
  sim::TraceRecorder trace(out, false);
  path.inject_pulse(sim::us(1));
  sched.run_until(sched.now() + sim::us(5));
  EXPECT_EQ(trace.rising_edges(), 1u);
  EXPECT_EQ(path.injected_pulses(), 1u);
}

TEST_F(PathFixture, InjectionMergesWithTraffic) {
  sim::TraceRecorder trace(out, false);
  // 10 input pulses 50 us apart with 5 injections interleaved.
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(sim::us(static_cast<std::uint64_t>(50 * i)),
                      [this] { in.pulse(sim::us(1)); });
  }
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(sim::us(static_cast<std::uint64_t>(25 + 100 * i)),
                      [this] { path.inject_pulse(sim::us(1)); });
  }
  sched.run_all();
  EXPECT_EQ(trace.rising_edges(), 15u);
}

TEST_F(PathFixture, InjectionDefersWhenOutputBusy) {
  sim::TraceRecorder trace(out, false);
  in.set(true);  // output will go high and stay
  sched.run_until(sim::us(1));
  path.inject_pulse(sim::us(1));
  sched.run_until(sim::us(50));
  EXPECT_EQ(trace.rising_edges(), 1u);  // still just the input's edge
  in.set(false);
  sched.run_until(sim::us(100));
  EXPECT_EQ(trace.rising_edges(), 2u);  // deferred injection landed
  EXPECT_EQ(path.injected_pulses(), 1u);
}

TEST_F(PathFixture, InjectionSuppressedWhileForced) {
  sim::TraceRecorder trace(out, false);
  path.force(false);
  path.inject_pulse(sim::us(1));
  sched.run_until(sim::us(100));
  EXPECT_EQ(trace.rising_edges(), 0u);
  EXPECT_EQ(path.injected_pulses(), 0u);
}

}  // namespace
}  // namespace offramps::core
