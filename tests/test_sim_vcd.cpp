// Tests for the VCD waveform exporter.
#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "sim/vcd.hpp"

namespace offramps::sim {
namespace {

TEST(Vcd, HeaderDeclaresChannels) {
  Scheduler sched;
  Wire a(sched, "X_STEP"), b(sched, "X DIR");
  VcdRecorder vcd(sched);
  EXPECT_TRUE(vcd.add(a));
  EXPECT_TRUE(vcd.add(b, "custom label"));
  const std::string doc = vcd.render("testbench");
  EXPECT_NE(doc.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(doc.find("$scope module testbench $end"), std::string::npos);
  EXPECT_NE(doc.find("$var wire 1 ! X_STEP $end"), std::string::npos);
  // Whitespace sanitized in labels.
  EXPECT_NE(doc.find("custom_label"), std::string::npos);
}

TEST(Vcd, InitialValuesDumped) {
  Scheduler sched;
  Wire low(sched, "LOW"), high(sched, "HIGH", true);
  VcdRecorder vcd(sched);
  vcd.add(low);
  vcd.add(high);
  const std::string doc = vcd.render();
  const auto dump = doc.find("$dumpvars");
  ASSERT_NE(dump, std::string::npos);
  EXPECT_NE(doc.find("0!", dump), std::string::npos);
  EXPECT_NE(doc.find("1\"", dump), std::string::npos);
}

TEST(Vcd, RecordsTimestampedChanges) {
  Scheduler sched;
  Wire w(sched, "SIG");
  VcdRecorder vcd(sched);
  vcd.add(w);
  sched.schedule_at(us(5), [&] { w.set(true); });
  sched.schedule_at(us(9), [&] { w.set(false); });
  sched.run_all();
  EXPECT_EQ(vcd.events(), 2u);
  const std::string doc = vcd.render();
  EXPECT_NE(doc.find("#5000\n1!"), std::string::npos);
  EXPECT_NE(doc.find("#9000\n0!"), std::string::npos);
}

TEST(Vcd, TimesRelativeToRecorderStart) {
  Scheduler sched;
  Wire w(sched, "SIG");
  sched.run_until(ms(1));
  VcdRecorder vcd(sched);  // starts at t = 1 ms
  vcd.add(w);
  sched.schedule_at(ms(1) + us(2), [&] { w.set(true); });
  sched.run_all();
  const std::string doc = vcd.render();
  EXPECT_NE(doc.find("#2000\n1!"), std::string::npos);
}

TEST(Vcd, SimultaneousEdgesShareTimestamp) {
  Scheduler sched;
  Wire a(sched, "A"), b(sched, "B");
  VcdRecorder vcd(sched);
  vcd.add(a);
  vcd.add(b);
  sched.schedule_at(us(1), [&] {
    a.set(true);
    b.set(true);
  });
  sched.run_all();
  const std::string doc = vcd.render();
  const auto pos = doc.find("#1000");
  ASSERT_NE(pos, std::string::npos);
  // One timestamp line, two change lines, no second #1000.
  EXPECT_EQ(doc.find("#1000", pos + 1), std::string::npos);
  EXPECT_NE(doc.find("1!", pos), std::string::npos);
  EXPECT_NE(doc.find("1\"", pos), std::string::npos);
}

TEST(Vcd, IdentifierSpaceIsBounded) {
  Scheduler sched;
  // Wires must outlive the recorder (its destructor detaches listeners).
  std::vector<std::unique_ptr<Wire>> wires;
  VcdRecorder vcd(sched);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    wires.push_back(std::make_unique<Wire>(sched, "W" + std::to_string(i)));
    if (vcd.add(*wires.back())) ++accepted;
  }
  EXPECT_EQ(accepted, 94);  // '!' .. '~'
}

TEST(Vcd, StopsRecordingOnDestruction) {
  Scheduler sched;
  Wire w(sched, "SIG");
  {
    VcdRecorder vcd(sched);
    vcd.add(w);
  }
  w.set(true);  // must not touch freed recorder state
  SUCCEED();
}

}  // namespace
}  // namespace offramps::sim
