// Edge-case tests for the g-code parser: hostile and degenerate input a
// compromised host or a noisy serial link can produce - overlong lines,
// malformed checksum trailers, bare line numbers, comment-only lines,
// stray words.  The parser must reject loudly, never mis-read silently.
#include <gtest/gtest.h>

#include <string>

#include "gcode/parser.hpp"
#include "sim/error.hpp"

namespace offramps::gcode {
namespace {

// --- Checksum trailer ------------------------------------------------------

std::string with_checksum(const std::string& body) {
  return body + "*" + std::to_string(reprap_checksum(body));
}

TEST(ParserEdge, ValidChecksumWithLineNumberParses) {
  const auto cmd = parse_line(with_checksum("N3 G1 X5"));
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->is('G', 1));
  EXPECT_DOUBLE_EQ(*cmd->get('X'), 5.0);
}

TEST(ParserEdge, ChecksumMismatchThrows) {
  const std::string body = "N3 G1 X5";
  const unsigned wrong = (reprap_checksum(body) + 1u) & 0xFFu;
  EXPECT_THROW(parse_line(body + "*" + std::to_string(wrong)), Error);
}

TEST(ParserEdge, ChecksumTrailingJunkIsMalformed) {
  // std::stoul-style parsing would silently accept "57abc" as 57; the
  // parser must treat any trailing junk as a malformed trailer.
  const std::string body = "N3 G1 X5";
  const auto cs = std::to_string(reprap_checksum(body));
  EXPECT_THROW(parse_line(body + "*" + cs + "abc"), Error);
  EXPECT_THROW(parse_line(body + "*" + cs + "*7"), Error);
  EXPECT_THROW(parse_line(body + "* " + cs + " 9"), Error);
}

TEST(ParserEdge, ChecksumToleratesSurroundingWhitespace) {
  const std::string body = "N3 G1 X5";
  const auto cs = std::to_string(reprap_checksum(body));
  const auto cmd = parse_line(body + "* " + cs + " ");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->is('G', 1));
}

TEST(ParserEdge, EmptyChecksumTrailerThrows) {
  EXPECT_THROW(parse_line("G1 X5*"), Error);
  EXPECT_THROW(parse_line("G1 X5*  "), Error);
}

TEST(ParserEdge, NegativeOrOverrangeChecksumThrows) {
  EXPECT_THROW(parse_line("G1 X5*-3"), Error);
  EXPECT_THROW(parse_line("G1 X5*300"), Error);
}

// --- Line numbers ----------------------------------------------------------

TEST(ParserEdge, BareLineNumberIsEmpty) {
  EXPECT_FALSE(parse_line("N123").has_value());
  EXPECT_FALSE(parse_line("  N123  ").has_value());
}

TEST(ParserEdge, BareLineNumberWithValidChecksumIsEmpty) {
  EXPECT_FALSE(parse_line(with_checksum("N123")).has_value());
}

TEST(ParserEdge, LineNumberThenParameterStillThrows) {
  // "N123 X5" has a parameter but no command - malformed, not empty.
  EXPECT_THROW(parse_line("N123 X5"), Error);
}

TEST(ParserEdge, SecondNWordIsAParameter) {
  // Only a leading N is a host line number; a later N belongs to the
  // command (e.g. M110 N0 sets the line counter).
  const auto cmd = parse_line("N1 M110 N0");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->is('M', 110));
  EXPECT_TRUE(cmd->has('N'));
}

// --- Comment-only and blank lines ------------------------------------------

TEST(ParserEdge, CommentOnlyLinesAreEmpty) {
  EXPECT_FALSE(parse_line("; pure comment").has_value());
  EXPECT_FALSE(parse_line("   ;LAYER:3").has_value());
  EXPECT_FALSE(parse_line("(inline only)").has_value());
  EXPECT_FALSE(parse_line("").has_value());
  EXPECT_FALSE(parse_line(" \t \r").has_value());
}

TEST(ParserEdge, UnterminatedParenCommentThrows) {
  EXPECT_THROW(parse_line("G1 X5 (oops"), Error);
}

// --- Overlong lines --------------------------------------------------------

TEST(ParserEdge, OverlongLineThrows) {
  std::string line = "G1 X5 ;";
  line.append(kMaxLineLength, 'a');
  EXPECT_THROW(parse_line(line), Error);
}

TEST(ParserEdge, MaxLengthLineParses) {
  std::string line = "G1 X5 ;";
  line.append(kMaxLineLength - line.size(), 'a');
  ASSERT_EQ(line.size(), kMaxLineLength);
  EXPECT_TRUE(parse_line(line).has_value());
}

TEST(ParserEdge, OverlongLineInsideProgramThrows) {
  std::string program = "G28\nG1 X5\n";
  program += "G1 Y1 ;" + std::string(kMaxLineLength, 'b') + "\n";
  EXPECT_THROW(parse_program(program), Error);
}

// --- Malformed words -------------------------------------------------------

TEST(ParserEdge, BadNumericValueThrows) {
  EXPECT_THROW(parse_line("G1 X1.2.3"), Error);
  EXPECT_THROW(parse_line("G1 X--5"), Error);
  EXPECT_THROW(parse_line("Gx"), Error);
}

TEST(ParserEdge, CommandWordWithoutNumberThrows) {
  EXPECT_THROW(parse_line("G X5"), Error);
  EXPECT_THROW(parse_line("M"), Error);
}

TEST(ParserEdge, NonCommandLeadingWordThrows) {
  EXPECT_THROW(parse_line("X5 Y6"), Error);
  EXPECT_THROW(parse_line("123"), Error);
}

TEST(ParserEdge, ProgramSkipsEmptyAndCommentLines) {
  const auto program = parse_program(
      "; header\nN1 G28\n\nN2\n;LAYER:0\nG1 X5 Y5\n");
  ASSERT_EQ(program.size(), 2u);
  EXPECT_TRUE(program[0].is('G', 28));
  EXPECT_TRUE(program[1].is('G', 1));
}

// --- Hostile numeric values (fuzzer-surfaced) ------------------------------
// Digit-form magnitudes ("G99999999999", "X99999999999999999999") reach
// std::from_chars intact; before the magnitude gate they flowed into
// llround/int casts in the kinematics layer (undefined behavior).
// Minimized inputs live in tests/fuzz_corpus/gcode/.

TEST(ParserEdge, HugeMagnitudesThrow) {
  EXPECT_THROW(parse_line("G99999999999"), Error);
  EXPECT_THROW(parse_line("G1 X99999999999999999999"), Error);
  EXPECT_THROW(parse_line("G1 E-99999999999"), Error);
  // The boundary itself is accepted.
  const auto cmd = parse_line("G1 X10000000");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->value_or('X', 0.0), 1e7);
}

TEST(ParserEdge, AlphabeticRunsTokenizeAsSeparateWords) {
  // "inf"/"nan"/exponent spellings never reach the number parser: the
  // tokenizer breaks a value at the first letter, so "Einf" is four
  // valueless parameter words.  Pinned so a tokenizer change cannot
  // silently open that path without revisiting the magnitude gate.
  const auto cmd = parse_line("G1 Einf");
  ASSERT_TRUE(cmd.has_value());
  ASSERT_EQ(cmd->params.size(), 4u);
  EXPECT_EQ(cmd->params[0].letter, 'E');
  EXPECT_EQ(cmd->params[1].letter, 'I');
  const auto sci = parse_line("G1 X1e8");
  ASSERT_TRUE(sci.has_value());
  EXPECT_EQ(sci->value_or('X', 0.0), 1.0);  // "1e8" = X1 then word E8
  EXPECT_EQ(sci->value_or('E', 0.0), 8.0);
}

TEST(ParserEdge, TinyValuesAreFine) {
  const auto cmd = parse_line("G1 X0.0000001 Y-0.25");
  ASSERT_TRUE(cmd.has_value());
}

}  // namespace
}  // namespace offramps::gcode
