// Integration tests for the full rig (firmware + OFFRAMPS + printer) and
// the streamer, plus cross-stack invariants on golden prints.
#include <gtest/gtest.h>

#include "gcode/parser.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "host/streamer.hpp"

namespace offramps::host {
namespace {

gcode::Program small_cube() {
  SliceProfile profile;
  CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 2,
                .center_x_mm = 110, .center_y_mm = 100};
  return slice_cube(cube, profile);
}

TEST(Rig, GoldenPrintFinishesCleanly) {
  Rig rig;
  const RunResult r = rig.run(small_cube());
  EXPECT_TRUE(r.finished);
  EXPECT_FALSE(r.killed);
  EXPECT_TRUE(r.capture.print_completed);
  EXPECT_GT(r.capture.size(), 50u);
  EXPECT_TRUE(r.part.any_material);
}

TEST(Rig, StepConservationThroughBenignMitm) {
  // Every step the firmware commands after power-on must reach the
  // motors when no Trojan is armed: commanded == executed, zero drops.
  Rig rig;
  const RunResult r = rig.run(small_cube());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.commanded_steps[i], r.motor_steps[i]) << "axis " << i;
    EXPECT_EQ(r.motor_dropped_steps[i], 0u) << "axis " << i;
  }
}

TEST(Rig, CaptureFinalCountsMatchTrackerTotals) {
  Rig rig;
  const RunResult r = rig.run(small_cube());
  // The final Z count covers print height plus the end-sequence lift.
  EXPECT_GT(r.capture.final_counts[2], 0);
  // E ends positive: the part consumed filament.
  EXPECT_GT(r.capture.final_counts[3], 1000);
}

TEST(Rig, PartDimensionsMatchTheGcode) {
  Rig rig;
  const RunResult r = rig.run(small_cube());
  EXPECT_NEAR(r.part.bbox_width_mm, 8.0, 0.2);
  EXPECT_NEAR(r.part.bbox_depth_mm, 8.0, 0.2);
  EXPECT_EQ(r.part.layer_count, 8u);
  EXPECT_LT(r.part.max_layer_shift_mm, 0.15);
  EXPECT_NEAR(r.flow_ratio(), 1.0, 1e-9);
}

TEST(Rig, ThermalBehaviourIsSane) {
  Rig rig;
  const RunResult r = rig.run(small_cube());
  EXPECT_GT(r.hotend_peak_c, 205.0);
  EXPECT_LT(r.hotend_peak_c, 230.0);
  EXPECT_NEAR(r.bed_peak_c, 25.0, 2.0);  // bed unused in this profile
  EXPECT_GT(r.mean_fan_rpm, 100.0);      // part fan ran from layer 2
}

TEST(Rig, DirectRouteProducesNoCapture) {
  RigOptions options;
  options.route = core::RouteMode::kDirect;
  Rig rig(options);
  const RunResult r = rig.run(small_cube());
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(r.capture.empty());  // FPGA out of circuit
  EXPECT_TRUE(r.part.any_material);  // but the print still happened
}

TEST(Rig, RecordRouteCapturesLosslessly) {
  RigOptions mitm_opts;
  mitm_opts.route = core::RouteMode::kFpgaMitm;
  Rig mitm(mitm_opts);
  const RunResult a = mitm.run(small_cube());

  RigOptions rec_opts;
  rec_opts.route = core::RouteMode::kFpgaRecord;
  rec_opts.firmware.jitter_seed = mitm_opts.firmware.jitter_seed;
  Rig rec(rec_opts);
  const RunResult b = rec.run(small_cube());

  // Identical seed, identical gcode: final counts agree exactly across
  // routing modes.
  EXPECT_EQ(a.capture.final_counts, b.capture.final_counts);
  EXPECT_FALSE(b.capture.empty());
}

TEST(Rig, SecondRunThrows) {
  Rig rig;
  rig.run(gcode::parse_program("G28 X\n"));
  EXPECT_THROW(rig.run(gcode::parse_program("G28 X\n")), offramps::Error);
}

TEST(Rig, DeterministicForFixedSeed) {
  RigOptions opts;
  opts.firmware.jitter_seed = 77;
  Rig a(opts), b(opts);
  const RunResult ra = a.run(small_cube());
  const RunResult rb = b.run(small_cube());
  ASSERT_EQ(ra.capture.size(), rb.capture.size());
  for (std::size_t i = 0; i < ra.capture.size(); ++i) {
    EXPECT_EQ(ra.capture.transactions[i].counts,
              rb.capture.transactions[i].counts);
  }
}

TEST(Rig, DifferentSeedsDriftWithinMargin) {
  // The paper's "time noise": known-good reprints drift, but always
  // within the 5% margin (section V-C).
  RigOptions a_opts, b_opts;
  a_opts.firmware.jitter_seed = 1;
  b_opts.firmware.jitter_seed = 999;
  Rig a(a_opts), b(b_opts);
  const RunResult ra = a.run(small_cube());
  const RunResult rb = b.run(small_cube());
  const detect::Report rep = detect::compare(ra.capture, rb.capture);
  EXPECT_FALSE(rep.trojan_likely);
  EXPECT_LT(rep.largest_percent, 5.0);
  EXPECT_EQ(ra.capture.final_counts, rb.capture.final_counts);
}

TEST(Streamer, StreamedPrintMatchesBatch) {
  const gcode::Program program = small_cube();

  Rig batch;
  const RunResult rb = batch.run(program);

  // Streamed: drive the firmware through a Streamer inside a bare rig.
  RigOptions opts;
  Rig stream_rig(opts);
  Streamer streamer(stream_rig.scheduler(), stream_rig.firmware(), program,
                    /*window=*/6);
  streamer.start();
  const RunResult rs = stream_rig.run({});  // program arrives via streamer
  EXPECT_TRUE(rs.finished);
  EXPECT_EQ(streamer.lines_sent(), program.size());
  EXPECT_EQ(rs.capture.final_counts, rb.capture.final_counts);
}

}  // namespace
}  // namespace offramps::host
