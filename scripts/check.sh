#!/usr/bin/env bash
# One-shot verification gate - the CI entrypoint.
#
#   scripts/check.sh          configure + build (warnings-as-errors) +
#                             clang-tidy lint + full test suite
#   scripts/check.sh --quick  skip the test suite (build + lint only)
#   scripts/check.sh --fuzz   build the fuzz preset (ASan+UBSan) and run
#                             each fuzz target for a short budget
#                             (OFFRAMPS_FUZZ_SECONDS per target,
#                             default 30) over its checked-in corpus;
#                             any crash fails by exit code
#
# The lint step degrades to a skip message when clang-tidy is not
# installed; everything else must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
fuzz=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
elif [[ "${1:-}" == "--fuzz" ]]; then
  fuzz=1
fi

jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${fuzz}" -eq 1 ]]; then
  budget="${OFFRAMPS_FUZZ_SECONDS:-30}"
  echo "==> configure (preset: fuzz, ASan+UBSan)"
  cmake --preset fuzz
  echo "==> build fuzz targets"
  cmake --build --preset fuzz -j "${jobs}"
  for target in fuzz_gcode_parser fuzz_capture_binary fuzz_svc_json \
                fuzz_session_wire fuzz_ref_cache; do
    corpus="tests/fuzz_corpus/${target#fuzz_}"
    case "${target}" in
      fuzz_gcode_parser)   corpus=tests/fuzz_corpus/gcode ;;
      fuzz_capture_binary) corpus=tests/fuzz_corpus/capture ;;
      fuzz_svc_json)       corpus=tests/fuzz_corpus/json ;;
      fuzz_session_wire)   corpus=tests/fuzz_corpus/session ;;
      fuzz_ref_cache)      corpus=tests/fuzz_corpus/refcache ;;
    esac
    echo "==> ${target}: corpus replay + ${budget}s mutation run"
    "./build-fuzz/fuzz/${target}" --time "${budget}" "${corpus}"
  done
  echo "==> all fuzz checks passed"
  exit 0
fi

echo "==> configure (preset: default, warnings are errors)"
cmake --preset default

echo "==> build"
cmake --build --preset default -j "${jobs}"

echo "==> lint (clang-tidy)"
cmake --build --preset lint

if [[ "${quick}" -eq 0 ]]; then
  echo "==> tests"
  ctest --preset default -j "${jobs}"
else
  # Quick mode still smoke-checks the fleet service end to end (unit
  # tests, detector edge cases, and the three CLI exit-code contracts).
  echo "==> fleet suite (ctest -L fleet)"
  ctest --preset default -L fleet -j "${jobs}"
  # ...and the observability layer: obs unit tests, strict-parse CLI
  # contracts, and the bench_obs < 2% disabled-overhead gate.
  echo "==> obs suite (ctest -L obs)"
  ctest --preset default -L obs -j "${jobs}"
  # ...and the fault-tolerance layer: supervisor/backoff/watchdog units,
  # checkpoint format, and the chaos-campaign + stop/resume CLI drills.
  echo "==> chaos suite (ctest -L chaos)"
  ctest --preset default -L chaos -j "${jobs}"
  # ...and the service layer: wire/session/cache units, the daemon
  # socket + stdin + replay smokes, and the session-chaos drills.
  echo "==> daemon suite (ctest -L daemon)"
  ctest --preset default -L daemon -j "${jobs}"
  # ...and the fusion layer: channel naming/registry units, the
  # pick_first_trip verdict rule, per-channel attribution, and the
  # multi-modal CLI acceptance drill.
  echo "==> fusion suite (ctest -L fusion)"
  ctest --preset default -L fusion -j "${jobs}"
  # ...and the perf gates as smoke runs: timer-wheel vs heap ratio,
  # events/s floor, metrics-enabled fleet overhead, cold-vs-warm
  # reference-cache speedup.  On plain builds the thresholds enforce by
  # exit code; under sanitizers the benches downgrade themselves to
  # report-only (bench::built_with_sanitizers), so this stays a
  # correctness smoke there.
  echo "==> perf smoke (bench_sched / bench_parallel / bench_obs / bench_cache)"
  ./build/bench/bench_sched
  ./build/bench/bench_parallel --jobs 2
  ./build/bench/bench_obs --jobs 2
  ./build/bench/bench_cache --jobs 2
fi

echo "==> all checks passed"
