// offramps_cli: the whole platform behind one command-line tool.
//
//   offramps_cli print   [options]           print an object, save capture
//   offramps_cli attack  --trojan T2 [...]   print under a Trojan
//   offramps_cli detect  --golden A.csv --suspect B.csv [--margin P]
//   offramps_cli goldenfree --capture A.csv
//   offramps_cli reconstruct --capture A.csv [--layer N]
//
// print/attack options:
//   --object cube|square|cylinder   (default cube)
//   --size MM --height MM           (default 10 x 3)
//   --seed N                        firmware time-noise seed
//   --route mitm|record|direct      board jumpers (default mitm)
//   --reduce FACTOR                 Flaw3D-mutate the g-code first
//   --capture FILE                  write the capture CSV
//   --vcd FILE                      write a waveform of the print start
//
// Example session (a firmware-level attack, visible in the capture):
//   offramps_cli print  --capture golden.csv --seed 1
//   offramps_cli print  --reduce 0.9 --capture suspect.csv --seed 2
//   offramps_cli detect --golden golden.csv --suspect suspect.csv
//
// Signal-level attacks (attack --trojan T1..T10) damage the part but -
// as the paper notes - happen downstream of the taps, so their captures
// compare clean; inspect the printed part metrics instead.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "detect/golden_free.hpp"
#include "detect/reconstruct.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "sim/vcd.hpp"

using namespace offramps;

namespace {

using Flags = std::map<std::string, std::string>;

Flags parse_flags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

std::string flag(const Flags& f, const std::string& key,
                 const std::string& fallback) {
  const auto it = f.find(key);
  return it == f.end() ? fallback : it->second;
}

gcode::Program build_object(const Flags& flags) {
  const std::string object = flag(flags, "object", "cube");
  const double size = std::atof(flag(flags, "size", "10").c_str());
  const double height = std::atof(flag(flags, "height", "3").c_str());
  host::SliceProfile profile;
  if (object == "cube") {
    return host::slice_cube({.size_x_mm = size, .size_y_mm = size,
                             .height_mm = height, .center_x_mm = 110,
                             .center_y_mm = 100},
                            profile);
  }
  if (object == "square") {
    return host::slice_square({.size_mm = size, .height_mm = height,
                               .center_x_mm = 110, .center_y_mm = 100},
                              profile);
  }
  if (object == "cylinder") {
    return host::slice_cylinder_arcs({.diameter_mm = size,
                                      .height_mm = height, .facets = 0,
                                      .center_x_mm = 110,
                                      .center_y_mm = 100},
                                     profile);
  }
  std::fprintf(stderr, "unknown object '%s'\n", object.c_str());
  std::exit(2);
}

core::TrojanSuiteConfig build_trojans(const Flags& flags) {
  core::TrojanSuiteConfig cfg;
  const std::string t = flag(flags, "trojan", "");
  if (t.empty()) return cfg;
  if (t == "T1") cfg.t1 = core::T1Config{};
  else if (t == "T2") cfg.t2 = core::T2Config{};
  else if (t == "T3") cfg.t3 = core::T3Config{};
  else if (t == "T4") cfg.t4 = core::T4Config{};
  else if (t == "T5") cfg.t5 = core::T5Config{};
  else if (t == "T6") cfg.t6 = core::T6Config{};
  else if (t == "T7") cfg.t7 = core::T7Config{};
  else if (t == "T8") cfg.t8 = core::T8Config{};
  else if (t == "T9") cfg.t9 = core::T9Config{};
  else if (t == "T10") cfg.t10 = core::T10Config{};
  else {
    std::fprintf(stderr, "unknown trojan '%s' (T1..T10)\n", t.c_str());
    std::exit(2);
  }
  return cfg;
}

core::Capture load_capture(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return core::Capture::from_csv(ss.str(), path);
}

void save_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(),
               text.size());
}

int run_print(const Flags& flags) {
  host::RigOptions options;
  options.firmware.jitter_seed =
      static_cast<std::uint64_t>(std::atoll(flag(flags, "seed", "1").c_str()));
  const std::string route = flag(flags, "route", "mitm");
  options.route = route == "direct"   ? core::RouteMode::kDirect
                  : route == "record" ? core::RouteMode::kFpgaRecord
                                      : core::RouteMode::kFpgaMitm;
  options.trojans = build_trojans(flags);
  host::Rig rig(options);

  std::unique_ptr<sim::VcdRecorder> vcd;
  if (flags.count("vcd") != 0) {
    vcd = std::make_unique<sim::VcdRecorder>(rig.scheduler());
    for (const auto axis : sim::kAllAxes) {
      vcd->add(rig.board().arduino_side().step(axis));
      vcd->add(rig.board().arduino_side().dir(axis));
    }
    vcd->add(rig.board().arduino_side().wire(sim::Pin::kHotendHeat));
  }

  gcode::Program program = build_object(flags);
  if (flags.count("reduce") != 0) {
    program = gcode::flaw3d::apply_reduction(
        program, {.factor = std::atof(flags.at("reduce").c_str())});
    std::fprintf(stderr, "g-code mutated: Flaw3D reduction x%s\n",
                 flags.at("reduce").c_str());
  }
  const host::RunResult r = rig.run(program);
  std::printf("outcome:      %s\n",
              r.finished ? "completed"
                         : ("KILLED: " + r.kill_reason).c_str());
  std::printf("duration:     %.1f simulated s (%llu events)\n",
              r.sim_seconds,
              static_cast<unsigned long long>(r.events_executed));
  std::printf("capture:      %zu transactions, finals X=%lld Y=%lld "
              "Z=%lld E=%lld\n",
              r.capture.size(),
              static_cast<long long>(r.capture.final_counts[0]),
              static_cast<long long>(r.capture.final_counts[1]),
              static_cast<long long>(r.capture.final_counts[2]),
              static_cast<long long>(r.capture.final_counts[3]));
  std::printf("part:         %zu layers, %.1f x %.1f mm, %.1f mm filament, "
              "flow %.3f\n",
              r.part.layer_count, r.part.bbox_width_mm,
              r.part.bbox_depth_mm, r.part.total_filament_mm,
              r.flow_ratio());
  std::printf("geometry:     layer shift %.3f mm, Z spacing %.3f mm, "
              "first layer %.3f mm\n",
              r.part.max_layer_shift_mm, r.part.max_z_spacing_mm,
              r.part.first_layer_z_mm);
  std::printf("machine:      hotend peak %.1f C, mean fan %.0f rpm, "
              "dropped steps %llu\n",
              r.hotend_peak_c, r.mean_fan_rpm,
              static_cast<unsigned long long>(
                  r.motor_dropped_steps[0] + r.motor_dropped_steps[1] +
                  r.motor_dropped_steps[2] + r.motor_dropped_steps[3]));

  if (flags.count("capture") != 0) {
    save_text(flags.at("capture"), r.capture.to_csv());
  }
  if (vcd) save_text(flags.at("vcd"), vcd->render());
  return r.finished ? 0 : 1;
}

int run_detect(const Flags& flags) {
  if (flags.count("golden") == 0 || flags.count("suspect") == 0) {
    std::fprintf(stderr, "detect needs --golden and --suspect\n");
    return 2;
  }
  const core::Capture golden = load_capture(flags.at("golden"));
  const core::Capture suspect = load_capture(flags.at("suspect"));
  detect::CompareOptions options;
  options.margin_pct = std::atof(flag(flags, "margin", "5").c_str());
  options.window_slack = static_cast<std::uint32_t>(
      std::atoi(flag(flags, "slack", "0").c_str()));
  const detect::Report report = detect::compare(golden, suspect, options);
  std::fputs(report.to_string().c_str(), stdout);
  return report.trojan_likely ? 1 : 0;
}

int run_goldenfree(const Flags& flags) {
  if (flags.count("capture") == 0) {
    std::fprintf(stderr, "goldenfree needs --capture\n");
    return 2;
  }
  const detect::GoldenFreeReport report =
      detect::analyze_golden_free(load_capture(flags.at("capture")));
  std::fputs(report.to_string().c_str(), stdout);
  return report.trojan_likely ? 1 : 0;
}

int run_reconstruct(const Flags& flags) {
  if (flags.count("capture") == 0) {
    std::fprintf(stderr, "reconstruct needs --capture\n");
    return 2;
  }
  const detect::ReconstructedPart part =
      detect::reconstruct_part(load_capture(flags.at("capture")));
  std::printf("%zu layers, %.2f mm tall, footprint %.1f x %.1f mm, "
              "%.1f mm filament\n",
              part.layers.size(), part.height_mm, part.bbox_width_mm,
              part.bbox_depth_mm, part.total_filament_mm);
  if (!part.layers.empty()) {
    const auto layer = static_cast<std::size_t>(std::atoll(
        flag(flags, "layer",
             std::to_string(part.layers.size() / 2))
            .c_str()));
    std::printf("layer %zu:\n%s", layer,
                part.ascii_layer(layer, 48).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s {print|attack|detect|goldenfree|reconstruct} "
        "[--flags]\n",
        argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const Flags flags = parse_flags(argc, argv, 2);
  try {
    if (mode == "print") return run_print(flags);
    if (mode == "attack") {
      if (flags.count("trojan") == 0) {
        std::fprintf(stderr, "attack needs --trojan T1..T10\n");
        return 2;
      }
      return run_print(flags);
    }
    if (mode == "detect") return run_detect(flags);
    if (mode == "goldenfree") return run_goldenfree(flags);
    if (mode == "reconstruct") return run_reconstruct(flags);
  } catch (const offramps::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
