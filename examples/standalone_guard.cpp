// Standalone (host-free) defense: the paper's detection workflow needs
// a connected PC running the comparison script, and its Limitations
// section flags that many printers run unattended, with no host at all.
// This example shows the extension that closes the gap: the golden model
// loaded into the FPGA fabric itself, with an autonomous safe-stop.
//
// Scene: a print farm runs jobs from local storage.  One job was
// tampered with upstream.  No computer is attached - only the OFFRAMPS
// board, carrying the golden model from a previously verified run.
#include <cstdio>

#include "core/fabric_guard.hpp"
#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

using namespace offramps;

namespace {

gcode::Program part() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 3,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

}  // namespace

int main() {
  // A verified golden run, captured once, flashed into the fabric.
  std::printf("[setup] capturing golden model for the fabric guard...\n");
  host::RigOptions gopt;
  gopt.firmware.jitter_seed = 1;
  host::Rig golden_rig(gopt);
  const host::RunResult golden_run = golden_rig.run(part());
  const core::Capture& golden = golden_run.capture;
  std::printf("[setup] %zu transactions stored in fabric memory "
              "(%zu bytes of BRAM)\n\n",
              golden.size(), golden.size() * 16);

  struct Job {
    const char* name;
    gcode::Program program;
    std::uint64_t seed;
  };
  const Job jobs[] = {
      {"night shift #1 (clean)", part(), 11},
      {"night shift #2 (tampered: 15% starvation)",
       gcode::flaw3d::apply_reduction(part(), {.factor = 0.85}), 22},
      {"night shift #3 (clean)", part(), 33},
  };

  for (const Job& job : jobs) {
    host::RigOptions options;
    options.firmware.jitter_seed = job.seed;
    host::Rig rig(options);
    core::FabricGuard guard(rig.board().fpga(), golden);
    const host::RunResult r = rig.run(job.program);
    if (guard.alarmed()) {
      std::printf("%-44s ALARM at transaction %u -> safe stop "
                  "(motors freed, heaters cut); %.1f mm of filament "
                  "spent vs %.1f golden\n",
                  job.name, guard.alarm_at_index(),
                  r.part.total_filament_mm,
                  golden_run.part.total_filament_mm);
    } else {
      std::printf("%-44s completed clean (%zu transactions, "
                  "flow %.3f)\n",
                  job.name, r.capture.size(), r.flow_ratio());
    }
  }

  std::printf(
      "\nNo host computer took part: comparison, alarm, and machine\n"
      "shutdown all happened inside the intermediary - the autonomy the\n"
      "paper lists as future work for unattended printers.\n");
  return 0;
}
