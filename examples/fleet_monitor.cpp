// fleet_monitor: the fleet service in miniature.
//
// Six printers run side by side; two of them have Flaw3D Trojans
// implanted in their g-code path.  Each rig streams its capture into an
// online detector through the bounded ring buffer, and a mid-print alarm
// safe-stops just that rig - the farm keeps printing.
//
// Exits 0 when the outcome matches expectations (both sabotaged rigs
// alarmed mid-print, no clean rig alarmed), 1 otherwise - so the example
// doubles as an integration check.
#include <cstdio>

#include "svc/fleet.hpp"

int main() {
  using namespace offramps;

  std::vector<svc::RigSpec> specs(6);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "printer-" + std::to_string(i);
    specs[i].seed = 100 + i;
  }
  specs[1].sabotage = svc::parse_sabotage("reduce:0.85");
  specs[4].sabotage = svc::parse_sabotage("relocate:10");

  svc::FleetOptions options;
  options.safe_stop = true;

  std::printf("fleet_monitor: %zu rigs, 2 sabotaged (reduce:0.85 at "
              "printer-1, relocate:10 at printer-4)\n\n",
              specs.size());

  svc::Fleet fleet(options);
  const svc::FleetReport report = fleet.run(specs);
  std::fputs(report.to_string().c_str(), stdout);

  bool ok = true;
  for (const auto& rig : report.rigs) {
    const bool dirty = rig.spec.sabotage.kind != svc::Sabotage::Kind::kNone;
    if (dirty != rig.detector.alarmed) ok = false;
    if (dirty && !rig.detector.alarmed_mid_print) ok = false;
    if (dirty && rig.detector.alarmed) {
      // A clean print of the same object spans this many capture
      // windows; the alarm window against that is how far the sabotaged
      // part had progressed when the fleet pulled the plug.
      const double full_windows = static_cast<double>(
          report.rigs[0].detector.windows_processed > 0
              ? report.rigs[0].detector.windows_processed
              : 1);
      std::printf("\n%s: %s alarm %u windows into the stream "
                  "(g-code line %zu) - print halted %.1f%% of the way in\n",
                  rig.spec.name.c_str(),
                  svc::channel_name(rig.detector.first_channel),
                  rig.detector.alarm_window, rig.detector.alarm_gcode_line,
                  100.0 * rig.detector.alarm_window / full_windows);
    }
  }
  std::printf("\nverdict: %s\n", ok ? "as expected" : "UNEXPECTED");
  return ok ? 0 : 1;
}
