// gcode_tool: a small command-line utility over the library's host-side
// g-code facilities - the kind of tooling a downstream user reaches for
// first.
//
//   gcode_tool stats   [file]        print program statistics
//   gcode_tool reduce  FACTOR [file] apply the Flaw3D reduction Trojan
//   gcode_tool relocate N [file]     apply the Flaw3D relocation Trojan
//   gcode_tool demo                  emit a sliced demo cube to stdout
//
// With no file, g-code is read from stdin.  Mutated programs are written
// to stdout, so mutations compose with shell pipelines:
//
//   gcode_tool demo | gcode_tool reduce 0.5 | gcode_tool stats
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "gcode/flaw3d.hpp"
#include "gcode/parser.hpp"
#include "gcode/stats.hpp"
#include "gcode/writer.hpp"
#include "host/slicer.hpp"
#include "host/time_estimator.hpp"
#include "sim/error.hpp"

using namespace offramps;

namespace {

std::string read_input(int argc, char** argv, int file_arg) {
  if (argc > file_arg) {
    std::ifstream in(argv[file_arg]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[file_arg]);
      std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  return ss.str();
}

int cmd_stats(const gcode::Program& program) {
  const gcode::Statistics s = gcode::analyze(program);
  std::printf("commands:          %llu\n",
              static_cast<unsigned long long>(s.command_count));
  std::printf("moves:             %llu (%llu extrusion, %llu travel, "
              "%llu retraction)\n",
              static_cast<unsigned long long>(s.move_count),
              static_cast<unsigned long long>(s.extrusion_move_count),
              static_cast<unsigned long long>(s.travel_move_count),
              static_cast<unsigned long long>(s.retraction_count));
  std::printf("filament:          %.2f mm extruded, %.2f mm retracted "
              "(net %.2f mm)\n",
              s.extruded_mm, s.retracted_mm, s.net_e_mm());
  std::printf("path:              %.1f mm printing, %.1f mm travel\n",
              s.extrusion_path_mm, s.travel_path_mm);
  std::printf("layers:            %zu (max z %.2f mm)\n", s.layer_z.size(),
              s.max_z);
  if (s.extrusion_bbox.valid) {
    std::printf("footprint:         %.1f x %.1f mm at (%.1f, %.1f)\n",
                s.extrusion_bbox.width(), s.extrusion_bbox.depth(),
                s.extrusion_bbox.min_x, s.extrusion_bbox.min_y);
  }
  std::printf("naive print time:  %.0f s (feedrate-only estimate)\n",
              s.naive_time_s);
  return 0;
}

int cmd_stats_with_estimate(const gcode::Program& program) {
  cmd_stats(program);
  const host::TimeEstimate est = host::estimate_print_time(program);
  std::printf("planned time:      %.0f s motion + %.0f s dwell over %zu "
              "moves (trapezoid model)\n",
              est.motion_s, est.dwell_s, est.moves);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s {stats|reduce FACTOR|relocate N|demo} [file]\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  try {
    if (mode == "demo") {
      host::SliceProfile profile;
      host::CubeSpec cube{.size_x_mm = 15, .size_y_mm = 15,
                          .height_mm = 5, .center_x_mm = 110,
                          .center_y_mm = 100};
      std::fputs(gcode::write_program(host::slice_cube(cube, profile))
                     .c_str(),
                 stdout);
      return 0;
    }
    if (mode == "stats") {
      return cmd_stats_with_estimate(
          gcode::parse_program(read_input(argc, argv, 2)));
    }
    if (mode == "reduce") {
      if (argc < 3) {
        std::fprintf(stderr, "reduce needs a factor\n");
        return 2;
      }
      const double factor = std::atof(argv[2]);
      gcode::flaw3d::MutationReport report;
      const auto mutated = gcode::flaw3d::apply_reduction(
          gcode::parse_program(read_input(argc, argv, 3)),
          {.factor = factor}, &report);
      std::fputs(gcode::write_program(mutated).c_str(), stdout);
      std::fprintf(stderr, "reduced %llu moves: %.1f mm -> %.1f mm\n",
                   static_cast<unsigned long long>(report.moves_modified),
                   report.e_in_mm, report.e_out_mm);
      return 0;
    }
    if (mode == "relocate") {
      if (argc < 3) {
        std::fprintf(stderr, "relocate needs a move count\n");
        return 2;
      }
      const auto n = static_cast<std::uint32_t>(std::atoi(argv[2]));
      gcode::flaw3d::MutationReport report;
      const auto mutated = gcode::flaw3d::apply_relocation(
          gcode::parse_program(read_input(argc, argv, 3)),
          {.every_n_moves = n, .take_fraction = 0.15}, &report);
      std::fputs(gcode::write_program(mutated).c_str(), stdout);
      std::fprintf(stderr, "inserted %llu relocation dumps\n",
                   static_cast<unsigned long long>(
                       report.commands_inserted));
      return 0;
    }
  } catch (const offramps::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
