// Quickstart: print a 10 mm calibration cube through the full simulated
// stack (Marlin-like firmware -> OFFRAMPS board in MITM mode -> printer),
// with the FPGA monitoring gateware capturing the print, and show the
// capture summary plus part metrics.
//
// This is the "hello world" of the library: no Trojans, golden behaviour.
#include <cstdio>

#include "gcode/stats.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

int main() {
  using namespace offramps;

  // 1. Slice a small cube the way Cura would.
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10.0,
                      .size_y_mm = 10.0,
                      .height_mm = 4.0,
                      .center_x_mm = 110.0,
                      .center_y_mm = 100.0};
  const gcode::Program program = host::slice_cube(cube, profile);
  const gcode::Statistics stats = gcode::analyze(program);
  std::printf("sliced cube: %llu commands, %llu moves, %.1f mm extruded, "
              "%zu layers\n",
              static_cast<unsigned long long>(stats.command_count),
              static_cast<unsigned long long>(stats.move_count),
              stats.extruded_mm, stats.layer_z.size());

  // 2. Assemble the rig: firmware + OFFRAMPS (MITM route) + printer.
  host::RigOptions options;
  options.route = core::RouteMode::kFpgaMitm;
  host::Rig rig(options);

  // 3. Print.
  const host::RunResult result = rig.run(program);

  std::printf("print %s in %.1f simulated seconds (%llu events)\n",
              result.finished ? "finished" : "DID NOT FINISH",
              result.sim_seconds,
              static_cast<unsigned long long>(result.events_executed));
  if (result.killed) {
    std::printf("firmware killed: %s\n", result.kill_reason.c_str());
  }

  // 4. What the OFFRAMPS captured.
  std::printf("capture: %zu transactions; final counts X=%lld Y=%lld "
              "Z=%lld E=%lld\n",
              result.capture.size(),
              static_cast<long long>(result.capture.final_counts[0]),
              static_cast<long long>(result.capture.final_counts[1]),
              static_cast<long long>(result.capture.final_counts[2]),
              static_cast<long long>(result.capture.final_counts[3]));

  // 5. What the printer made of it.
  std::printf("part: %zu layers, footprint %.2f x %.2f mm, filament "
              "%.1f mm, max layer shift %.3f mm\n",
              result.part.layer_count, result.part.bbox_width_mm,
              result.part.bbox_depth_mm, result.part.total_filament_mm,
              result.part.max_layer_shift_mm);
  std::printf("flow ratio (motor/commanded E): %.3f\n", result.flow_ratio());
  std::printf("hotend peak %.1f C, mean fan %.0f rpm\n",
              result.hotend_peak_c, result.mean_fan_rpm);
  return result.finished ? 0 : 1;
}
