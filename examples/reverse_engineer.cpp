// Reverse engineering a printed part from its control signals.
//
// The paper's Discussion points out that direct access to the step
// streams enables "even reverse-engineering printed parts from their
// control signals" - the IP-exfiltration scenario its related work
// approaches through lossy side channels (acoustic, power, optical).
// Here the OFFRAMPS capture is all an attacker needs: this example prints
// a part, takes only the UART capture (16 bytes per 0.1 s), and recovers
// the part's geometry from it.
#include <cstdio>

#include "detect/reconstruct.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

using namespace offramps;

int main() {
  // Victim prints a cylinder (say, a proprietary bushing).
  host::SliceProfile profile;
  host::CylinderSpec spec{.diameter_mm = 16, .height_mm = 3, .facets = 48,
                          .center_x_mm = 110, .center_y_mm = 100};
  host::Rig rig;
  const host::RunResult r = rig.run(host::slice_cylinder(spec, profile));
  if (!r.finished) {
    std::fprintf(stderr, "print failed: %s\n", r.kill_reason.c_str());
    return 1;
  }
  std::printf("victim print complete; attacker holds %zu transactions "
              "(%zu bytes on the wire)\n\n",
              r.capture.size(), r.capture.size() * 16);

  // Attacker reconstructs from the capture alone.
  const detect::ReconstructedPart part =
      detect::reconstruct_part(r.capture);
  std::printf("reconstructed: %zu layers, %.2f mm tall, footprint "
              "%.1f x %.1f mm, %.0f mm of extrusion path, %.1f mm "
              "filament\n",
              part.layers.size(), part.height_mm, part.bbox_width_mm,
              part.bbox_depth_mm, part.total_path_mm,
              part.total_filament_mm);
  std::printf("ground truth:  %zu layers, footprint %.1f x %.1f mm, "
              "%.1f mm filament\n\n",
              r.part.layer_count, r.part.bbox_width_mm,
              r.part.bbox_depth_mm, r.part.total_filament_mm);

  const std::size_t mid = part.layers.size() / 2;
  std::printf("layer %zu (z=%.2f mm) as recovered from the step counts:\n%s",
              mid, part.layers[mid].z_mm,
              part.ascii_layer(mid, 48).c_str());

  std::printf(
      "\nNo camera, microphone, or power probe involved: the control\n"
      "signals alone leak the full part geometry, which is why the paper\n"
      "treats signal-level access as both an analysis tool and a threat.\n");
  return 0;
}
