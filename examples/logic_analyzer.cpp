// Logic analyzer: dump the signals the OFFRAMPS sees as a VCD waveform.
//
// The paper describes the FPGA acting as "a rudimentary 'digital logic
// analyzer' for the control signals passing between the Arduino and
// RAMPS boards".  This example records the firmware-side nets during the
// start of a print and writes an IEEE 1364 VCD file you can open in
// GTKWave:
//
//   ./logic_analyzer > print_start.vcd && gtkwave print_start.vcd
#include <cstdio>

#include "host/rig.hpp"
#include "host/slicer.hpp"
#include "sim/vcd.hpp"

using namespace offramps;

int main() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 8, .size_y_mm = 8, .height_mm = 0.5,
                      .center_x_mm = 110, .center_y_mm = 100};
  host::Rig rig;

  // Tap every interesting net on the Arduino side plus the endstop
  // returns and the OFFRAMPS host link.
  sim::VcdRecorder vcd(rig.scheduler());
  auto& ard = rig.board().arduino_side();
  for (const auto axis : sim::kAllAxes) {
    vcd.add(ard.step(axis));
    vcd.add(ard.dir(axis));
    vcd.add(ard.enable(axis));
  }
  vcd.add(ard.wire(sim::Pin::kHotendHeat));
  vcd.add(ard.wire(sim::Pin::kFan));
  for (const auto axis : {sim::Axis::kX, sim::Axis::kY, sim::Axis::kZ}) {
    vcd.add(ard.min_endstop(axis));
  }
  vcd.add(rig.board().fpga().uart_tx_line(), "OFFRAMPS_UART_TX");

  const host::RunResult r = rig.run(host::slice_cube(cube, profile));
  std::fprintf(stderr,
               "print %s; captured %zu value changes on %zu channels\n",
               r.finished ? "finished" : "failed", vcd.events(),
               vcd.channels());

  std::fputs(vcd.render().c_str(), stdout);
  return r.finished ? 0 : 1;
}
