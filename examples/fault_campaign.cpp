// Fault campaign: sweep the declarative fault injector across every fault
// family (stuck/glitch digital nets, drifting thermistor, corrupted UART
// frames, scheduler timing jitter) at three intensities each, print one
// small part per cell, and classify every run as clean / fail-safe /
// silent-corruption / false-alarm against a clean reference.
//
//   ./fault_campaign [report.json] [--jobs N] [--metrics]
//                    [--trace-out FILE]
//
// Writes the machine-readable JSON report to the given path (default
// fault_campaign.json in the working directory) and prints a summary
// table.  The schema is documented in EXPERIMENTS.md, "Fault campaigns".
// Cells run in parallel across N workers (--jobs, else OFFRAMPS_JOBS,
// else hardware concurrency); the report is identical for any N.
//
// Exit codes (the tool-suite contract shared with offramps_lint and
// offramps_fleetd): 0 = campaign ran and self-checks passed,
// 1 = self-check findings or report write failure, 2 = usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/strict_parse.hpp"
#include "host/fault_campaign.hpp"
#include "host/parallel_runner.hpp"
#include "host/slicer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fault_campaign [report.json] [--jobs N] [--metrics]\n"
    "                      [--trace-out FILE]\n"
    "  report.json      output path (default: fault_campaign.json)\n"
    "  --jobs N, -j N   worker threads (default: OFFRAMPS_JOBS or cores)\n"
    "  --metrics        print the obs:: metrics registry after the run\n"
    "  --trace-out FILE write a chrome://tracing trace of the sweep\n"
    "  --help, -h       this text\n"
    "exit: 0 clean, 1 any alarm/lost/finding (here: self-check findings\n"
    "or write failure), 2 usage or spec error, 75 partial campaign\n"
    "(never emitted here) - the same contract as offramps_fleetd and\n"
    "offramps_lint\n";

std::size_t parse_jobs_or_die(const char* text) {
  const auto v = offramps::core::parse_long(text);
  if (!v || *v < 1) {
    std::fprintf(stderr, "bad --jobs value '%s'\n", text);
    std::fputs(kUsage, stderr);
    std::exit(2);
  }
  return static_cast<std::size_t>(*v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace offramps;

  const char* out_path = "fault_campaign.json";
  std::size_t jobs = host::ParallelRunner::default_workers();
  bool metrics = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if ((std::strcmp(argv[i], "--jobs") == 0 ||
                std::strcmp(argv[i], "-j") == 0) &&
               i + 1 < argc) {
      jobs = parse_jobs_or_die(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = parse_jobs_or_die(argv[i] + 7);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      std::fputs(kUsage, stderr);
      return 2;
    } else {
      out_path = argv[i];
    }
  }

  if (metrics) obs::set_enabled(true);
  if (!trace_path.empty()) obs::TraceSession::start();

  // A small sliced cube keeps each of the sweep's full prints quick while
  // still exercising homing, heating, and multi-layer motion.
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10.0,
                      .size_y_mm = 10.0,
                      .height_mm = 2.0,
                      .center_x_mm = 110.0,
                      .center_y_mm = 100.0};
  const gcode::Program program = host::slice_cube(cube, profile);

  host::FaultCampaign campaign(program, "cube-10x10x2");
  const auto sweep = host::FaultCampaign::default_sweep();
  host::ParallelRunner pool(jobs);
  std::printf("running %zu-cell fault sweep (plus 1 clean reference) "
              "on %zu worker(s)...\n",
              sweep.size(), pool.workers());

  const host::CampaignReport report = campaign.run(sweep, pool);

  if (!trace_path.empty()) {
    obs::TraceSession::stop();
    if (!obs::TraceSession::save(trace_path)) {
      std::fprintf(stderr, "cannot write trace '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                obs::TraceSession::event_count());
  }
  if (metrics) {
    std::fputs(obs::Registry::instance().to_json().c_str(), stdout);
    std::fputc('\n', stdout);
  }

  std::printf("\n%-15s %-18s %9s %-18s %6s %6s %5s\n", "fault", "target",
              "intensity", "outcome", "dev%", "txns", "crc-");
  for (const auto& cell : report.cells) {
    std::printf("%-15s %-18s %9g %-18s %6.1f %6zu %5llu\n",
                sim::fault_kind_name(cell.fault.kind),
                cell.fault.target.c_str(), cell.fault.intensity,
                cell_outcome_name(cell.outcome), cell.deviation * 100.0,
                cell.capture_transactions,
                static_cast<unsigned long long>(cell.crc_rejected));
  }
  std::printf("\nsummary: %zu clean, %zu fail-safe, %zu silent-corruption, "
              "%zu false-alarm (clean reference: %zu transactions)\n",
              report.count(host::CellOutcome::kClean),
              report.count(host::CellOutcome::kFailSafe),
              report.count(host::CellOutcome::kSilentCorruption),
              report.count(host::CellOutcome::kFalseAlarm),
              report.clean_transactions);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  out << report.to_json();
  std::printf("report written to %s\n", out_path);

  // Self-check mirroring the acceptance criteria: zero-intensity cells
  // must classify clean (no false alarms), and UART bit-flip cells must
  // survive via CRC framing with the capture matching the clean run.
  int rc = 0;
  for (const auto& cell : report.cells) {
    if (cell.fault.intensity == 0.0 &&
        cell.outcome != host::CellOutcome::kClean) {
      std::fprintf(stderr, "FAIL: zero-intensity cell %s not clean\n",
                   cell.fault.describe().c_str());
      rc = 1;
    }
    if (cell.fault.kind == sim::FaultKind::kUartBitFlip &&
        cell.capture_transactions != report.clean_transactions) {
      std::fprintf(stderr,
                   "FAIL: uart cell %s capture %zu != clean %zu\n",
                   cell.fault.describe().c_str(), cell.capture_transactions,
                   report.clean_transactions);
      rc = 1;
    }
  }
  return rc;
}
