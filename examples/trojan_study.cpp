// Trojan study: the OFFRAMPS as an *attack* platform (paper section IV).
//
// Prints the same part three times - golden, with the T2 extrusion-
// masking Trojan, and with T2 being toggled on and off mid-print through
// the Trojan Control Module's multiplexer - and compares the physical
// outcome of each.  Demonstrates:
//   * arming Trojans from a TrojanSuiteConfig,
//   * homing-triggered activation,
//   * dynamic enable/disable (the paper's multiplexed control), and
//   * part-quality metrics as the evidence channel.
#include <cstdio>

#include "host/rig.hpp"
#include "host/slicer.hpp"

using namespace offramps;

namespace {

gcode::Program part() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 3,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

void describe(const char* label, const host::RunResult& r) {
  std::printf("%-22s flow %.3f  filament %6.1f mm  layer shift %.3f mm  %s\n",
              label, r.flow_ratio(), r.part.total_filament_mm,
              r.part.max_layer_shift_mm,
              r.finished ? "completed" : r.kill_reason.c_str());
}

}  // namespace

int main() {
  const gcode::Program program = part();

  // 1. Golden reference.
  host::Rig golden_rig;
  describe("golden", golden_rig.run(program));

  // 2. T2 armed for the whole print: half the extruder pulses vanish
  //    between the Arduino and the RAMPS (Flaw3D-class effect, but done
  //    in hardware, invisible to the firmware).
  host::RigOptions t2_options;
  t2_options.trojans.t2 = core::T2Config{.keep_ratio = 0.5};
  host::Rig t2_rig(t2_options);
  describe("T2 (50% mask)", t2_rig.run(program));

  // 3. Same Trojan, but the control module toggles it per layer: odd
  //    layers print starved, even layers print clean - the kind of
  //    selective, hard-to-diagnose defect a malicious intermediary can
  //    produce.
  host::RigOptions toggle_options;
  toggle_options.trojans.t2 = core::T2Config{.keep_ratio = 0.5};
  host::Rig toggle_rig(toggle_options);
  toggle_rig.board().fpga().layers().on_layer(
      [&toggle_rig](std::uint64_t layer) {
        if (auto* t2 = toggle_rig.board().trojans().find(core::TrojanId::kT2)) {
          t2->set_enabled(layer % 2 == 1);
        }
      });
  describe("T2 toggled per layer", toggle_rig.run(program));

  std::printf(
      "\nNote how the firmware reports success in every case: the attack\n"
      "lives entirely between the controller and the drivers, exactly the\n"
      "blind spot the OFFRAMPS platform was built to study.\n");
  return 0;
}
