// Offline Flaw3D detection workflow (paper section V-D), including the
// capture-file round trip: captures are exported to the Figure 4 CSV
// format, re-loaded (as the paper's Python tool would), and compared.
//
// Usage: flaw3d_detect [reduction_factor]
//   e.g. flaw3d_detect 0.9
#include <cstdio>
#include <cstdlib>
#include <string>

#include "detect/compare.hpp"
#include "gcode/flaw3d.hpp"
#include "gcode/stats.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

using namespace offramps;

int main(int argc, char** argv) {
  double factor = 0.9;
  if (argc > 1) factor = std::atof(argv[1]);
  if (factor <= 0.0 || factor > 1.0) {
    std::fprintf(stderr, "reduction factor must be in (0, 1]\n");
    return 2;
  }

  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 3,
                      .center_x_mm = 110, .center_y_mm = 100};
  const gcode::Program clean = host::slice_cube(cube, profile);

  // Mutate the g-code the way the Flaw3D bootloader would.
  gcode::flaw3d::MutationReport mutation;
  const gcode::Program dirty =
      gcode::flaw3d::apply_reduction(clean, {.factor = factor}, &mutation);
  std::printf("mutated %llu of %llu extrusion-relevant moves "
              "(%.1f mm -> %.1f mm commanded filament)\n",
              static_cast<unsigned long long>(mutation.moves_modified),
              static_cast<unsigned long long>(mutation.moves_seen),
              mutation.e_in_mm, mutation.e_out_mm);

  // Print both and export the captures as CSV (the OFFRAMPS host-side
  // artifact format).
  host::RigOptions gopt;
  gopt.firmware.jitter_seed = 1;
  host::Rig golden_rig(gopt);
  const host::RunResult golden = golden_rig.run(clean);

  host::RigOptions topt;
  topt.firmware.jitter_seed = 2;
  host::Rig trojan_rig(topt);
  const host::RunResult trojaned = trojan_rig.run(dirty);

  const std::string golden_csv = golden.capture.to_csv();
  const std::string trojan_csv = trojaned.capture.to_csv();
  std::printf("golden capture: %zu bytes of CSV; trojaned: %zu bytes\n",
              golden_csv.size(), trojan_csv.size());

  // Reload from CSV - the same path an operator archiving golden models
  // would use - then run the detector.
  core::Capture golden_loaded = core::Capture::from_csv(golden_csv, "golden");
  core::Capture trojan_loaded =
      core::Capture::from_csv(trojan_csv, "suspect");
  // CSV carries no final-count sideband; re-attach the live finals the
  // way the capture tool stores them alongside.
  golden_loaded.final_counts = golden.capture.final_counts;
  trojan_loaded.final_counts = trojaned.capture.final_counts;

  const detect::Report report =
      detect::compare(golden_loaded, trojan_loaded);
  std::printf("\n--- detection tool output ---\n%s",
              report.to_string().c_str());
  return report.trojan_likely ? 0 : 1;
}
