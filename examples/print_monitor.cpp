// Print monitoring: the OFFRAMPS as a *defense* platform (paper section V).
//
// Step 1: a verified golden print is captured (in production this part
// would then pass destructive/non-destructive testing).
// Step 2: a fleet of production prints runs under continuous monitoring;
// one of them is built from Trojaned g-code.  The real-time monitor halts
// the compromised print as soon as its step counts leave the 5% envelope,
// saving machine time and material - the paper's "all parts are checked,
// not just a random subset" workflow.
#include <cstdio>

#include "gcode/flaw3d.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

using namespace offramps;

namespace {

gcode::Program part() {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10, .size_y_mm = 10, .height_mm = 3,
                      .center_x_mm = 110, .center_y_mm = 100};
  return host::slice_cube(cube, profile);
}

}  // namespace

int main() {
  const gcode::Program program = part();

  // --- Step 1: capture and "verify" the golden part ------------------------
  std::printf("[1] capturing golden reference print...\n");
  host::RigOptions golden_options;
  golden_options.firmware.jitter_seed = 1;
  host::Rig golden_rig(golden_options);
  const host::RunResult golden = golden_rig.run(program);
  std::printf("    %zu transactions captured; part verified "
              "(%.1f mm filament, %zu layers)\n\n",
              golden.capture.size(), golden.part.total_filament_mm,
              golden.part.layer_count);

  // --- Step 2: production prints under continuous monitoring ---------------
  struct Job {
    const char* name;
    gcode::Program program;
    std::uint64_t seed;
  };
  const Job jobs[] = {
      {"unit-001 (clean)", program, 101},
      {"unit-002 (clean)", program, 202},
      {"unit-003 (SABOTAGED)",
       gcode::flaw3d::apply_reduction(program, {.factor = 0.85}), 303},
      {"unit-004 (clean)", program, 404},
  };

  std::printf("[2] production run, real-time monitoring active:\n");
  int caught = 0;
  for (const Job& job : jobs) {
    host::RigOptions options;
    options.firmware.jitter_seed = job.seed;
    host::Rig rig(options);
    const host::RunResult r = rig.run_monitored(
        job.program, golden.capture, {}, /*abort_on_alarm=*/true);
    if (r.aborted_by_monitor) {
      ++caught;
      const double saved =
          100.0 * (1.0 - static_cast<double>(r.capture.final_counts[3]) /
                             static_cast<double>(golden.capture
                                                     .final_counts[3]));
      std::printf("    %-24s HALTED at transaction %u of %zu "
                  "(~%.0f%% of material saved)\n",
                  job.name, r.alarm_at_transaction, golden.capture.size(),
                  saved);
    } else {
      std::printf("    %-24s completed clean (%zu transactions, "
                  "flow %.3f)\n",
                  job.name, r.capture.size(), r.flow_ratio());
    }
  }

  std::printf("\n%d sabotaged unit(s) intercepted mid-print.\n", caught);
  return caught == 1 ? 0 : 1;
}
