// Experiment E1 - paper Table I: the Trojan suite T0-T9.
//
// Each Trojan runs against the standard calibration-cube print on the full
// simulated stack.  The paper demonstrates T1-T5 with photographs of
// deformed parts and describes T6-T9's machine-level effects; here every
// row reports the measured physical evidence:
//
//   T0 golden; T1-T5 part-modification (completed parts with quantified
//   deformation); T6/T8 denial-of-service; T7 destructive; T9 cooling
//   tamper.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "core/trojans.hpp"

using namespace offramps;

namespace {

struct Row {
  const char* trojan;
  const char* type;
  const char* scenario;
  const char* effect;
  core::TrojanSuiteConfig cfg;
  double cube_height_mm = 3.0;
};

std::string outcome(const host::RunResult& r) {
  if (r.finished) return "completed";
  if (r.killed) return std::string("KILLED: ") + r.kill_reason;
  return "did not finish";
}

/// Builds a suite config arming exactly one Trojan.
template <typename T>
core::TrojanSuiteConfig suite(std::optional<T> core::TrojanSuiteConfig::*slot,
                              T cfg) {
  core::TrojanSuiteConfig s;
  s.*slot = cfg;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  host::ParallelRunner pool(bench::parse_jobs(argc, argv));
  bench::Stopwatch clock;
  bench::heading("Table I: Trojans evaluated using OFFRAMPS");
  std::printf(
      "%-4s %-4s %-18s %-52s\n", "Id", "Type", "Scenario", "Effect (paper)");
  bench::rule();

  using core::TrojanSuiteConfig;
  const Row rows[] = {
      {"T0", "None", "None", "Golden print", {}, 3.0},
      {"T1", "PM", "Loose Belt",
       "Randomly changes steps from X or Y axis during print",
       suite(&TrojanSuiteConfig::t1,
             core::T1Config{.period = sim::seconds(10),
                            .pulses_per_burst = 100}),
       3.0},
      {"T2", "PM", "Incorrect Slicing",
       "Constant over / under extrusion per print (50% mask)",
       suite(&TrojanSuiteConfig::t2, core::T2Config{.keep_ratio = 0.5}),
       3.0},
      {"T3", "PM", "Incorrect Slicing",
       "Increases or decreases filament retraction during Y steps",
       suite(&TrojanSuiteConfig::t3,
             core::T3Config{.over_extrude = true,
                            .y_steps_per_injection = 8}),
       3.0},
      {"T4", "PM", "Z-Wobble",
       "Small shift along X and Y axis on random Z layer increments",
       suite(&TrojanSuiteConfig::t4,
             core::T4Config{.layer_probability = 0.4, .shift_steps = 40}),
       3.0},
      {"T5", "PM", "Incorrect Slicing",
       "Layer delamination via Z-layer shift",
       suite(&TrojanSuiteConfig::t5,
             core::T5Config{.mode = core::T5Config::Mode::kEveryNLayers,
                            .every_n_layers = 4,
                            .shift_steps = 120}),
       3.0},
      {"T6", "DoS", "Hardware Failure",
       "Denial of service via disabling D8/D10 heating element power",
       suite(&TrojanSuiteConfig::t6,
             core::T6Config{.hotend = true, .bed = false,
                            .delay_after_homing_s = 15.0}),
       7.0},
      {"T7", "D", "Hardware Failure",
       "Forcing thermal runaway and permanently enabling heating elements",
       suite(&TrojanSuiteConfig::t7,
             core::T7Config{.hotend = true, .delay_after_homing_s = 10.0}),
       3.0},
      {"T8", "DoS", "Hardware Failure",
       "Arbitrarily deactivating stepper motors via EN signals",
       suite(&TrojanSuiteConfig::t8,
             core::T8Config{.axes = {true, true, false, true},
                            .period_s = 10.0,
                            .off_duration_s = 0.4,
                            .delay_after_homing_s = 2.0}),
       3.0},
      {"T9", "PM", "Hardware Failure",
       "Arbitrarily reducing part fan speed mid-print",
       suite(&TrojanSuiteConfig::t9, core::T9Config{.duty_scale = 0.2}),
       3.0},
      {"T10", "D", "Sensor Spoofing (extension, not in paper)",
       "Analog thermistor spoof: firmware reads 20 C low, overheats "
       "silently",
       suite(&TrojanSuiteConfig::t10,
             core::T10Config{.hotend = true, .understate_c = 20.0}),
       3.0},
  };

  // Golden references per cube height (for relative comparisons).
  const std::vector<host::RunResult> goldens =
      pool.map<host::RunResult>(2, [](std::size_t i) {
        return bench::run_print(bench::standard_cube(i == 0 ? 3.0 : 7.0));
      });
  const host::RunResult& golden3 = goldens[0];
  const host::RunResult& golden7 = goldens[1];

  // Every Trojan case is an independent print; run them on the pool.  The
  // part view must be rendered inside the job because the rig (and its
  // deposition samples) lives only for the job's duration.
  struct CaseOut {
    host::RunResult r;
    std::string part_view;
  };
  constexpr std::size_t kRows = sizeof(rows) / sizeof(rows[0]);
  const std::vector<CaseOut> outs =
      pool.map<CaseOut>(kRows, [&](std::size_t i) {
        const Row& row = rows[i];
        const auto program = bench::standard_cube(row.cube_height_mm);
        host::RigOptions options;
        options.trojans = row.cfg;
        options.firmware.jitter_seed = 1;
        // Dense deposition sampling so the part renders crisply.
        options.printer.deposition_sample_every = 2;
        host::Rig rig(options);
        CaseOut out;
        out.r = rig.run(program);
        const auto& samples = rig.printer().deposition().samples();
        const bool is_golden = std::string(row.trojan) == "T0";
        if (!samples.empty() &&
            (is_golden || out.r.part.max_layer_shift_mm > 0.1)) {
          out.part_view = plant::top_view_ascii(samples, 44);
        }
        return out;
      });

  for (std::size_t i = 0; i < kRows; ++i) {
    const Row& row = rows[i];
    std::printf("%-4s %-4s %-18s %s\n", row.trojan, row.type, row.scenario,
                row.effect);
    const host::RunResult& r = outs[i].r;
    const host::RunResult& golden =
        row.cube_height_mm > 5.0 ? golden7 : golden3;

    std::printf("     outcome: %s\n", outcome(r).c_str());
    std::printf(
        "     part: filament %.1f mm (golden %.1f), flow ratio %.3f, "
        "layers %zu\n",
        r.part.total_filament_mm, golden.part.total_filament_mm,
        r.flow_ratio(), r.part.layer_count);
    std::printf(
        "     geometry: max layer shift %.3f mm, footprint drift %.3f mm, "
        "max Z spacing %.3f mm, first layer z %.3f mm\n",
        r.part.max_layer_shift_mm, r.part.footprint_drift_mm,
        r.part.max_z_spacing_mm, r.part.first_layer_z_mm);
    std::printf(
        "     machine: hotend peak %.1f C (golden %.1f), mean fan %.0f rpm "
        "(golden %.0f), dropped steps X/Y/Z/E %llu/%llu/%llu/%llu\n",
        r.hotend_peak_c, golden.hotend_peak_c, r.mean_fan_rpm,
        golden.mean_fan_rpm,
        static_cast<unsigned long long>(r.motor_dropped_steps[0]),
        static_cast<unsigned long long>(r.motor_dropped_steps[1]),
        static_cast<unsigned long long>(r.motor_dropped_steps[2]),
        static_cast<unsigned long long>(r.motor_dropped_steps[3]));
    // The simulated "part photograph": top view of the deposited
    // material, where the paper's Table I shows photos on graph paper.
    if (!outs[i].part_view.empty()) {
      std::printf("     printed part (top view)%s:\n%s",
                  std::string(row.trojan) == "T0" ? " - reference" : "",
                  outs[i].part_view.c_str());
    }
    bench::rule();
  }

  std::printf(
      "\nShape checks vs the paper:\n"
      " - T0 prints clean (no deformation, flow 1.0)\n"
      " - T1-T5 complete but show the described part modification\n"
      " - T6 ends in a firmware thermal error (print halted early)\n"
      " - T7 exceeds the hotend working specification despite the\n"
      "   firmware's thermal-runaway panic (destructive)\n"
      " - T8 loses commanded steps at the disabled drivers\n"
      " - T9 under-cools the part relative to golden\n");

  const double wall_s = clock.seconds();
  std::uint64_t total_events = golden3.events_executed +
                               golden7.events_executed;
  for (const CaseOut& out : outs) total_events += out.r.events_executed;
  bench::BenchJson json("table1");
  json.add("jobs", pool.workers());
  json.add("cases", kRows);
  json.add("wall_seconds", wall_s);
  json.add("scheduler_events", total_events);
  json.add("events_per_second",
           wall_s > 0.0 ? static_cast<double>(total_events) / wall_s : 0.0);
  json.write();
  return 0;
}
