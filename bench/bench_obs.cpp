// bench_obs: prices the observability layer and enforces its contract.
//
//   1. Disabled overhead (< 2%, exit-code enforced): instrumentation
//      compiled in but not enabled must cost the event loop less than 2%.
//      Each disabled site is one relaxed load + untaken branch; we measure
//      that gate directly, measure the real scheduler event loop, and
//      bound overhead = gate_ns / event_ns.  The bound is conservative:
//      it charges the whole gate on top of an event that already paid it.
//   2. Enabled overhead, event floor (informational): the same event
//      loop with obs::set_enabled(true) - batched counter/gauge updates
//      plus the 1-in-N sampled latency timer per event.
//   3. Fleet enabled overhead (< 20%, exit-code enforced): a whole
//      metrics-enabled fleet run vs the same run plain.  This is the
//      price an operator pays for always-on collection; PR 7's sharded
//      counters + batched scheduler flushes bought it down from ~217%.
//   4. Fleet byte identity (enforced): the fleet report must be
//      byte-identical with metrics off and on, at 1 and at N workers.
//
//   ./bench_obs [--jobs N]
//
// Writes BENCH_obs.json; exits 0 when every enforced gate holds, 1
// otherwise (2 = usage error).  Perf gates (1, 3) downgrade to
// report-only under sanitizers; the byte-identity gate always enforces.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "svc/fleet.hpp"

namespace {

using namespace offramps;

/// Events per timing pass: enough that steady-clock granularity and the
/// heap warm-up vanish into the noise, small enough to stay quick.
constexpr std::size_t kEvents = 2'000'000;

/// One scheduler pass: a self-rescheduling event chain whose callback
/// performs `kExtraChecks` additional obs::enabled() gates, so the
/// measurement is dominated by the dispatch loop itself (heap pop, time
/// advance, SmallFn call) - the path the real obs gate sits on.  The asm
/// operand forces each check's value to materialize so the loop cannot
/// fold the gates away.
template <int kExtraChecks>
double event_loop_ns_per_event() {
  sim::Scheduler sched;
  std::size_t remaining = kEvents;
  std::size_t hits = 0;
  struct Chain {
    sim::Scheduler& sched;
    std::size_t& remaining;
    std::size_t& hits;
    void operator()() const {
      for (int k = 0; k < kExtraChecks; ++k) {
        bool on = obs::enabled();
        asm volatile("" : "+r"(on));
        if (on) ++hits;
      }
      if (--remaining == 0) return;
      sched.schedule_in(1, Chain{sched, remaining, hits});
    }
  };
  sched.schedule_in(1, Chain{sched, remaining, hits});
  const bench::Stopwatch watch;
  sched.run_all();
  asm volatile("" : "+r"(hits));
  return watch.seconds() * 1e9 / static_cast<double>(kEvents);
}

/// Best-of-3: the minimum is the least-perturbed observation of a
/// deterministic quantity (same convention as bench_fault_overhead).
template <typename F>
double best_of_3(F&& f) {
  double best = f();
  for (int i = 0; i < 2; ++i) best = std::min(best, f());
  return best;
}

std::vector<svc::RigSpec> small_fleet() {
  std::vector<svc::RigSpec> specs = svc::Fleet::demo_specs(4, 1);
  for (auto& s : specs) {
    s.cube_mm = 6.0;
    s.height_mm = 2.0;
  }
  return specs;
}

svc::FleetOptions fleet_options(std::size_t workers) {
  svc::FleetOptions options;
  options.workers = workers;
  options.channels = svc::ChannelSet{}.counts_only();
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::parse_jobs(argc, argv);
  bench::BenchJson json("obs");
  int rc = 0;

  bench::heading("obs disabled overhead (enforced < 2%)");
  obs::set_enabled(false);
  // Differential measurement: the same event loop with 0 and with 8
  // extra disabled gates per event; the slope prices one gate in situ
  // (real instruction mix, real heap traffic around the load).  The
  // plain loop already contains the scheduler's own gate, so event_ns is
  // exactly what a disabled build pays today.
  double event_ns = best_of_3(event_loop_ns_per_event<0>);
  double loaded_ns = best_of_3(event_loop_ns_per_event<8>);
  double gate_ns = 0.0;
  double disabled_pct = 0.0;
  for (int attempt = 0;; ++attempt) {
    gate_ns = std::max(0.0, (loaded_ns - event_ns) / 8.0);
    disabled_pct = 100.0 * gate_ns / event_ns;
    if (disabled_pct < 2.0 || attempt == 2) break;
    // A loaded host (CI co-tenant, cgroup throttling) can inflate one
    // loop more than the other and fake a fat gate.  Re-measuring and
    // keeping the minima rescues a noisy run but not a real regression:
    // minima only converge downward, to the unperturbed cost.
    std::fprintf(stderr,
                 "note: %.3f%% over budget, re-measuring (attempt %d)\n",
                 disabled_pct, attempt + 2);
    event_ns = std::min(event_ns, best_of_3(event_loop_ns_per_event<0>));
    loaded_ns = std::min(loaded_ns, best_of_3(event_loop_ns_per_event<8>));
  }
  std::printf("event loop           : %8.2f ns/event (%zu events)\n",
              event_ns, kEvents);
  std::printf("  +8 gates/event     : %8.2f ns/event\n", loaded_ns);
  std::printf("obs::enabled() gate  : %8.4f ns/check (slope)\n", gate_ns);
  std::printf("disabled overhead    : %8.3f %% (bound: gate/event)\n",
              disabled_pct);
  json.add("event_loop_ns", event_ns);
  json.add("gate_ns", gate_ns);
  json.add("disabled_overhead_pct", disabled_pct);
  if (disabled_pct >= 2.0) {
    if (bench::built_with_sanitizers()) {
      std::fprintf(stderr,
                   "note: disabled overhead %.3f%% >= 2%% budget "
                   "(not enforced: sanitized build)\n",
                   disabled_pct);
    } else {
      std::fprintf(stderr,
                   "FAIL: disabled obs overhead %.3f%% >= 2%% budget\n",
                   disabled_pct);
      rc = 1;
    }
  }

  bench::heading("obs enabled overhead (informational)");
  obs::Registry::instance().reset();
  obs::set_enabled(true);
  const double enabled_ns = best_of_3(event_loop_ns_per_event<0>);
  obs::set_enabled(false);
  const double enabled_pct = 100.0 * (enabled_ns - event_ns) / event_ns;
  std::printf("instrumented loop    : %8.2f ns/event (+%.1f%%)\n",
              enabled_ns, enabled_pct);
  json.add("enabled_ns", enabled_ns);
  json.add("enabled_overhead_pct", enabled_pct);

  bench::heading("fleet metrics-enabled overhead (enforced < 20%) "
                 "and byte identity");
  const std::vector<svc::RigSpec> specs = small_fleet();
  obs::Registry::instance().reset();
  // Realistic enabled cost: a whole fleet run (full sims, not the no-op
  // event floor above) with metrics collected vs without.  Every timed
  // run also yields its report so identity keeps being checked on the
  // retries.
  const auto run_plain = [&specs](std::string* report) {
    svc::Fleet fleet(fleet_options(1));
    const bench::Stopwatch watch;
    *report = fleet.run(specs).to_json();
    return watch.seconds();
  };
  const auto run_metered = [&specs](std::string* report) {
    obs::set_enabled(true);
    svc::Fleet fleet(fleet_options(1));
    const bench::Stopwatch watch;
    *report = fleet.run(specs).to_json();
    const double secs = watch.seconds();
    obs::set_enabled(false);
    return secs;
  };
  std::string baseline;
  std::string with_metrics_1;
  double fleet_plain_s = run_plain(&baseline);
  double fleet_enabled_s = run_metered(&with_metrics_1);
  bool identical = with_metrics_1 == baseline;
  double fleet_pct = 0.0;
  for (int attempt = 0;; ++attempt) {
    fleet_pct = 100.0 * (fleet_enabled_s - fleet_plain_s) / fleet_plain_s;
    if (fleet_pct < 20.0 || attempt == 2) break;
    // Same rescue as the disabled gate: minima converge downward to the
    // unperturbed cost, so retries save a noisy run, never a regression.
    std::fprintf(stderr,
                 "note: fleet overhead %.1f%% over budget, re-measuring "
                 "(attempt %d)\n",
                 fleet_pct, attempt + 2);
    std::string plain_report;
    std::string metered_report;
    fleet_plain_s = std::min(fleet_plain_s, run_plain(&plain_report));
    fleet_enabled_s = std::min(fleet_enabled_s, run_metered(&metered_report));
    identical = identical && plain_report == baseline &&
                metered_report == baseline;
  }
  obs::set_enabled(true);
  svc::Fleet par(fleet_options(jobs));
  const std::string with_metrics_n = par.run(specs).to_json();
  obs::set_enabled(false);
  identical = identical && with_metrics_n == baseline;
  std::printf("fleet w1 run         : %.3f s plain, %.3f s with metrics "
              "(%+.1f%%)\n",
              fleet_plain_s, fleet_enabled_s, fleet_pct);
  json.add("fleet_plain_s", fleet_plain_s);
  json.add("fleet_enabled_s", fleet_enabled_s);
  json.add("fleet_enabled_overhead_pct", fleet_pct);
  if (fleet_pct >= 20.0) {
    if (bench::built_with_sanitizers()) {
      std::fprintf(stderr,
                   "note: fleet enabled overhead %.1f%% >= 20%% budget "
                   "(not enforced: sanitized build)\n",
                   fleet_pct);
    } else {
      std::fprintf(stderr,
                   "FAIL: fleet enabled overhead %.1f%% >= 20%% budget\n",
                   fleet_pct);
      rc = 1;
    }
  }
  std::printf("disabled w1 vs enabled w1 vs enabled w%zu: %s\n", jobs,
              identical ? "byte-identical" : "DIVERGED");
  json.add("fleet_byte_identical", identical);
  json.add("jobs", static_cast<std::uint64_t>(jobs));
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: fleet report changed under --metrics/workers\n");
    rc = 1;
  }

  json.add("pass", rc == 0);
  json.write();
  std::printf("\nbench_obs: %s\n", rc == 0 ? "PASS" : "FAIL");
  return rc;
}
