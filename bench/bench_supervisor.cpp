// bench_supervisor: fault-tolerance cost harness (EXPERIMENTS.md E12).
//
// Phase 1 - supervision overhead: the same clean demo fleet with the
// retry/watchdog machinery at max_attempts 1 vs 3.  On a clean campaign
// no retries fire, so the two runs must produce byte-identical rig
// verdicts and near-identical wall time; the measured delta is the
// standing cost of the supervision layer.
//
// Phase 2 - recovery cost: a chaos campaign (crash / stall / powerjam
// faults on clean rigs) timed against the clean baseline.  Reports
// retries, quarantines, and the wall-time amplification of retrying,
// and checks the classification ladder end to end: crash -> recovered,
// permanent stall -> lost, powerjam -> degraded, zero false alarms.
//
// Phase 3 - checkpoint throughput: save/load latency and snapshot size
// for the finished campaign state, plus a round-trip identity check.
//
// Exits nonzero when any expectation fails, so this doubles as a perf
// smoke test alongside bench_fleet.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "host/chaos.hpp"
#include "svc/checkpoint.hpp"
#include "svc/fleet.hpp"

using namespace offramps;

namespace {

std::vector<svc::RigSpec> clean_fleet(std::size_t n) {
  std::vector<svc::RigSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].name = "sup-" + std::to_string(i);
    specs[i].seed = 4000 + i;
    specs[i].cube_mm = 6.0;
    specs[i].height_mm = 1.5;
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::parse_jobs(argc, argv);
  bench::BenchJson json("supervisor");
  json.add("jobs", static_cast<std::uint64_t>(jobs));
  bool ok = true;

  // ---- Phase 1: supervision overhead on a clean campaign.
  bench::heading("E12: supervision overhead (clean fleet, attempts 1 vs 3)");
  const auto specs = clean_fleet(4);
  svc::FleetOptions base;
  base.workers = jobs;

  svc::FleetOptions bare = base;
  bare.supervisor.max_attempts = 1;
  bench::Stopwatch t_bare;
  const svc::FleetReport r_bare = svc::Fleet(bare).run(specs);
  const double s_bare = t_bare.seconds();

  svc::FleetOptions guarded = base;
  guarded.supervisor.max_attempts = 3;
  bench::Stopwatch t_guarded;
  const svc::FleetReport r_guarded = svc::Fleet(guarded).run(specs);
  const double s_guarded = t_guarded.seconds();

  std::printf("  attempts=1: %.2f s    attempts=3: %.2f s    delta %+.1f%%\n",
              s_bare, s_guarded,
              100.0 * (s_guarded - s_bare) / (s_bare > 0 ? s_bare : 1.0));
  json.add("clean_seconds_attempts1", s_bare);
  json.add("clean_seconds_attempts3", s_guarded);
  if (r_bare.alarmed() != 0 || r_guarded.alarmed() != 0 ||
      r_guarded.count(svc::RigStatus::kOk) != specs.size()) {
    std::printf("  FAIL: clean campaign not clean under supervision\n");
    ok = false;
  }

  // ---- Phase 2: recovery cost under chaos.
  bench::heading("E12: recovery cost (crash/stall/powerjam campaign)");
  auto chaos_specs = clean_fleet(4);
  chaos_specs[1].chaos = host::parse_chaos("crash:1");
  chaos_specs[2].chaos = host::parse_chaos("stall:99");
  chaos_specs[3].chaos = host::parse_chaos("powerjam");
  bench::Stopwatch t_chaos;
  const svc::FleetReport r_chaos = svc::Fleet(base).run(chaos_specs);
  const double s_chaos = t_chaos.seconds();

  std::uint64_t retries = 0;
  for (const auto& rig : r_chaos.rigs) {
    retries += rig.attempts > 0 ? rig.attempts - 1 : 0;
  }
  std::printf("  campaign: %.2f s (clean baseline %.2f s, %.2fx)\n", s_chaos,
              s_bare, s_chaos / (s_bare > 0 ? s_bare : 1.0));
  std::printf("  retries: %llu   recovered %zu  degraded %zu  lost %zu\n",
              static_cast<unsigned long long>(retries),
              r_chaos.count(svc::RigStatus::kRecovered),
              r_chaos.count(svc::RigStatus::kDegraded),
              r_chaos.count(svc::RigStatus::kLost));
  json.add("chaos_seconds", s_chaos);
  json.add("chaos_retries", retries);
  const bool ladder_ok =
      r_chaos.rigs[1].status == svc::RigStatus::kRecovered &&
      r_chaos.rigs[2].status == svc::RigStatus::kLost &&
      r_chaos.rigs[3].status == svc::RigStatus::kDegraded &&
      r_chaos.alarmed() == 0;
  if (!ladder_ok) {
    std::printf("  FAIL: chaos ladder misclassified (campaign %s)\n",
                r_chaos.campaign().c_str());
    ok = false;
  }

  // ---- Phase 3: checkpoint save/load throughput.
  bench::heading("E12: checkpoint save/load throughput");
  svc::Checkpoint ck;
  ck.spec_digest = svc::campaign_digest(chaos_specs, base);
  ck.total_rigs = static_cast<std::uint32_t>(chaos_specs.size());
  for (std::uint32_t i = 0; i < r_chaos.rigs.size(); ++i) {
    ck.done.emplace_back(i, r_chaos.rigs[i]);
  }
  const std::string path = "BENCH_supervisor_ck.bin";
  constexpr int kReps = 50;
  bench::Stopwatch t_save;
  for (int i = 0; i < kReps; ++i) ck.save(path);
  const double save_us = 1e6 * t_save.seconds() / kReps;
  bench::Stopwatch t_load;
  for (int i = 0; i < kReps; ++i) (void)svc::Checkpoint::load(path);
  const double load_us = 1e6 * t_load.seconds() / kReps;
  const auto bytes = std::filesystem::file_size(path);
  std::printf("  save %.1f us   load %.1f us   %llu bytes\n", save_us,
              load_us, static_cast<unsigned long long>(bytes));
  json.add("checkpoint_save_us", save_us);
  json.add("checkpoint_load_us", load_us);
  json.add("checkpoint_bytes", static_cast<std::uint64_t>(bytes));

  const svc::Checkpoint back = svc::Checkpoint::load(path);
  if (back.to_binary() != ck.to_binary()) {
    std::printf("  FAIL: checkpoint round trip not byte-identical\n");
    ok = false;
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");

  json.add("ok", ok);
  json.write();
  std::printf("\nbench_supervisor: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
