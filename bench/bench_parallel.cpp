// Parallel-runner scaling benchmark.
//
// Runs the same batch of independent seeded prints on 1 worker and on N
// workers (default 4, override with --jobs), verifies the two result
// sets are bit-identical (the ParallelRunner determinism contract), and
// reports wall-clock, events/sec, and the measured speedup to stdout and
// BENCH_parallel.json.  The JSON includes the host's hardware
// concurrency: on a 1-core machine the honest speedup is ~1x and the
// artifact says why.
//
// Also enforces an absolute single-worker throughput floor (ISSUE 7): a
// scheduler or hot-path regression that halves events/s fails this bench
// by exit code, not just in a dashboard.  The floor is deliberately
// loose (~25% of the throughput measured on the reference dev host after
// the timer-wheel scheduler landed) so slower CI machines pass while a
// genuine algorithmic regression cannot.  Not enforced under sanitizers.
#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace offramps;

namespace {

/// FNV-1a over the run's observable outputs (capture transactions, final
/// counts, motor steps, part metrics).  Equal digests across worker
/// counts == equal simulations.
std::uint64_t digest(const host::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (const auto& txn : r.capture.transactions) {
    mix(txn.time_ns);
    for (const auto c : txn.counts) mix(static_cast<std::uint64_t>(c));
  }
  for (const auto c : r.capture.final_counts) {
    mix(static_cast<std::uint64_t>(c));
  }
  for (const auto s : r.motor_steps) mix(static_cast<std::uint64_t>(s));
  mix(static_cast<std::uint64_t>(r.part.total_filament_mm * 1e6));
  mix(r.events_executed);
  return h;
}

struct BatchOut {
  std::vector<std::uint64_t> digests;
  std::uint64_t events = 0;
  double wall_s = 0.0;
};

BatchOut run_batch(const gcode::Program& program, std::size_t sims,
                   std::size_t workers) {
  host::ParallelRunner pool(workers);
  bench::Stopwatch clock;
  struct Out {
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
  };
  const std::vector<Out> outs = pool.map<Out>(sims, [&](std::size_t i) {
    const host::RunResult r =
        bench::run_print(program, {}, 1000 + 37 * i);
    return Out{digest(r), r.events_executed};
  });
  BatchOut batch;
  batch.wall_s = clock.seconds();
  for (const Out& o : outs) {
    batch.digests.push_back(o.digest);
    batch.events += o.events;
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const auto program = bench::standard_cube(2.0);
  constexpr std::size_t kSims = 8;
  // Single-worker events/s floor; see header comment for how it is set
  // (the reference host measured 1.36e7 events/s).
  constexpr double kEventsPerSecFloor = 3.0e6;
  std::size_t jobs = bench::parse_jobs(argc, argv);
  if (jobs < 2) jobs = 4;  // measure scaling even when launched bare

  bench::heading("ParallelRunner scaling on independent seeded prints");
  std::printf("batch: %zu prints; comparing 1 worker vs %zu workers "
              "(hardware concurrency: %u)\n",
              kSims, jobs, std::thread::hardware_concurrency());

  BatchOut seq = run_batch(program, kSims, 1);
  const BatchOut par = run_batch(program, kSims, jobs);
  double eps_1 = seq.wall_s > 0.0
                     ? static_cast<double>(seq.events) / seq.wall_s
                     : 0.0;
  const bool floor_enforced = !bench::built_with_sanitizers();
  for (int attempt = 0;
       floor_enforced && eps_1 < kEventsPerSecFloor && attempt < 2;
       ++attempt) {
    // A descheduled first pass can fake a slow simulator; re-measuring
    // and keeping the fastest pass rescues noise, not a real regression.
    std::fprintf(stderr,
                 "note: %.3g events/s under floor, re-measuring "
                 "(attempt %d)\n",
                 eps_1, attempt + 2);
    const BatchOut retry = run_batch(program, kSims, 1);
    const double eps = retry.wall_s > 0.0
                           ? static_cast<double>(retry.events) / retry.wall_s
                           : 0.0;
    if (eps > eps_1) {
      eps_1 = eps;
      seq.wall_s = retry.wall_s;
    }
  }

  const bool identical = seq.digests == par.digests;
  const bool fast_enough = eps_1 >= kEventsPerSecFloor;
  const double speedup = par.wall_s > 0.0 ? seq.wall_s / par.wall_s : 0.0;
  std::printf("  1 worker : %.3f s  (%.3g events/s; floor %.3g, %s)\n",
              seq.wall_s, eps_1, kEventsPerSecFloor,
              fast_enough      ? "ok"
              : floor_enforced ? "FAIL"
                               : "not enforced: sanitized build");
  std::printf("  %zu workers: %.3f s  (%.3g events/s)\n", jobs, par.wall_s,
              static_cast<double>(par.events) / par.wall_s);
  std::printf("  speedup: %.2fx; results bit-identical: %s\n", speedup,
              identical ? "yes" : "NO");
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("  note: single-hardware-thread host -- parallel speedup "
                "cannot exceed ~1x here;\n"
                "  the determinism contract is what this run verifies.\n");
  }

  bench::BenchJson json("parallel");
  json.add("sims", kSims);
  json.add("jobs", jobs);
  json.add("wall_seconds_1", seq.wall_s);
  json.add("wall_seconds_n", par.wall_s);
  json.add("speedup", speedup);
  json.add("events_per_second_1", eps_1);
  json.add("events_per_second_n",
           par.wall_s > 0.0 ? static_cast<double>(par.events) / par.wall_s
                            : 0.0);
  json.add("events_per_second_floor", kEventsPerSecFloor);
  json.add("floor_enforced", floor_enforced);
  json.add("bit_identical", identical);
  json.write();
  if (!identical) return 1;
  if (floor_enforced && !fast_enough) {
    std::fprintf(stderr, "FAIL: %.3g events/s < %.3g floor\n", eps_1,
                 kEventsPerSecFloor);
    return 1;
  }
  return 0;
}
