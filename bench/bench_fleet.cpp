// bench_fleet: fleet-service evaluation harness (EXPERIMENTS.md E10).
//
// Phase 1 - online detection latency per Flaw3D variant: one rig per
// Table II case (reduction 0.5/0.85/0.9/0.98, relocation every
// 5/10/20/100 moves) plus clean controls, safe-stop disabled so every
// print runs to completion and the post-print channels also get their
// say.  Reports, per variant: the alarming channel, whether the catch
// was mid-print, and the first-alarm latency in capture windows (0.1 s
// each).  The 2% reduction is the expected post-print-only catch.
//
// Phase 2 - orchestration throughput: the demo fleet at 1 worker vs N
// workers, rigs/s each, plus a byte-identity check of the two reports
// (the fleet's determinism contract).  Exits nonzero when any
// expectation fails, so this doubles as a perf smoke test.
#include <string>
#include <vector>

#include "common.hpp"
#include "svc/fleet.hpp"

using namespace offramps;

namespace {

std::string variant_key(const std::string& sabotage) {
  std::string out = "variant_";
  for (const char c : sabotage) {
    out += (c == ':' || c == '.') ? '_' : c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::parse_jobs(argc, argv);
  bench::BenchJson json("fleet");
  json.add("jobs", static_cast<std::uint64_t>(jobs));
  bool ok = true;

  // ---- Phase 1: detection latency across all eight Table II variants.
  bench::heading("E10: online detection latency, all Flaw3D variants");
  const std::vector<std::string> variants{
      "reduce:0.5",  "reduce:0.85", "reduce:0.9",  "reduce:0.98",
      "relocate:5",  "relocate:10", "relocate:20", "relocate:100"};
  std::vector<svc::RigSpec> specs;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    svc::RigSpec spec;
    spec.name = variants[i];
    spec.seed = 2000 + i;
    spec.sabotage = svc::parse_sabotage(variants[i]);
    specs.push_back(spec);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    svc::RigSpec spec;
    spec.name = "clean-" + std::to_string(i);
    spec.seed = 3000 + i;
    specs.push_back(spec);
  }

  svc::FleetOptions options;
  options.workers = jobs;
  options.safe_stop = false;  // let every print finish: post-print
                              // channels must also report
  svc::Fleet fleet(options);
  const svc::FleetReport latency_report = fleet.run(specs);

  std::printf("%-14s %-16s %-10s %s\n", "variant", "channel", "mid-print",
              "latency (windows)");
  bench::rule();
  std::size_t mid_print_catches = 0;
  for (const auto& rig : latency_report.rigs) {
    const bool dirty = rig.spec.sabotage.kind != svc::Sabotage::Kind::kNone;
    if (!dirty) {
      if (rig.detector.alarmed) {
        std::printf("%-14s FALSE ALARM\n", rig.spec.name.c_str());
        ok = false;
      }
      continue;
    }
    if (!rig.detector.alarmed) {
      std::printf("%-14s MISSED\n", rig.spec.name.c_str());
      ok = false;
      continue;
    }
    mid_print_catches += rig.detector.alarmed_mid_print ? 1 : 0;
    std::printf("%-14s %-16s %-10s %u\n", rig.spec.name.c_str(),
                svc::channel_name(rig.detector.first_channel),
                rig.detector.alarmed_mid_print ? "yes" : "no (final)",
                rig.detector.alarm_window);
    // Per-channel attribution (E16): every modality that tripped, with
    // its own windows-to-alarm - the fused verdict above is their min.
    std::string attribution;
    for (const auto& v : rig.detector.channels) {
      if (!v.tripped) continue;
      attribution += attribution.empty() ? "" : ", ";
      attribution += svc::channel_name(v.channel);
      attribution += ":w" + std::to_string(v.trip_window);
      json.add(variant_key(rig.spec.name) + "_trip_" +
                   svc::channel_name(v.channel),
               static_cast<std::uint64_t>(v.trip_window));
    }
    std::printf("               tripped: %s\n",
                attribution.empty() ? "-" : attribution.c_str());
    const std::string key = variant_key(rig.spec.name);
    json.add(key + "_channel",
             svc::channel_name(rig.detector.first_channel));
    json.add(key + "_mid_print", rig.detector.alarmed_mid_print);
    json.add(key + "_latency_windows",
             static_cast<std::uint64_t>(rig.detector.alarm_window));
  }
  json.add("variants_caught",
           static_cast<std::uint64_t>(latency_report.alarmed()));
  json.add("variants_caught_mid_print",
           static_cast<std::uint64_t>(mid_print_catches));

  // ---- Phase 2: orchestration throughput and determinism.
  bench::heading("fleet throughput: demo 8 rigs / 4 sabotaged");
  const auto demo = svc::Fleet::demo_specs(8, 4);

  svc::FleetOptions seq_options;
  seq_options.workers = 1;
  bench::Stopwatch seq_watch;
  svc::Fleet seq_fleet(seq_options);
  const svc::FleetReport seq_report = seq_fleet.run(demo);
  const double seq_s = seq_watch.seconds();

  svc::FleetOptions par_options;
  par_options.workers = jobs;
  bench::Stopwatch par_watch;
  svc::Fleet par_fleet(par_options);
  const svc::FleetReport par_report = par_fleet.run(demo);
  const double par_s = par_watch.seconds();

  const double n = static_cast<double>(demo.size());
  std::printf("1 worker : %.2f s  (%.2f rigs/s)\n", seq_s, n / seq_s);
  std::printf("%zu workers: %.2f s  (%.2f rigs/s, speedup %.2fx)\n", jobs,
              par_s, n / par_s, seq_s / par_s);
  json.add("demo_rigs", static_cast<std::uint64_t>(demo.size()));
  json.add("rigs_per_s_1w", n / seq_s);
  json.add("rigs_per_s_nw", n / par_s);
  json.add("speedup", seq_s / par_s);

  double latency_sum = 0.0;
  std::size_t alarms = 0;
  for (const auto& rig : par_report.rigs) {
    if (rig.detector.alarmed_mid_print) {
      latency_sum += static_cast<double>(rig.detector.alarm_window) * 0.1;
      ++alarms;
    }
  }
  const double mean_latency_s =
      alarms > 0 ? latency_sum / static_cast<double>(alarms) : 0.0;
  std::printf("mid-print alarms: %zu, mean first-alarm latency %.1f s "
              "into the stream\n",
              alarms, mean_latency_s);
  json.add("demo_mid_print_alarms", static_cast<std::uint64_t>(alarms));
  json.add("mean_first_alarm_latency_s", mean_latency_s);

  const bool deterministic = seq_report.to_json() == par_report.to_json();
  std::printf("report determinism across worker counts: %s\n",
              deterministic ? "byte-identical" : "DIVERGED");
  json.add("deterministic_across_workers", deterministic);
  ok = ok && deterministic && alarms == 4;

  // ---- Phase 3: multi-modal overhead gate.  Turning on the acoustic
  // and vibration channels must cost < 25% per capture window over the
  // power-only configuration (enforced by exit code on plain builds;
  // sanitized builds report without enforcing).
  bench::heading("multi-modal channels: per-window cost vs power-only");
  auto mm_specs = svc::Fleet::demo_specs(4, 1);
  for (auto& s : mm_specs) {
    s.cube_mm = 6.0;
    s.height_mm = 2.0;
  }
  const auto timed_per_window = [&](const svc::ChannelSet& channels) {
    svc::FleetOptions o;
    o.workers = jobs;
    o.channels = channels;
    bench::Stopwatch watch;
    svc::Fleet f(o);
    const svc::FleetReport r = f.run(mm_specs);
    const double s = watch.seconds();
    std::uint64_t windows = 0;
    for (const auto& rig : r.rigs) {
      windows += rig.detector.windows_processed;
    }
    return windows == 0 ? 0.0 : s / static_cast<double>(windows);
  };
  const double power_only_us =
      1e6 * timed_per_window(svc::ChannelSet{true, true, false, false});
  const double all_channels_us = 1e6 * timed_per_window(svc::ChannelSet{});
  const double mm_ratio =
      power_only_us > 0.0 ? all_channels_us / power_only_us : 0.0;
  const bool mm_enforced = !bench::built_with_sanitizers();
  const bool mm_ok = mm_ratio < 1.25;
  std::printf("power-only   : %.1f us/window\n", power_only_us);
  std::printf("all channels : %.1f us/window  (%.2fx, gate < 1.25x%s)\n",
              all_channels_us, mm_ratio,
              mm_enforced ? "" : ", report-only under sanitizers");
  json.add("per_window_us_power_only", power_only_us);
  json.add("per_window_us_all_channels", all_channels_us);
  json.add("multi_modal_ratio", mm_ratio);
  json.add("multi_modal_gate_enforced", mm_enforced);
  if (mm_enforced && !mm_ok) {
    std::printf("FAIL: multi-modal per-window cost exceeds the 25%% budget\n");
    ok = false;
  }

  json.add("self_check", ok);
  json.write();
  return ok ? 0 : 1;
}
