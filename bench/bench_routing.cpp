// Experiment E6 - paper Figure 3: the three signal-path configurations.
//
//   (a) Direct: straight jumpers, FPGA out of circuit - the stock
//       Arduino+RAMPS stack.
//   (b) MITM: all nets through the fabric - modifiable.
//   (c) Record: straight jumpers with FPGA taps - lossless monitoring.
//
// The same print runs under each configuration; the experiment verifies
// bypass equivalence, record losslessness, and MITM modifiability.
#include <cstdio>

#include "common.hpp"
#include "core/trojans.hpp"

using namespace offramps;

int main() {
  const auto program = bench::standard_cube(3.0);

  bench::heading("Fig. 3 signal path configurations");
  std::printf("%-28s %-10s %-13s %-22s %-12s\n", "configuration", "finished",
              "capture txns", "motor steps X/E", "flow ratio");
  bench::rule();

  const host::RunResult direct =
      bench::run_print(program, {}, 1, core::RouteMode::kDirect);
  const host::RunResult record =
      bench::run_print(program, {}, 1, core::RouteMode::kFpgaRecord);
  const host::RunResult mitm =
      bench::run_print(program, {}, 1, core::RouteMode::kFpgaMitm);
  // MITM with a Trojan armed: the configuration that can modify.
  core::TrojanSuiteConfig t2;
  t2.t2 = core::T2Config{.keep_ratio = 0.5};
  const host::RunResult attacked =
      bench::run_print(program, t2, 1, core::RouteMode::kFpgaMitm);

  const auto row = [](const char* name, const host::RunResult& r) {
    std::printf("%-28s %-10s %-13zu %10lld/%-11lld %-12.3f\n", name,
                r.finished ? "yes" : "no", r.capture.size(),
                static_cast<long long>(r.motor_steps[0]),
                static_cast<long long>(r.motor_steps[3]), r.flow_ratio());
  };
  row("3a direct (bypass)", direct);
  row("3c record (tap)", record);
  row("3b MITM (benign)", mitm);
  row("3b MITM + T2 Trojan", attacked);
  bench::rule();

  const bool bypass_equiv = direct.motor_steps == mitm.motor_steps;
  // Lossless: the record-mode tap captures exactly the counts the MITM
  // configuration captures for the same commanded stream.
  const bool record_lossless =
      record.capture.final_counts == mitm.capture.final_counts &&
      !record.capture.empty();
  std::printf(
      "\nchecks:\n"
      " - direct produces no capture (FPGA out of circuit): %s\n"
      " - benign MITM is motion-equivalent to direct: %s\n"
      " - record-mode capture equals true motor totals (lossless): %s\n"
      " - only MITM can modify (T2 halves flow): %s\n",
      direct.capture.empty() ? "yes" : "NO",
      bypass_equiv ? "yes" : "NO", record_lossless ? "yes" : "NO",
      (attacked.flow_ratio() < 0.6 && mitm.flow_ratio() > 0.99) ? "yes"
                                                                : "NO");
  const bool ok = direct.capture.empty() && bypass_equiv &&
                  record_lossless && attacked.flow_ratio() < 0.6;
  return ok ? 0 : 1;
}
