// Fault-injection overhead proof: the injector's hooks (the fault branch
// in Wire::set, the analog transform pointer, the frame-fault check in
// the UART reporter, the scheduler time-warp slot) must cost a clean
// print essentially nothing.
//
// Three configurations print the same cube and are wall-clock timed:
//   baseline   - no faults configured at all (the everyday path)
//   armed-noop - every fault family armed at zero intensity (hooks
//                engaged, faults never fire: the campaign control cell)
//   hot-uart   - a frame fault installed but out of window (the one
//                configuration that pays the frame encode/decode detour)
//
// Pass criterion (the ISSUE's bar): armed-noop within 2% of baseline.
// Each configuration runs several times and takes the minimum, which is
// the standard trick for shaving scheduler noise off micro-timings.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common.hpp"

using namespace offramps;

namespace {

double time_print_s(const std::vector<sim::FaultSpec>& faults,
                    std::uint64_t* events_out) {
  const auto program = bench::standard_cube(3.0);
  double best = 1e99;
  for (int rep = 0; rep < 3; ++rep) {
    host::RigOptions options;
    options.firmware.jitter_seed = 1;
    options.faults = faults;
    host::Rig rig(options);
    const auto t0 = std::chrono::steady_clock::now();
    const host::RunResult r = rig.run(program);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.finished) {
      std::fprintf(stderr, "print did not finish\n");
      std::exit(1);
    }
    *events_out = r.events_executed;
    best = std::min(best,
                    std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  bench::heading("fault-injector hook overhead on a clean print");

  std::uint64_t ev_base = 0, ev_armed = 0, ev_uart = 0;
  const double base_s = time_print_s({}, &ev_base);

  const std::vector<sim::FaultSpec> armed_noop = {
      {.kind = sim::FaultKind::kGlitch, .target = "ramps.X_STEP",
       .intensity = 0.0},
      {.kind = sim::FaultKind::kStuckLow, .target = "arduino.Y_STEP",
       .intensity = 0.0},
      {.kind = sim::FaultKind::kAnalogDrift, .target = "THERM_HOTEND",
       .intensity = 0.0},
      {.kind = sim::FaultKind::kUartBitFlip, .target = "uart",
       .intensity = 0.0},
      {.kind = sim::FaultKind::kTimingJitter, .target = "scheduler",
       .intensity = 0.0}};
  const double armed_s = time_print_s(armed_noop, &ev_armed);

  // Out-of-window stream fault: hooks hot, corruption never applies.
  const std::vector<sim::FaultSpec> hot_uart = {
      {.kind = sim::FaultKind::kUartBitFlip, .target = "uart",
       .intensity = 0.5, .start = sim::seconds(100000)}};
  const double uart_s = time_print_s(hot_uart, &ev_uart);

  const double armed_pct = (armed_s / base_s - 1.0) * 100.0;
  const double uart_pct = (uart_s / base_s - 1.0) * 100.0;

  std::printf("%-34s %12s %14s %10s\n", "configuration", "best of 3 (s)",
              "events", "vs base");
  bench::rule();
  std::printf("%-34s %13.3f %14llu %9s\n", "baseline (no faults)", base_s,
              static_cast<unsigned long long>(ev_base), "-");
  std::printf("%-34s %13.3f %14llu %+9.2f%%\n",
              "armed, zero intensity (5 specs)", armed_s,
              static_cast<unsigned long long>(ev_armed), armed_pct);
  std::printf("%-34s %13.3f %14llu %+9.2f%%\n",
              "uart fault armed, out of window", uart_s,
              static_cast<unsigned long long>(ev_uart), uart_pct);
  bench::rule();

  const bool pass = armed_pct < 2.0;
  std::printf("no-fault-path overhead %.2f%% (must be < 2%%): %s\n",
              armed_pct, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
