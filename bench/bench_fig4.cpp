// Experiment E3 - paper Figure 4: transaction captures and detector
// output for an emulated Flaw3D relocation Trojan (Table II test case 7,
// relocate every 20 movements).
//
// Reproduces the three panels: (a) a selection of golden transactions,
// (b) the same indices from the Trojaned print, and (c) the detection
// tool's report identifying the mismatches.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "gcode/flaw3d.hpp"

using namespace offramps;

int main() {
  const gcode::Program object = bench::standard_cube(3.0);

  const host::RunResult golden = bench::run_print(object, {}, /*seed=*/1);
  const gcode::Program mutated = gcode::flaw3d::apply_relocation(
      object, {.every_n_moves = 20, .take_fraction = 0.15});
  const host::RunResult trojaned =
      bench::run_print(mutated, {}, /*seed=*/7);

  const detect::Report rep =
      detect::compare(golden.capture, trojaned.capture);

  // Locate the first mismatch to select the context window around it.
  std::size_t first = 0;
  if (!rep.mismatches.empty()) first = rep.mismatches.front().index;
  const std::size_t lo = first > 3 ? first - 3 : 0;
  const std::size_t hi =
      std::min({lo + 6, golden.capture.size(), trojaned.capture.size()});

  bench::heading("Fig. 4a: selection of transactions from the golden "
                 "reference");
  std::printf("Index, X, Y, Z, E\n");
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& t = golden.capture.transactions[i];
    std::printf("%u, %d, %d, %d, %d\n", t.index, t.counts[0], t.counts[1],
                t.counts[2], t.counts[3]);
  }

  bench::heading("Fig. 4b: selection of transactions from the Flaw3D "
                 "Trojan print (relocate every 20 moves)");
  std::printf("Index, X, Y, Z, E\n");
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& t = trojaned.capture.transactions[i];
    std::printf("%u, %d, %d, %d, %d\n", t.index, t.counts[0], t.counts[1],
                t.counts[2], t.counts[3]);
  }

  bench::heading("Fig. 4c: output of the Trojan detection tool");
  std::printf("%s", rep.to_string(/*max_lines=*/6).c_str());

  std::printf(
      "\nShape check vs the paper: mismatches appear on motion columns\n"
      "(the inserted in-place extrusions shift the timeline of every\n"
      "subsequent move), the largest difference is tens of percent, and\n"
      "the tool reports 'Trojan likely!'.\n");
  return rep.trojan_likely ? 0 : 1;
}
