// Experiment E5 - paper section V-C "time noise" and the 5% margin.
//
// AM systems are asynchronous: the same g-code takes slightly different
// time on every run, so cumulative step counts drift between known-good
// prints.  The paper reports this drift "was always less than a 5%
// difference", motivating the 5% margin (plus the exact end-of-print
// check).  Here: N known-good reprints with different jitter seeds are
// compared against a reference; we report the per-print maximum relative
// count difference and the margin the detector would have needed.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace offramps;

namespace {

/// Maximum relative per-transaction count difference (percent), ignoring
/// near-zero counts the detector also exempts.
double max_drift_pct(const core::Capture& a, const core::Capture& b,
                     std::int64_t min_count = 20) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      const auto g = static_cast<std::int64_t>(a.transactions[i].counts[c]);
      const auto o = static_cast<std::int64_t>(b.transactions[i].counts[c]);
      if (std::llabs(g) < min_count && std::llabs(o) < min_count) continue;
      const double pct =
          100.0 * static_cast<double>(std::llabs(g - o)) /
          static_cast<double>(std::max<std::int64_t>(std::llabs(g), 1));
      worst = std::max(worst, pct);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const auto program = bench::standard_cube(3.0);
  constexpr int kReprints = 10;
  host::ParallelRunner pool(bench::parse_jobs(argc, argv));

  bench::heading("Time-noise drift across known-good reprints");
  bench::Stopwatch clock;
  const host::RunResult reference = bench::run_print(program, {}, 1);
  std::printf("reference: seed 1, %zu transactions (%zu worker(s))\n\n",
              reference.capture.size(), pool.workers());
  std::printf("%-8s %-14s %-12s %-18s %-14s\n", "seed", "transactions",
              "max drift", "finals match ref", "detector verdict");
  bench::rule();

  // Each reprint is an independent seeded rig; run them on the pool and
  // report in seed order.
  struct Row {
    std::uint64_t seed = 0;
    std::size_t transactions = 0;
    double drift = 0.0;
    bool finals_equal = false;
    bool false_positive = false;
    std::uint64_t events = 0;
  };
  const std::vector<Row> rows = pool.map<Row>(kReprints, [&](std::size_t i) {
    Row row;
    row.seed = 1000 + static_cast<std::uint64_t>(i) * 37;
    const host::RunResult r = bench::run_print(program, {}, row.seed);
    row.transactions = r.capture.size();
    row.drift = max_drift_pct(reference.capture, r.capture);
    row.finals_equal =
        r.capture.final_counts == reference.capture.final_counts;
    row.false_positive =
        detect::compare(reference.capture, r.capture).trojan_likely;
    row.events = r.events_executed;
    return row;
  });
  const double wall_s = clock.seconds();

  double worst = 0.0;
  int false_positives = 0;
  std::uint64_t total_events = reference.events_executed;
  for (const Row& row : rows) {
    worst = std::max(worst, row.drift);
    if (row.false_positive) ++false_positives;
    total_events += row.events;
    std::printf("%-8llu %-14zu %9.3f%%  %-18s %-14s\n",
                static_cast<unsigned long long>(row.seed), row.transactions,
                row.drift, row.finals_equal ? "yes" : "NO",
                row.false_positive ? "FALSE POSITIVE" : "clean");
  }
  bench::rule();
  std::printf(
      "\nworst drift across %d reprints: %.3f%% (paper: always < 5%%)\n"
      "false positives at the 5%% margin: %d / %d\n"
      "final step counts are timing-independent, so the 0%%-margin final\n"
      "check never misfires on clean prints.\n",
      kReprints, worst, false_positives, kReprints);

  bench::BenchJson json("drift");
  json.add("jobs", pool.workers());
  json.add("reprints", static_cast<std::uint64_t>(kReprints));
  json.add("wall_seconds", wall_s);
  json.add("scheduler_events", total_events);
  json.add("events_per_second",
           wall_s > 0.0 ? static_cast<double>(total_events) / wall_s : 0.0);
  json.add("worst_drift_pct", worst);
  json.add("false_positives", static_cast<std::uint64_t>(false_positives));
  json.write();
  return (worst < 5.0 && false_positives == 0) ? 0 : 1;
}
