// Shared helpers for the experiment harness binaries: the standard test
// object (a calibration cube, as used for the paper's Table I prints),
// print runners, and table formatting.
#pragma once

#include <cstdio>
#include <string>

#include "detect/compare.hpp"
#include "gcode/stats.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

namespace offramps::bench {

/// The standard experiment workload: a small calibration cube.
inline gcode::Program standard_cube(double height_mm = 3.0) {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10.0,
                      .size_y_mm = 10.0,
                      .height_mm = height_mm,
                      .center_x_mm = 110.0,
                      .center_y_mm = 100.0};
  return host::slice_cube(cube, profile);
}

/// Prints one golden/Trojaned run with the given options.
inline host::RunResult run_print(const gcode::Program& program,
                                 core::TrojanSuiteConfig trojans = {},
                                 std::uint64_t seed = 1,
                                 core::RouteMode route =
                                     core::RouteMode::kFpgaMitm) {
  host::RigOptions options;
  options.trojans = std::move(trojans);
  options.firmware.jitter_seed = seed;
  options.route = route;
  host::Rig rig(options);
  return rig.run(program);
}

/// Section header in the style of the experiment logs.
inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void rule() {
  std::printf("-------------------------------------------------------------"
              "-------------------\n");
}

}  // namespace offramps::bench
