// Shared helpers for the experiment harness binaries: the standard test
// object (a calibration cube, as used for the paper's Table I prints),
// print runners, table formatting, wall-clock timing, and the
// machine-readable BENCH_<name>.json artifact every harness emits.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/strict_parse.hpp"
#include "detect/compare.hpp"
#include "gcode/stats.hpp"
#include "host/parallel_runner.hpp"
#include "host/rig.hpp"
#include "host/slicer.hpp"

// Sanitizer instrumentation slows hot paths 2-20x and not uniformly, so
// perf thresholds measured on plain builds are meaningless under it.
// Gated benches check built_with_sanitizers() and downgrade enforcement
// to report-only (correctness gates - determinism digests, byte
// identity - still enforce everywhere).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define OFFRAMPS_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define OFFRAMPS_BENCH_SANITIZED 1
#endif
#endif
#ifndef OFFRAMPS_BENCH_SANITIZED
#define OFFRAMPS_BENCH_SANITIZED 0
#endif

namespace offramps::bench {

/// True when this binary is instrumented by ASan/TSan/MSan (see above).
inline constexpr bool built_with_sanitizers() {
  return OFFRAMPS_BENCH_SANITIZED != 0;
}

/// The standard experiment workload: a small calibration cube.
inline gcode::Program standard_cube(double height_mm = 3.0) {
  host::SliceProfile profile;
  host::CubeSpec cube{.size_x_mm = 10.0,
                      .size_y_mm = 10.0,
                      .height_mm = height_mm,
                      .center_x_mm = 110.0,
                      .center_y_mm = 100.0};
  return host::slice_cube(cube, profile);
}

/// Prints one golden/Trojaned run with the given options.
inline host::RunResult run_print(const gcode::Program& program,
                                 core::TrojanSuiteConfig trojans = {},
                                 std::uint64_t seed = 1,
                                 core::RouteMode route =
                                     core::RouteMode::kFpgaMitm) {
  host::RigOptions options;
  options.trojans = std::move(trojans);
  options.firmware.jitter_seed = seed;
  options.route = route;
  host::Rig rig(options);
  return rig.run(program);
}

/// Section header in the style of the experiment logs.
inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void rule() {
  std::printf("-------------------------------------------------------------"
              "-------------------\n");
}

/// Wall-clock stopwatch for harness phases.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Worker count for a harness run: `--jobs N` / `-j N` on the command
/// line wins, else OFFRAMPS_JOBS / hardware concurrency via
/// ParallelRunner::default_workers().  Unrelated argv entries are left
/// for the caller.  Values must be whole positive integers ("8x" used to
/// silently run as 8); a malformed value warns and falls through to the
/// default, matching the OFFRAMPS_JOBS contract.
inline std::size_t parse_jobs(int argc, char** argv) {
  const auto strict = [](const char* text) -> std::size_t {
    const auto v = core::parse_long(text);
    if (v && *v >= 1) return static_cast<std::size_t>(*v);
    std::fprintf(stderr,
                 "--jobs '%s' is not a positive integer; using default\n",
                 text);
    return host::ParallelRunner::default_workers();
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if ((a == "--jobs" || a == "-j") && i + 1 < argc) {
      return strict(argv[i + 1]);
    }
    if (a.rfind("--jobs=", 0) == 0) {
      return strict(a.c_str() + 7);
    }
  }
  return host::ParallelRunner::default_workers();
}

/// Accumulates key/value pairs and writes `BENCH_<name>.json` so CI and
/// dashboards can track harness results without scraping stdout.  Every
/// artifact records the machine's hardware concurrency: speedups measured
/// on a 1-core host are honest 1x numbers, and the field says why.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    add("bench", name_);
    add("hardware_concurrency",
        static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  }

  void add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, quote(value));
  }
  void add(const std::string& key, const char* value) {
    add(key, std::string(value));
  }
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }

  /// Writes BENCH_<name>.json in the working directory and reports the
  /// path on stdout.  Returns false (after perror) if the file cannot be
  /// written; harnesses treat that as non-fatal.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::perror(("BenchJson: " + path).c_str());
      return false;
    }
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  %s: %s%s\n", quote(entries_[i].first).c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("[bench] wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace offramps::bench
