// Reference-cache + replay perf gate.
//
// Runs one sabotaged campaign cold (empty cache), then warm (same cache
// dir), and replays its recorded session corpus offline:
//
//   gate 1  the warm run's reference phase is at least 5x cheaper than
//           the cold run's (a disk read vs a full golden simulation)
//   gate 2  offline replay is at least 10x faster than the live
//           campaign wall clock (no simulator in the loop)
//
// Byte-identity of all three reports is checked unconditionally - a
// cache hit or a replay that changes one byte of a verdict is a
// correctness bug, not a perf miss.  The timing thresholds enforce by
// exit code on plain builds and downgrade to report-only under
// sanitizers (bench::built_with_sanitizers).  Results land in
// BENCH_cache.json.
//
//   ./bench_cache [--jobs N]
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "svc/daemon.hpp"
#include "svc/fleet.hpp"

namespace {

constexpr double kMinRefSpeedup = 5.0;
constexpr double kMinReplaySpeedup = 10.0;

std::vector<offramps::svc::RigSpec> campaign() {
  using offramps::svc::parse_sabotage;
  std::vector<offramps::svc::RigSpec> specs(6);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "bench-" + std::to_string(i);
    specs[i].seed = 4000 + i;
    specs[i].cube_mm = 8.0;
    specs[i].height_mm = 2.0;
  }
  specs[1].sabotage = parse_sabotage("reduce:0.5");
  specs[4].sabotage = parse_sabotage("relocate:12");
  return specs;
}

double reference_seconds(const offramps::svc::FleetReport& report) {
  double total = 0.0;
  for (const auto& t : report.timings) {
    if (t.name.rfind("reference/", 0) == 0) total += t.seconds;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace offramps;
  const std::size_t jobs = bench::parse_jobs(argc, argv);

  const std::string cache_dir = "bench_cache_refs";
  const std::string captures_dir = "bench_cache_caps";
  std::filesystem::remove_all(cache_dir);
  std::filesystem::remove_all(captures_dir);
  std::filesystem::create_directories(captures_dir);

  svc::FleetOptions options;
  options.workers = jobs;
  options.cache_dir = cache_dir;
  const std::vector<svc::RigSpec> specs = campaign();

  bench::heading("reference cache: cold vs warm (" + std::to_string(jobs) +
                 " workers)");
  svc::FleetOptions cold_options = options;
  cold_options.save_captures_dir = captures_dir;
  bench::Stopwatch live_watch;
  svc::Fleet cold(cold_options);
  const svc::FleetReport cold_report = cold.run(specs);
  const double live_s = live_watch.seconds();
  const double cold_ref_s = reference_seconds(cold_report);

  svc::Fleet warm(options);
  const svc::FleetReport warm_report = warm.run(specs);
  const double warm_ref_s = reference_seconds(warm_report);

  const double ref_speedup =
      warm_ref_s > 0.0 ? cold_ref_s / warm_ref_s : kMinRefSpeedup * 2.0;
  std::printf("  reference phase: cold %.4fs  warm %.4fs  (%.1fx)\n",
              cold_ref_s, warm_ref_s, ref_speedup);

  bench::heading("offline replay vs live campaign");
  svc::ReplayOptions replay_options;
  replay_options.service.workers = jobs;
  replay_options.service.cache_dir = cache_dir;
  bench::Stopwatch replay_watch;
  const svc::FleetReport replayed =
      svc::replay_corpus(captures_dir, replay_options);
  const double replay_s = replay_watch.seconds();
  const double replay_speedup = replay_s > 0.0 ? live_s / replay_s : 0.0;
  std::printf("  live %.4fs  replay %.4fs  (%.1fx)\n", live_s, replay_s,
              replay_speedup);

  const bool warm_identical =
      warm_report.to_json() == cold_report.to_json();
  const bool replay_identical = replayed.to_json() == cold_report.to_json();

  bench::BenchJson out("cache");
  out.add("jobs", static_cast<std::uint64_t>(jobs));
  out.add("rigs", static_cast<std::uint64_t>(specs.size()));
  out.add("cold_reference_s", cold_ref_s);
  out.add("warm_reference_s", warm_ref_s);
  out.add("reference_speedup", ref_speedup);
  out.add("live_wall_s", live_s);
  out.add("replay_wall_s", replay_s);
  out.add("replay_speedup", replay_speedup);
  out.add("warm_report_identical", warm_identical);
  out.add("replay_report_identical", replay_identical);
  out.add("sanitized", bench::built_with_sanitizers());
  out.write();

  int rc = 0;
  if (!warm_identical) {
    std::printf("FAIL: warm-cache report diverged from the cold run\n");
    rc = 1;
  }
  if (!replay_identical) {
    std::printf("FAIL: replayed report diverged from the live run\n");
    rc = 1;
  }
  const bool ref_ok = ref_speedup >= kMinRefSpeedup;
  const bool replay_ok = replay_speedup >= kMinReplaySpeedup;
  if (bench::built_with_sanitizers()) {
    std::printf("sanitized build: timing gates report-only (ref %.1fx "
                "vs %.1fx, replay %.1fx vs %.1fx)\n",
                ref_speedup, kMinRefSpeedup, replay_speedup,
                kMinReplaySpeedup);
  } else {
    if (!ref_ok) {
      std::printf("FAIL: warm reference phase only %.1fx faster "
                  "(need >= %.1fx)\n",
                  ref_speedup, kMinRefSpeedup);
      rc = 1;
    }
    if (!replay_ok) {
      std::printf("FAIL: replay only %.1fx faster than live "
                  "(need >= %.1fx)\n",
                  replay_speedup, kMinReplaySpeedup);
      rc = 1;
    }
  }
  std::printf("%s\n", rc == 0 ? "PASS" : "FAIL");
  return rc;
}
