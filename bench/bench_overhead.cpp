// Experiment E4 - paper section V-B "Overhead".
//
// The paper's overhead argument: the detection fabric adds at most
// 12.923 ns of propagation delay (worst case on Y_DIR), while the signals
// between the Arduino and RAMPS run below 20 kHz with pulses no narrower
// than 1 us - five orders of magnitude apart - so print quality is
// unaffected.  This binary reproduces each element:
//
//   1. the modelled per-net propagation delays (max on Y_DIR),
//   2. measured signal envelope (max frequency, min pulse width) from a
//      real print capture,
//   3. a step-count equivalence proof between Direct and MITM routes, and
//   4. host-side simulator cost (google-benchmark micro-benchmarks).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common.hpp"
#include "core/board.hpp"
#include "sim/trace.hpp"

using namespace offramps;

namespace {

void report_prop_delays() {
  bench::heading("Modelled MITM propagation delays (level shifters + "
                 "fabric routing)");
  sim::Scheduler sched;
  core::Board board(sched, {}, core::RouteMode::kFpgaMitm);
  sim::Tick max_delay = 0;
  for (std::size_t i = 0; i < sim::kPinCount; ++i) {
    const auto pin = static_cast<sim::Pin>(i);
    const auto d = board.fpga().path(pin).prop_delay();
    std::printf("  %-16s %3llu ns\n", sim::pin_name(pin),
                static_cast<unsigned long long>(d));
    max_delay = std::max(max_delay, d);
  }
  std::printf("  worst case: %llu ns on %s (paper: 12.923 ns on Y_DIR)\n",
              static_cast<unsigned long long>(max_delay),
              sim::pin_name(board.fpga().max_prop_delay_pin()));
}

void report_signal_envelope() {
  bench::heading("Measured control-signal envelope during a print "
                 "(record mode)");
  host::RigOptions options;
  options.route = core::RouteMode::kFpgaRecord;
  host::Rig rig(options);
  // Logic-analyzer taps on the firmware-side nets.
  std::vector<std::unique_ptr<sim::TraceRecorder>> traces;
  const sim::Pin pins[] = {sim::Pin::kXStep, sim::Pin::kYStep,
                           sim::Pin::kZStep, sim::Pin::kEStep,
                           sim::Pin::kHotendHeat, sim::Pin::kFan};
  for (const auto pin : pins) {
    traces.push_back(std::make_unique<sim::TraceRecorder>(
        rig.board().arduino_side().wire(pin), /*keep_transitions=*/false));
  }
  const host::RunResult r = rig.run(bench::standard_cube(3.0));
  std::printf("  print %s in %.1f simulated s\n",
              r.finished ? "completed" : "failed", r.sim_seconds);
  std::printf("  %-16s %14s %16s\n", "signal", "max freq (Hz)",
              "min pulse (ns)");
  double max_freq = 0.0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& t = *traces[i];
    const double f = t.max_frequency_hz();
    max_freq = std::max(max_freq, f);
    std::printf("  %-16s %14.0f %16llu\n", sim::pin_name(pins[i]), f,
                static_cast<unsigned long long>(
                    t.rising_edges() > 0 ? t.min_high_pulse() : 0));
  }
  std::printf("  max observed frequency: %.1f kHz (paper: < 20 kHz); the\n"
              "  13 ns worst-case delay is %.0fx smaller than the shortest\n"
              "  pulse (1 us) - negligible, as the paper concludes.\n",
              max_freq / 1000.0, 1000.0 / 13.0);
}

void report_link_budget() {
  bench::heading("Host link budget (paper section VI: UART is the "
                 "platform's reporting bottleneck)");
  host::RigOptions options;
  host::Rig rig(options);
  auto& phy = rig.board().fpga().uart_phy();
  const host::RunResult r = rig.run(bench::standard_cube(3.0));
  const double frame_ms =
      static_cast<double>(phy.frame_time(16)) / 1e6;
  std::printf("  baud 115200: bit %llu ns, 16-byte transaction %.2f ms\n",
              static_cast<unsigned long long>(phy.bit_time()), frame_ms);
  std::printf("  max transaction rate: %.0f /s vs the design's 10 /s "
              "(headroom %.0fx)\n",
              1000.0 / frame_ms, 100.0 / frame_ms);
  std::printf("  measured: %llu bytes sent over %.1f s print, line "
              "utilization %.2f%%, peak queue %zu bytes\n",
              static_cast<unsigned long long>(phy.bytes_sent()),
              r.sim_seconds, phy.utilization() * 100.0,
              phy.max_queue_depth());
  // Bulk-capture demand: 10k pulses/s, ~5 bytes per timestamped event,
  // 10 UART bits per byte.
  std::printf(
      "  => the 0.1 s step-count stream barely loads the link; what the\n"
      "     paper cannot do over it is bulk capture: one 10 kHz STEP\n"
      "     line's raw timestamped edges alone would need ~%.0f kbaud,\n"
      "     which is why its Limitations call for Ethernet/USB.\n",
      10'000.0 * 5.0 * 10.0 / 1000.0);
  (void)r;
}

void report_equivalence() {
  bench::heading("Step-count equivalence: Direct vs MITM routing");
  const auto program = bench::standard_cube(3.0);
  const host::RunResult direct =
      bench::run_print(program, {}, 1, core::RouteMode::kDirect);
  const host::RunResult mitm =
      bench::run_print(program, {}, 1, core::RouteMode::kFpgaMitm);
  bool equal = true;
  for (std::size_t i = 0; i < 4; ++i) {
    if (direct.motor_steps[i] != mitm.motor_steps[i]) equal = false;
  }
  std::printf("  motor steps (direct) X=%lld Y=%lld Z=%lld E=%lld\n",
              static_cast<long long>(direct.motor_steps[0]),
              static_cast<long long>(direct.motor_steps[1]),
              static_cast<long long>(direct.motor_steps[2]),
              static_cast<long long>(direct.motor_steps[3]));
  std::printf("  motor steps (MITM)   X=%lld Y=%lld Z=%lld E=%lld\n",
              static_cast<long long>(mitm.motor_steps[0]),
              static_cast<long long>(mitm.motor_steps[1]),
              static_cast<long long>(mitm.motor_steps[2]),
              static_cast<long long>(mitm.motor_steps[3]));
  std::printf("  equivalence: %s; part quality delta: layer shift "
              "%.3f vs %.3f mm\n",
              equal ? "EXACT" : "MISMATCH",
              direct.part.max_layer_shift_mm, mitm.part.max_layer_shift_mm);
}

// Host-side simulator cost: how expensive the detection fabric is to
// emulate (not a property of the physical system, but of this library).
void BM_PrintDirect(benchmark::State& state) {
  const auto program = bench::standard_cube(2.0);
  for (auto _ : state) {
    host::RunResult r =
        bench::run_print(program, {}, 1, core::RouteMode::kDirect);
    benchmark::DoNotOptimize(r.events_executed);
    state.counters["sim_s"] = r.sim_seconds;
    state.counters["events"] = static_cast<double>(r.events_executed);
  }
}
BENCHMARK(BM_PrintDirect)->Unit(benchmark::kMillisecond);

void BM_PrintMitm(benchmark::State& state) {
  const auto program = bench::standard_cube(2.0);
  for (auto _ : state) {
    host::RunResult r =
        bench::run_print(program, {}, 1, core::RouteMode::kFpgaMitm);
    benchmark::DoNotOptimize(r.events_executed);
    state.counters["sim_s"] = r.sim_seconds;
    state.counters["events"] = static_cast<double>(r.events_executed);
  }
}
BENCHMARK(BM_PrintMitm)->Unit(benchmark::kMillisecond);

void BM_PrintRecordWithDetection(benchmark::State& state) {
  const auto program = bench::standard_cube(2.0);
  for (auto _ : state) {
    host::RunResult r =
        bench::run_print(program, {}, 1, core::RouteMode::kFpgaRecord);
    benchmark::DoNotOptimize(r.capture.size());
  }
}
BENCHMARK(BM_PrintRecordWithDetection)->Unit(benchmark::kMillisecond);

}  // namespace

// Single-threaded event-loop throughput on the standard MITM print: the
// number the scheduler/wire hot-path work is judged by.  Best of three
// runs, written to BENCH_overhead.json.
void report_event_throughput() {
  bench::heading("Single-threaded event throughput (scheduler hot path)");
  const auto program = bench::standard_cube(2.0);
  double best_s = 0.0;
  std::uint64_t events = 0;
  for (int rep = 0; rep < 3; ++rep) {
    bench::Stopwatch clock;
    const host::RunResult r =
        bench::run_print(program, {}, 1, core::RouteMode::kFpgaMitm);
    const double s = clock.seconds();
    events = r.events_executed;
    if (best_s == 0.0 || s < best_s) best_s = s;
  }
  const double eps = best_s > 0.0 ? static_cast<double>(events) / best_s : 0.0;
  std::printf("  MITM print: %llu events in %.3f s -> %.3g events/s\n",
              static_cast<unsigned long long>(events), best_s, eps);

  bench::BenchJson json("overhead");
  json.add("workload", "standard_cube 2mm, MITM route, seed 1");
  json.add("best_wall_seconds", best_s);
  json.add("scheduler_events", events);
  json.add("events_per_second", eps);
  json.write();
}

int main(int argc, char** argv) {
  report_prop_delays();
  report_signal_envelope();
  report_link_budget();
  report_equivalence();
  report_event_throughput();
  bench::heading("Host-side simulation cost (google-benchmark)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
