// Experiment E7 - ablations on the detection design choices.
//
// Two claims from paper section V-C get quantified:
//
//  A. "This 5% margin of error can be made significantly smaller with a
//     faster communication protocol, as fewer steps possible per
//     transaction would lower the potential drift in counts."
//     -> Sweep the UART transaction period and measure the worst
//        known-good drift: the margin the detector *needs*.
//
//  B. The margin trades false positives against sensitivity.
//     -> Sweep the margin and measure (i) false positives on known-good
//        reprints and (ii) detection of increasingly subtle reduction
//        Trojans.  The exact final-count check catches what per-window
//        margins miss.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "detect/align.hpp"
#include "detect/golden_free.hpp"
#include "detect/side_channel.hpp"
#include "gcode/flaw3d.hpp"

using namespace offramps;

namespace {

host::RunResult run_with_uart_period(const gcode::Program& program,
                                     std::uint64_t seed,
                                     sim::Tick uart_period) {
  host::RigOptions options;
  options.firmware.jitter_seed = seed;
  options.board.fpga.uart_period = uart_period;
  host::Rig rig(options);
  return rig.run(program);
}

struct Drift {
  double worst_pct = 0.0;      // relative to the cumulative golden count
  std::int64_t worst_steps = 0;  // absolute count difference
};

Drift max_drift(const core::Capture& a, const core::Capture& b) {
  Drift d;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      const auto g = static_cast<std::int64_t>(a.transactions[i].counts[c]);
      const auto o = static_cast<std::int64_t>(b.transactions[i].counts[c]);
      d.worst_steps = std::max(
          d.worst_steps, static_cast<std::int64_t>(std::llabs(g - o)));
      if (std::llabs(g) < 20 && std::llabs(o) < 20) continue;
      d.worst_pct = std::max(
          d.worst_pct, 100.0 * static_cast<double>(std::llabs(g - o)) /
                           static_cast<double>(std::max<std::int64_t>(
                               std::llabs(g), 1)));
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const auto program = bench::standard_cube(2.5);
  host::ParallelRunner pool(bench::parse_jobs(argc, argv));
  bench::Stopwatch clock;
  std::uint64_t total_events = 0;

  // A captured print plus its event count -- what most of the pooled
  // sections below need back from each job.
  struct Cap {
    core::Capture capture;
    std::uint64_t events = 0;
  };

  // --- A: UART transaction period vs required margin -----------------------
  bench::heading("Ablation A: transaction period vs known-good drift "
                 "(margin required)");
  std::printf("%-14s %-14s %-22s %-16s\n", "period (ms)", "transactions",
              "worst relative drift", "worst abs drift");
  bench::rule();
  // 5 periods x 4 seeds (reference + 3 reprints) = 20 independent prints.
  const unsigned kPeriodsMs[] = {25u, 50u, 100u, 200u, 400u};
  const std::uint64_t kDriftSeeds[] = {1u, 21u, 99u, 512u};
  const std::vector<Cap> period_runs =
      pool.map<Cap>(5 * 4, [&](std::size_t i) {
        const host::RunResult r = run_with_uart_period(
            program, kDriftSeeds[i % 4], sim::ms(kPeriodsMs[i / 4]));
        return Cap{r.capture, r.events_executed};
      });
  for (std::size_t p = 0; p < 5; ++p) {
    const core::Capture& ref = period_runs[p * 4].capture;
    Drift worst;
    for (std::size_t s = 1; s < 4; ++s) {
      const Drift d = max_drift(ref, period_runs[p * 4 + s].capture);
      worst.worst_pct = std::max(worst.worst_pct, d.worst_pct);
      worst.worst_steps = std::max(worst.worst_steps, d.worst_steps);
    }
    std::printf("%-14u %-14zu %13.3f%%        %8lld steps%s\n",
                kPeriodsMs[p], ref.size(), worst.worst_pct,
                static_cast<long long>(worst.worst_steps),
                kPeriodsMs[p] == 100 ? "   <- paper's 0.1 s / 5%" : "");
  }
  for (const Cap& c : period_runs) total_events += c.events;
  std::printf(
      "finding: the paper speculates a faster protocol would permit a\n"
      "smaller margin (\"fewer steps possible per transaction\").  Under\n"
      "the cumulative-count comparison both papers' tool and ours use,\n"
      "the ABSOLUTE drift is set by the print's timing noise - roughly\n"
      "independent of the transaction period - so the RELATIVE margin\n"
      "requirement actually grows for faster transactions (early windows\n"
      "hold smaller cumulative counts).  The speculated benefit requires\n"
      "window-local (delta) comparison, not just a faster link.\n");

  // --- B: margin sweep vs sensitivity and false positives -------------------
  bench::heading("Ablation B: detection margin vs sensitivity / false "
                 "positives");
  const host::RunResult golden = bench::run_print(program, {}, 1);
  total_events += golden.events_executed;
  // Observed prints: 3 clean reprints + reduction Trojans of waning
  // severity -- 7 independent prints, fanned out.
  const std::uint64_t kCleanSeeds[] = {42u, 4242u, 424242u};
  const double kFactors[] = {0.5, 0.9, 0.98, 0.995};
  struct Observed {
    std::string label;
    core::Capture capture;
    std::uint64_t events = 0;
  };
  const std::vector<Observed> observed =
      pool.map<Observed>(3 + 4, [&](std::size_t i) {
        Observed o;
        host::RunResult r;
        if (i < 3) {
          o.label = "clean reprint";
          r = bench::run_print(program, {}, kCleanSeeds[i]);
        } else {
          const double factor = kFactors[i - 3];
          char label[48];
          std::snprintf(label, sizeof(label), "reduction x%.3f", factor);
          o.label = label;
          r = bench::run_print(
              gcode::flaw3d::apply_reduction(program, {.factor = factor}),
              {}, 7);
        }
        o.capture = r.capture;
        o.events = r.events_executed;
        return o;
      });
  for (const Observed& o : observed) total_events += o.events;

  std::printf("%-22s", "margin ->");
  for (const double margin : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    std::printf(" %7.0f%%", margin);
  }
  std::printf("  final-check-only\n");
  bench::rule();
  for (const auto& o : observed) {
    const std::string& label = o.label;
    const core::Capture& capture = o.capture;
    std::printf("%-22s", label.c_str());
    for (const double margin : {1.0, 2.0, 5.0, 10.0, 20.0}) {
      detect::CompareOptions opt;
      opt.margin_pct = margin;
      opt.final_check = false;
      const bool hit = detect::compare(golden.capture, capture, opt)
                           .trojan_likely;
      std::printf(" %8s", hit ? "flag" : ".");
    }
    detect::CompareOptions final_only;
    final_only.margin_pct = 1e9;  // windows disabled
    final_only.final_check = true;
    const bool hit =
        detect::compare(golden.capture, capture, final_only).trojan_likely;
    std::printf("  %s\n", hit ? "flag" : ".");
  }
  bench::rule();
  std::printf(
      "shape check: tight margins flag clean reprints (false positives);\n"
      "the paper's 5%% margin is clean on reprints while flagging every\n"
      "Trojan; the 0%%-margin final check catches even a 0.5%% reduction\n"
      "that windowed margins miss.\n");

  // --- C: golden-model vs golden-free detection -----------------------------
  bench::heading("Ablation C: golden-model detection vs golden-free "
                 "plausibility rules");
  std::printf("%-26s %-14s %-14s\n", "workload", "golden-model",
              "golden-free");
  bench::rule();
  struct Workload {
    std::string label;
    gcode::Program program;
    bool is_trojan;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"clean reprint", program, false});
  for (const double f : {0.5, 0.85, 0.98}) {
    char label[40];
    std::snprintf(label, sizeof(label), "reduction x%.2f", f);
    workloads.push_back(
        {label, gcode::flaw3d::apply_reduction(program, {.factor = f}),
         true});
  }
  for (const std::uint32_t n : {5u, 20u, 100u}) {
    char label[40];
    std::snprintf(label, sizeof(label), "relocation n=%u", n);
    workloads.push_back(
        {label,
         gcode::flaw3d::apply_relocation(
             program, {.every_n_moves = n, .take_fraction = 0.15}),
         true});
  }
  const std::vector<Cap> workload_caps =
      pool.map<Cap>(workloads.size(), [&](std::size_t i) {
        const host::RunResult r =
            bench::run_print(workloads[i].program, {}, 99);
        return Cap{r.capture, r.events_executed};
      });
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    const core::Capture& cap = workload_caps[i].capture;
    total_events += workload_caps[i].events;
    const bool golden_hit =
        detect::compare(golden.capture, cap).trojan_likely;
    const bool free_hit = detect::analyze_golden_free(cap).trojan_likely;
    const auto verdict = [&](bool hit) {
      if (!w.is_trojan) return hit ? "FALSE POS" : "clean";
      return hit ? "detected" : "missed";
    };
    std::printf("%-26s %-14s %-14s\n", w.label.c_str(),
                verdict(golden_hit), verdict(free_hit));
  }
  bench::rule();
  std::printf(
      "shape check: golden-free rules need no reference print and catch\n"
      "gross manipulation (heavy starvation, coarse blob dumps), but the\n"
      "subtle Table II cases require the golden model - quantifying why\n"
      "the paper built the golden-capture workflow.\n");

  // --- D: lossless signal taps vs the lossy power side channel --------------
  bench::heading("Ablation D: OFFRAMPS step counts vs power side-channel "
                 "(related-work baseline)");
  const auto probed = [&](const gcode::Program& p, std::uint64_t seed,
                          core::TrojanSuiteConfig trojans =
                              core::TrojanSuiteConfig{}) {
    host::RigOptions options;
    options.firmware.jitter_seed = seed;
    options.power_probe = plant::PowerProbeOptions{};
    options.power_probe->noise_seed = seed ^ 0xFACE;
    options.trojans = std::move(trojans);
    host::Rig rig(options);
    return rig.run(p);
  };
  const host::RunResult gold = probed(program, 1);
  total_events += gold.events_executed;

  struct DCase {
    std::string label;
    gcode::Program program;
    core::TrojanSuiteConfig trojans;
    bool is_attack;
  };
  std::vector<DCase> dcases;
  dcases.push_back({"clean reprint", program, {}, false});
  dcases.push_back({"reduction x0.98 (TabII #4)",
                    gcode::flaw3d::apply_reduction(program, {.factor = 0.98}),
                    {},
                    true});
  dcases.push_back({"relocation n=100 (TabII #8)",
                    gcode::flaw3d::apply_relocation(
                        program, {.every_n_moves = 100,
                                  .take_fraction = 0.15}),
                    {},
                    true});
  {
    core::TrojanSuiteConfig t6;
    t6.t6 = core::T6Config{.hotend = true, .bed = false,
                           .delay_after_homing_s = 10.0};
    dcases.push_back({"T6 heater DoS (signal-level)", program, t6, true});
  }

  std::printf("%-30s %-18s %-18s\n", "workload", "step counts",
              "power signature");
  bench::rule();
  const std::vector<host::RunResult> druns =
      pool.map<host::RunResult>(dcases.size(), [&](std::size_t i) {
        return probed(dcases[i].program, 97, dcases[i].trojans);
      });
  for (std::size_t i = 0; i < dcases.size(); ++i) {
    const DCase& c = dcases[i];
    const host::RunResult& r = druns[i];
    total_events += r.events_executed;
    const bool counts_hit =
        detect::compare(gold.capture, r.capture).trojan_likely;
    const bool power_hit =
        detect::compare_power(gold.power_trace, r.power_trace)
            .sabotage_likely;
    const auto verdict = [&](bool hit) {
      if (!c.is_attack) return hit ? "FALSE POS" : "clean";
      return hit ? "detected" : "missed";
    };
    std::printf("%-30s %-18s %-18s\n", c.label.c_str(),
                verdict(counts_hit), verdict(power_hit));
  }
  bench::rule();
  std::printf(
      "shape check: the lossy power channel needs watts-scale effects\n"
      "(heater DoS) and misses the stealthy Table II cases the lossless\n"
      "step-count taps catch - the paper's core claim (\"no loss of\n"
      "data\") made quantitative.\n");

  // --- E: window alignment vs required margin --------------------------------
  bench::heading("Ablation E: positional vs aligned comparison "
                 "(false positives across clean reprints)");
  const std::uint64_t kReprintSeeds[] = {11u, 222u, 3333u, 44444u, 555555u};
  const std::vector<Cap> reprint_caps =
      pool.map<Cap>(5, [&](std::size_t i) {
        const host::RunResult r =
            bench::run_print(program, {}, kReprintSeeds[i]);
        return Cap{r.capture, r.events_executed};
      });
  std::vector<core::Capture> reprints;
  for (const Cap& c : reprint_caps) {
    reprints.push_back(c.capture);
    total_events += c.events;
  }
  std::printf("%-12s %-20s %-20s %-20s\n", "margin", "positional (of 5)",
              "global shift (of 5)", "slack +/-2 (of 5)");
  bench::rule();
  for (const double margin : {0.5, 1.0, 2.0, 5.0}) {
    detect::CompareOptions opt;
    opt.margin_pct = margin;
    detect::CompareOptions slack_opt = opt;
    slack_opt.window_slack = 2;
    int fp_positional = 0, fp_aligned = 0, fp_slack = 0;
    for (const auto& cap : reprints) {
      if (detect::compare(golden.capture, cap, opt).trojan_likely) {
        ++fp_positional;
      }
      if (detect::compare_aligned(golden.capture, cap, opt)
              .trojan_likely) {
        ++fp_aligned;
      }
      if (detect::compare(golden.capture, cap, slack_opt).trojan_likely) {
        ++fp_slack;
      }
    }
    std::printf("%7.1f%%    %-20d %-20d %-20d\n", margin, fp_positional,
                fp_aligned, fp_slack);
  }
  bench::rule();
  // Sensitivity side: the tight slack margin must still catch the
  // stealthiest Table II case.
  {
    detect::CompareOptions slack_opt;
    slack_opt.margin_pct = 1.0;
    slack_opt.window_slack = 2;
    const auto mutated =
        gcode::flaw3d::apply_reduction(program, {.factor = 0.98});
    const auto cap = bench::run_print(mutated, {}, 71).capture;
    std::printf(
        "sensitivity check: 1%% margin + slack 2 on reduction x0.98 -> "
        "%s\n",
        detect::compare(golden.capture, cap, slack_opt).trojan_likely
            ? "detected"
            : "MISSED");
  }
  std::printf(
      "finding: neither a whole-series shift nor per-window slack is\n"
      "what buys margin here - the residual false positives were 1-step\n"
      "quantization noise on small counts, fixed by scaling the small-\n"
      "count exemption with the margin (CompareOptions::quantization_\n"
      "steps).  With that floor, a 1%% margin runs clean while still\n"
      "catching the stealthiest Table II case: a 5x tighter margin than\n"
      "the paper's, obtained in software rather than with a faster\n"
      "link.  Drift only becomes the binding constraint below ~0.5%%.\n");

  // --- F: planner junction lookahead --------------------------------------
  bench::heading("Ablation F: planner junction lookahead (print time; "
                 "step counts invariant)");
  const auto timed_with = [&](bool lookahead) {
    host::RigOptions options;
    options.firmware.jitter_seed = 1;
    options.firmware.segment_jitter_max = 0;
    options.firmware.junction_lookahead = lookahead;
    host::Rig rig(options);
    return rig.run(program);
  };
  const std::vector<host::RunResult> la_runs =
      pool.map<host::RunResult>(2, [&](std::size_t i) {
        return timed_with(i == 0);
      });
  const host::RunResult& with_la = la_runs[0];
  const host::RunResult& without_la = la_runs[1];
  total_events += with_la.events_executed + without_la.events_executed;
  std::printf("  with lookahead:    %.1f s, finals E=%lld\n",
              with_la.sim_seconds,
              static_cast<long long>(with_la.capture.final_counts[3]));
  std::printf("  without lookahead: %.1f s, finals E=%lld\n",
              without_la.sim_seconds,
              static_cast<long long>(without_la.capture.final_counts[3]));
  std::printf(
      "  speedup: %.1f%%; final counts equal: %s (timing feature only)\n",
      100.0 * (without_la.sim_seconds - with_la.sim_seconds) /
          without_la.sim_seconds,
      with_la.capture.final_counts == without_la.capture.final_counts
          ? "yes"
          : "NO");

  const double wall_s = clock.seconds();
  bench::BenchJson json("ablation");
  json.add("jobs", pool.workers());
  json.add("wall_seconds", wall_s);
  json.add("scheduler_events", total_events);
  json.add("events_per_second",
           wall_s > 0.0 ? static_cast<double>(total_events) / wall_s : 0.0);
  json.write();
  return 0;
}
