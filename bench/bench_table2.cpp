// Experiment E2 - paper Table II: detection of the eight Flaw3D Trojans.
//
// A golden capture is taken from a clean print, then each Table II test
// case mutates the g-code (reduction x{0.5, 0.85, 0.9, 0.98}; relocation
// every {5, 10, 20, 100} moves), prints on the same stack with a
// different jitter seed, and runs the detector.  The paper detected all
// eight; a known-good reprint control verifies the 5% margin holds.
#include <cstdio>

#include "common.hpp"
#include "gcode/flaw3d.hpp"

using namespace offramps;

int main(int argc, char** argv) {
  const gcode::Program object = bench::standard_cube(3.0);
  host::ParallelRunner pool(bench::parse_jobs(argc, argv));
  bench::Stopwatch clock;

  bench::heading("Table II: Flaw3D Trojan detection");
  std::printf("capturing golden reference print (%zu worker(s))...\n",
              pool.workers());
  host::RunResult golden = bench::run_print(object, {}, /*seed=*/1);
  std::printf("golden: %zu transactions, final counts X=%lld Y=%lld Z=%lld "
              "E=%lld\n\n",
              golden.capture.size(),
              static_cast<long long>(golden.capture.final_counts[0]),
              static_cast<long long>(golden.capture.final_counts[1]),
              static_cast<long long>(golden.capture.final_counts[2]),
              static_cast<long long>(golden.capture.final_counts[3]));

  std::printf("%-10s %-11s %-19s %-9s %-12s %-10s\n", "Test Case", "Type",
              "Modification Value", "Detected", "#Mismatch", "Max diff");
  bench::rule();

  struct Case {
    int id;
    const char* type;
    double value;
  };
  const Case cases[] = {
      {1, "Reduction", 0.5},  {2, "Reduction", 0.85},
      {3, "Reduction", 0.9},  {4, "Reduction", 0.98},
      {5, "Relocation", 5},   {6, "Relocation", 10},
      {7, "Relocation", 20},  {8, "Relocation", 100},
  };

  // Each test case (and the known-good control, appended as a ninth job)
  // mutates its own copy of the program and prints on a fresh rig --
  // independent jobs, fanned out over the pool, reported in case order.
  struct CaseOut {
    detect::Report rep;
    std::uint64_t events = 0;
  };
  constexpr std::size_t kCases = sizeof(cases) / sizeof(cases[0]);
  const std::vector<CaseOut> outs =
      pool.map<CaseOut>(kCases + 1, [&](std::size_t i) {
        host::RunResult r;
        if (i == kCases) {  // control: clean reprint, different seed
          r = bench::run_print(object, {}, /*seed=*/777);
        } else {
          const Case& c = cases[i];
          gcode::Program mutated;
          if (std::string(c.type) == "Reduction") {
            mutated =
                gcode::flaw3d::apply_reduction(object, {.factor = c.value});
          } else {
            mutated = gcode::flaw3d::apply_relocation(
                object,
                {.every_n_moves = static_cast<std::uint32_t>(c.value),
                 .take_fraction = 0.15});
          }
          r = bench::run_print(mutated, {}, /*seed=*/100 + c.id);
        }
        return CaseOut{detect::compare(golden.capture, r.capture),
                       r.events_executed};
      });

  int detected_count = 0;
  for (std::size_t i = 0; i < kCases; ++i) {
    const Case& c = cases[i];
    const detect::Report& rep = outs[i].rep;
    if (rep.trojan_likely) ++detected_count;
    std::printf("%-10d %-11s %-19g %-9s %-12zu %8.2f%%\n", c.id, c.type,
                c.value, rep.trojan_likely ? "yes" : "NO",
                rep.mismatch_count(), rep.largest_percent);
  }
  bench::rule();

  // Control: a known-good reprint with a different seed must NOT trip.
  const detect::Report& control = outs[kCases].rep;
  std::printf("%-10s %-11s %-19s %-9s %-12zu %8.2f%%\n", "control", "None",
              "known-good reprint",
              control.trojan_likely ? "FALSE POSITIVE" : "no",
              control.mismatch_count(), control.largest_percent);

  std::printf("\nDetected %d / 8 Trojans (paper: 8 / 8); control %s\n",
              detected_count,
              control.trojan_likely ? "FALSE POSITIVE" : "clean");

  const double wall_s = clock.seconds();
  std::uint64_t total_events = golden.events_executed;
  for (const CaseOut& out : outs) total_events += out.events;
  bench::BenchJson json("table2");
  json.add("jobs", pool.workers());
  json.add("cases", kCases);
  json.add("detected", static_cast<std::uint64_t>(detected_count));
  json.add("wall_seconds", wall_s);
  json.add("scheduler_events", total_events);
  json.add("events_per_second",
           wall_s > 0.0 ? static_cast<double>(total_events) / wall_s : 0.0);
  json.write();
  return (detected_count == 8 && !control.trojan_likely) ? 0 : 1;
}
