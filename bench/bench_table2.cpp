// Experiment E2 - paper Table II: detection of the eight Flaw3D Trojans.
//
// A golden capture is taken from a clean print, then each Table II test
// case mutates the g-code (reduction x{0.5, 0.85, 0.9, 0.98}; relocation
// every {5, 10, 20, 100} moves), prints on the same stack with a
// different jitter seed, and runs the detector.  The paper detected all
// eight; a known-good reprint control verifies the 5% margin holds.
#include <cstdio>

#include "common.hpp"
#include "gcode/flaw3d.hpp"

using namespace offramps;

int main() {
  const gcode::Program object = bench::standard_cube(3.0);

  bench::heading("Table II: Flaw3D Trojan detection");
  std::printf("capturing golden reference print...\n");
  host::RunResult golden = bench::run_print(object, {}, /*seed=*/1);
  std::printf("golden: %zu transactions, final counts X=%lld Y=%lld Z=%lld "
              "E=%lld\n\n",
              golden.capture.size(),
              static_cast<long long>(golden.capture.final_counts[0]),
              static_cast<long long>(golden.capture.final_counts[1]),
              static_cast<long long>(golden.capture.final_counts[2]),
              static_cast<long long>(golden.capture.final_counts[3]));

  std::printf("%-10s %-11s %-19s %-9s %-12s %-10s\n", "Test Case", "Type",
              "Modification Value", "Detected", "#Mismatch", "Max diff");
  bench::rule();

  struct Case {
    int id;
    const char* type;
    double value;
  };
  const Case cases[] = {
      {1, "Reduction", 0.5},  {2, "Reduction", 0.85},
      {3, "Reduction", 0.9},  {4, "Reduction", 0.98},
      {5, "Relocation", 5},   {6, "Relocation", 10},
      {7, "Relocation", 20},  {8, "Relocation", 100},
  };

  int detected_count = 0;
  for (const Case& c : cases) {
    gcode::Program mutated;
    if (std::string(c.type) == "Reduction") {
      mutated = gcode::flaw3d::apply_reduction(object, {.factor = c.value});
    } else {
      mutated = gcode::flaw3d::apply_relocation(
          object,
          {.every_n_moves = static_cast<std::uint32_t>(c.value),
           .take_fraction = 0.15});
    }
    const host::RunResult r =
        bench::run_print(mutated, {}, /*seed=*/100 + c.id);
    const detect::Report rep = detect::compare(golden.capture, r.capture);
    if (rep.trojan_likely) ++detected_count;
    std::printf("%-10d %-11s %-19g %-9s %-12zu %8.2f%%\n", c.id, c.type,
                c.value, rep.trojan_likely ? "yes" : "NO",
                rep.mismatch_count(), rep.largest_percent);
  }
  bench::rule();

  // Control: a known-good reprint with a different seed must NOT trip.
  const host::RunResult reprint = bench::run_print(object, {}, /*seed=*/777);
  const detect::Report control = detect::compare(golden.capture,
                                                 reprint.capture);
  std::printf("%-10s %-11s %-19s %-9s %-12zu %8.2f%%\n", "control", "None",
              "known-good reprint",
              control.trojan_likely ? "FALSE POSITIVE" : "no",
              control.mismatch_count(), control.largest_percent);

  std::printf("\nDetected %d / 8 Trojans (paper: 8 / 8); control %s\n",
              detected_count,
              control.trojan_likely ? "FALSE POSITIVE" : "clean");
  return (detected_count == 8 && !control.trojan_likely) ? 0 : 1;
}
