// Scheduler microbenchmark: binary heap vs hierarchical timer wheel.
//
// The PR 7 wheel claims O(1) schedule/expire beats the old O(log n)
// heap on this simulator's event-horizon profile.  This harness holds a
// faithful copy of the pre-wheel binary-heap scheduler and races it
// against `sim::Scheduler` across three event-horizon distributions:
//
//   dense  - 256 concurrent self-rescheduling chains with deltas 1..16
//            ticks (stepper pulse trains, FPGA clock edges): the profile
//            the wheel is built for;
//   sparse - 64 chains with deltas ~0.2-2.2 ms (thermal ticks, control
//            deadlines): exercises levels 1-2 and slot cascades;
//   mixed  - half of each, interleaved on one queue.
//
// Both sides execute the identical generative workload and must produce
// identical (time, chain) execution digests - the determinism
// cross-check is enforced everywhere, including sanitized builds.  The
// perf gate (wheel >= 1.3x events/s on dense, per ISSUE 7 / ROADMAP
// item 3) enforces by exit code on plain builds only; results land in
// BENCH_sched.json and EXPERIMENTS.md E13.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "sim/scheduler.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

using namespace offramps;
using sim::Tick;

namespace {

/// The pre-wheel scheduler hot path, verbatim: a std::vector binary heap
/// driven with push_heap/pop_heap, SmallFn callbacks, (time, seq)
/// ordering.  The baseline side of every comparison below.
class HeapScheduler {
 public:
  using Callback = sim::SmallFn<void()>;

  [[nodiscard]] Tick now() const { return now_; }

  void schedule_at(Tick t, Callback cb) {
    heap_.push_back(Event{t, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  void schedule_in(Tick dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  bool step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.time;
    ev.cb.invoke_unchecked();
    return true;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
};

enum Dist : int { kDense = 0, kSparse = 1, kMixed = 2 };
const char* kDistName[] = {"dense", "sparse", "mixed"};

Tick delta_for(int dist, std::uint32_t id, std::uint32_t hop) {
  const std::uint64_t x =
      ((static_cast<std::uint64_t>(id) << 32) | hop) * 0x9e3779b97f4a7c15ULL;
  const Tick dense = 1 + (x & 15);
  const Tick sparse = 200'000 + (x % 2'000'000);
  switch (dist) {
    case kDense:
      return dense;
    case kSparse:
      return sparse;
    default:
      return (id & 1) != 0 ? dense : sparse;
  }
}

template <typename Sched>
struct Ctx {
  Sched* sched;
  std::uint64_t executed = 0;
  std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a over (now, id)
  std::uint32_t hops;
  int dist;
};

/// Self-rescheduling chain event.  16 bytes, trivially copyable: rides
/// in SmallFn inline storage on both schedulers, so neither side pays
/// allocation and the race measures pure queue mechanics.
template <typename Sched>
struct Chain {
  Ctx<Sched>* ctx;
  std::uint32_t id;
  std::uint32_t hop;

  void operator()() {
    ++ctx->executed;
    std::uint64_t h = ctx->digest;
    h = (h ^ ctx->sched->now()) * 1099511628211ULL;
    h = (h ^ id) * 1099511628211ULL;
    ctx->digest = h;
    const std::uint32_t next = hop + 1;
    if (next < ctx->hops) {
      ctx->sched->schedule_in(delta_for(ctx->dist, id, next),
                              Chain{ctx, id, next});
    }
  }
};

struct RunResult {
  double events_per_sec = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

template <typename Sched>
RunResult run_once(int dist, std::uint32_t chains, std::uint32_t hops) {
  Sched s;
  Ctx<Sched> ctx{&s, 0, 1469598103934665603ULL, hops, dist};
  bench::Stopwatch clock;
  for (std::uint32_t id = 0; id < chains; ++id) {
    s.schedule_in(delta_for(dist, id, 0), Chain<Sched>{&ctx, id, 0});
  }
  s.run_all();
  const double secs = clock.seconds();
  RunResult r;
  r.events = ctx.executed;
  r.digest = ctx.digest;
  r.events_per_sec =
      secs > 0.0 ? static_cast<double>(ctx.executed) / secs : 0.0;
  return r;
}

/// Best events/s over `reps` runs (wall-clock minima converge toward the
/// true cost on a noisy host; the digest must be identical every run).
template <typename Sched>
RunResult best_of(int dist, std::uint32_t chains, std::uint32_t hops,
                  int reps, bool* digest_stable) {
  RunResult best = run_once<Sched>(dist, chains, hops);
  for (int r = 1; r < reps; ++r) {
    const RunResult cur = run_once<Sched>(dist, chains, hops);
    if (cur.digest != best.digest) *digest_stable = false;
    if (cur.events_per_sec > best.events_per_sec) {
      best.events_per_sec = cur.events_per_sec;
    }
  }
  return best;
}

struct DistResult {
  RunResult heap;
  RunResult wheel;
  [[nodiscard]] double ratio() const {
    return heap.events_per_sec > 0.0
               ? wheel.events_per_sec / heap.events_per_sec
               : 0.0;
  }
};

}  // namespace

int main() {
  constexpr double kDenseRatioFloor = 1.3;
  const std::uint32_t kDenseChains = 256, kDenseHops = 4096;
  const std::uint32_t kSparseChains = 64, kSparseHops = 8192;

  bench::heading("Scheduler queue: binary heap vs hierarchical timer wheel");
  bool digest_stable = true;
  bool digests_match = true;
  DistResult results[3];

  for (int dist = 0; dist < 3; ++dist) {
    const std::uint32_t chains = dist == kSparse ? kSparseChains : kDenseChains;
    const std::uint32_t hops = dist == kSparse ? kSparseHops : kDenseHops;
    DistResult& r = results[dist];
    r.heap = best_of<HeapScheduler>(dist, chains, hops, 3, &digest_stable);
    r.wheel = best_of<sim::Scheduler>(dist, chains, hops, 3, &digest_stable);
    // The gate compares minima; give the loser extra attempts before
    // concluding anything on a noisy host.
    if (dist == kDense && r.ratio() < kDenseRatioFloor) {
      for (int extra = 0; extra < 5 && r.ratio() < kDenseRatioFloor;
           ++extra) {
        const RunResult h =
            run_once<HeapScheduler>(dist, chains, hops);
        const RunResult w = run_once<sim::Scheduler>(dist, chains, hops);
        r.heap.events_per_sec =
            std::max(r.heap.events_per_sec, h.events_per_sec);
        r.wheel.events_per_sec =
            std::max(r.wheel.events_per_sec, w.events_per_sec);
      }
    }
    if (r.heap.digest != r.wheel.digest) digests_match = false;
    std::printf("  %-6s: heap %8.3g ev/s | wheel %8.3g ev/s | wheel/heap "
                "%.2fx  (%llu events, digests %s)\n",
                kDistName[dist], r.heap.events_per_sec,
                r.wheel.events_per_sec, r.ratio(),
                static_cast<unsigned long long>(r.wheel.events),
                r.heap.digest == r.wheel.digest ? "match" : "MISMATCH");
  }

  const double dense_ratio = results[kDense].ratio();
  const bool perf_enforced = !bench::built_with_sanitizers();
  const bool perf_ok = dense_ratio >= kDenseRatioFloor;
  std::printf("\n  dense-burst gate: wheel/heap %.2fx (floor %.1fx) -- %s\n",
              dense_ratio, kDenseRatioFloor,
              perf_ok          ? "ok"
              : perf_enforced  ? "FAIL"
                               : "below floor (not enforced: sanitized build)");
  if (!digests_match || !digest_stable) {
    std::printf("  DETERMINISM FAILURE: execution digests %s\n",
                digests_match ? "unstable across reps" : "differ heap vs wheel");
  }

  bench::BenchJson json("sched");
  for (int dist = 0; dist < 3; ++dist) {
    const std::string k = kDistName[dist];
    json.add("events_per_second_heap_" + k, results[dist].heap.events_per_sec);
    json.add("events_per_second_wheel_" + k,
             results[dist].wheel.events_per_sec);
    json.add("wheel_over_heap_" + k, results[dist].ratio());
    json.add("events_" + k, results[dist].wheel.events);
  }
  json.add("dense_ratio_floor", kDenseRatioFloor);
  json.add("dense_gate_enforced", perf_enforced);
  json.add("digests_match", digests_match && digest_stable);
  json.write();

  if (!digests_match || !digest_stable) return 1;
  if (perf_enforced && !perf_ok) return 1;
  return 0;
}
